//! Repair pipeline walk-through: shows how each conflict resolver contributes
//! to the final accuracy (the Table IV / Fig. 6 story) for one model.
//!
//! Run with `cargo run --example repair_pipeline`.

use ea_data::datasets::{load, DatasetName, DatasetScale};
use ea_models::{build_model, ModelKind, TrainConfig};
use exea_core::{ExEa, ExeaConfig, RepairConfig};

fn main() {
    let pair = load(DatasetName::ZhEn, DatasetScale::Small);
    let model = build_model(
        ModelKind::MTransE,
        TrainConfig {
            epochs: 200,
            ..TrainConfig::default()
        },
    );
    let trained = model.train(&pair);
    let exea = ExEa::new(&pair, &trained, ExeaConfig::default());

    let base = trained.accuracy(&pair);
    println!("MTransE base accuracy:          {base:.3}");
    println!(
        "one-to-many conflicts in output: {}",
        exea.predictions().one_to_many_conflicts().len()
    );

    // Repair re-aligns from the blocked top-k candidate engine rather than a
    // dense similarity matrix: candidate storage is O(n·k), not O(n²).
    let index = exea.candidate_index();
    println!(
        "candidate engine: {} sources x top-{} candidates ({} KiB vs {} KiB dense)",
        index.source_ids().len(),
        index.k(),
        index.candidate_bytes() / 1024,
        index.source_ids().len() * index.target_ids().len() * 8 / 1024,
    );

    for (name, config) in [
        ("full ExEA repair", RepairConfig::default()),
        (
            "without relation conflicts (cr1)",
            RepairConfig::without_cr1(),
        ),
        ("without one-to-many (cr2)", RepairConfig::without_cr2()),
        ("without low-confidence (cr3)", RepairConfig::without_cr3()),
    ] {
        let outcome = exea.repair(&config);
        let acc = outcome.repaired.accuracy_against(&pair.reference);
        println!(
            "{name:<35} accuracy {acc:.3} (Δ {:+.3}), one-to-one: {}",
            acc - base,
            outcome.repaired.is_one_to_one()
        );
    }
}
