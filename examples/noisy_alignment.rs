//! Robustness to seed noise (the Table VII/VIII experiment in miniature):
//! corrupt a sixth of the seed alignment, retrain, and show that ExEA still
//! repairs the results.
//!
//! Run with `cargo run --example noisy_alignment`.

use ea_data::datasets::{load, DatasetName, DatasetScale};
use ea_data::noise::with_noisy_seed;
use ea_models::{build_model, ModelKind, TrainConfig};
use exea_core::{ExEa, ExeaConfig, RepairConfig};

fn main() {
    let clean = load(DatasetName::ZhEn, DatasetScale::Small);
    let noisy = with_noisy_seed(&clean, 1.0 / 6.0, 99);

    for (label, pair) in [
        ("clean seed", &clean),
        ("noisy seed (1/6 corrupted)", &noisy),
    ] {
        let trained = build_model(ModelKind::DualAmn, TrainConfig::default()).train(pair);
        let base = trained.accuracy(pair);
        let exea = ExEa::new(pair, &trained, ExeaConfig::default());
        let repaired = exea
            .repair(&RepairConfig::default())
            .repaired
            .accuracy_against(&pair.reference);
        println!(
            "{label:<28} base {base:.3} -> repaired {repaired:.3} (Δ {:+.3})",
            repaired - base
        );
    }
}
