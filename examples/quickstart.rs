//! Quickstart: generate a dataset, train a model, explain one prediction and
//! repair the alignment — the five-minute tour of the public API.
//!
//! Run with `cargo run --example quickstart`.

use ea_data::datasets::{load, DatasetName, DatasetScale};
use ea_models::{build_model, ModelKind, TrainConfig};
use exea_core::{ExEa, ExeaConfig, RepairConfig};

fn main() {
    // 1. A DBP15K-style cross-lingual KG pair (synthetic, see DESIGN.md §3).
    let pair = load(DatasetName::ZhEn, DatasetScale::Small);
    println!("{}", pair.stats());

    // 2. Train an embedding-based EA model.
    let model = build_model(ModelKind::GcnAlign, TrainConfig::default());
    let trained = model.train(&pair);
    println!(
        "{} base alignment accuracy: {:.3}",
        trained.model_name(),
        trained.accuracy(&pair)
    );

    // 3. Explain one predicted pair.
    let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
    let prediction = exea
        .predictions()
        .iter()
        .next()
        .expect("the model predicts something");
    let (explanation, adg) = exea.explain_and_score(prediction.source, prediction.target);
    println!("{}", explanation.render(&pair));
    println!("explanation confidence: {:.3}", adg.confidence());

    // 4. Explain *every* prediction in one parallel batch. Results come back
    //    in prediction order and are bit-identical to per-pair calls.
    let started = std::time::Instant::now();
    let all = exea.explain_all();
    let explained = all.iter().filter(|s| !s.explanation.is_empty()).count();
    let mean_confidence = all.iter().map(|s| s.confidence()).sum::<f64>() / all.len().max(1) as f64;
    println!(
        "batched explanations: {}/{} pairs grounded, mean confidence {:.3} ({:.2?})",
        explained,
        all.len(),
        mean_confidence,
        started.elapsed()
    );

    // 5. Repair the full alignment (the repair loops consume the same batch
    //    pipeline internally).
    let outcome = exea.repair(&RepairConfig::default());
    println!(
        "repaired accuracy: {:.3} (changed {} pairs, resolved {} one-to-many conflicts)",
        outcome.repaired.accuracy_against(&pair.reference),
        outcome.stats.changed_pairs,
        outcome.stats.one_to_many_conflicts
    );
}
