//! Fig. 5-style case study: print the explanation each model produces for the
//! same source entity, to compare what the models actually rely on.
//!
//! Run with `cargo run --example case_study`.

use ea_data::datasets::{load, DatasetName, DatasetScale};
use ea_models::{build_model, ModelKind, TrainConfig};
use exea_core::{ExEa, ExeaConfig};

fn main() {
    let pair = load(DatasetName::ZhEn, DatasetScale::Small);
    // A well-connected test entity makes for an interesting case study.
    let source = pair
        .reference
        .sources()
        .into_iter()
        .max_by_key(|&s| pair.source.degree(s))
        .expect("reference alignment is non-empty");
    let truth = pair.reference.target_of(source).unwrap();
    println!(
        "case study for {} (gold counterpart: {})\n",
        pair.source.entity_name(source).unwrap(),
        pair.target.entity_name(truth).unwrap()
    );

    for kind in ModelKind::all() {
        let mut config = TrainConfig::default();
        if kind.is_translation_based() {
            config.epochs = 200;
        }
        let trained = build_model(kind, config).train(&pair);
        let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
        println!("{}", exea.render_case_study(source));
        println!();
    }
}
