//! Compares the four EA models before and after ExEA repair on one dataset —
//! the headline finding that simple models plus repair rival strong models.
//!
//! Run with `cargo run --example model_comparison`.

use ea_data::datasets::{load, DatasetName, DatasetScale};
use ea_models::{build_model, ModelKind, TrainConfig};
use exea_core::{ExEa, ExeaConfig, RepairConfig};

fn main() {
    let pair = load(DatasetName::ZhEn, DatasetScale::Small);
    println!("dataset: {}", pair.stats());
    println!("{:<12} {:>8} {:>8} {:>8}", "model", "base", "repaired", "delta");
    for kind in ModelKind::all() {
        let mut config = TrainConfig::default();
        if kind.is_translation_based() {
            config.epochs = 200;
        }
        let trained = build_model(kind, config).train(&pair);
        let base = trained.accuracy(&pair);
        let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
        let repaired = exea
            .repair(&RepairConfig::default())
            .repaired
            .accuracy_against(&pair.reference);
        println!(
            "{:<12} {:>8.3} {:>8.3} {:>+8.3}",
            kind.label(),
            base,
            repaired,
            repaired - base
        );
    }
}
