//! Compares the four EA models before and after ExEA repair on one dataset —
//! the headline finding that simple models plus repair rival strong models.
//!
//! Run with `cargo run --example model_comparison`.

use ea_data::datasets::{load, DatasetName, DatasetScale};
use ea_models::{build_model, ModelKind, TrainConfig};
use exea_core::{ExEa, ExeaConfig, RepairConfig};

fn main() {
    let pair = load(DatasetName::ZhEn, DatasetScale::Small);
    println!("dataset: {}", pair.stats());
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>10}",
        "model", "base", "repaired", "delta", "mean conf"
    );
    for kind in ModelKind::all() {
        let mut config = TrainConfig::default();
        if kind.is_translation_based() {
            config.epochs = 200;
        }
        let trained = build_model(kind, config).train(&pair);
        let base = trained.accuracy(&pair);
        let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
        // Score every prediction in one parallel batch; the mean confidence
        // summarises how well the model's decisions are grounded in matching
        // structure.
        let scores = exea.confidence_map();
        let mean_conf = scores.iter().map(|(_, _, c)| c).sum::<f64>() / scores.len().max(1) as f64;
        let repaired = exea
            .repair(&RepairConfig::default())
            .repaired
            .accuracy_against(&pair.reference);
        println!(
            "{:<12} {:>8.3} {:>8.3} {:>+8.3} {:>10.3}",
            kind.label(),
            base,
            repaired,
            repaired - base,
            mean_conf
        );
    }
}
