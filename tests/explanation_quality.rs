//! Explanation-quality integration tests: ExEA's explanations must carry more
//! of the model's decision evidence than perturbation baselines at matched
//! sparsity (the Table I claim, verified at unit scale).

use ea_baselines::{BaselineMethod, PerturbationExplainer};
use ea_data::datasets::{load, DatasetName, DatasetScale};
use ea_metrics::FidelityProtocol;
use ea_models::{build_model, ModelKind, TrainConfig};
use exea_core::{ExEa, ExeaConfig, Explainer};

#[test]
fn exea_fidelity_is_competitive_with_baselines_at_matched_sparsity() {
    let pair = load(DatasetName::ZhEn, DatasetScale::Small);
    let model = build_model(ModelKind::GcnAlign, TrainConfig::fast());
    let trained = model.train(&pair);
    let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
    let protocol = FidelityProtocol {
        sample_size: 40,
        hops: 1,
        ..FidelityProtocol::default()
    };
    let budget =
        |p: &ea_graph::AlignmentPair| exea.explain(p.source, p.target).num_triples().max(1);

    let exea_outcome = protocol.evaluate(&pair, model.as_ref(), &trained, &exea, budget);
    let lime = PerturbationExplainer::new(&pair, &trained, BaselineMethod::EaLime);
    let lime_outcome = protocol.evaluate(&pair, model.as_ref(), &trained, &lime, budget);

    assert!(exea_outcome.fidelity >= 0.0 && exea_outcome.fidelity <= 1.0);
    assert!(
        exea_outcome.fidelity + 1e-9 >= lime_outcome.fidelity,
        "ExEA fidelity ({:.3}) should not be below EALime ({:.3}) at matched sparsity",
        exea_outcome.fidelity,
        lime_outcome.fidelity
    );
    // Sparsity levels are genuinely comparable.
    assert!((exea_outcome.sparsity - lime_outcome.sparsity).abs() < 0.35);
}

#[test]
fn explanations_are_sparse_relative_to_candidates() {
    let pair = load(DatasetName::FrEn, DatasetScale::Small);
    let trained = build_model(ModelKind::DualAmn, TrainConfig::fast()).train(&pair);
    let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
    let mut sparsities = Vec::new();
    for p in pair.reference.iter().take(60) {
        let explanation = exea.explain(p.source, p.target);
        let candidates = exea.candidate_triples(p.source, p.target);
        if candidates > 0 {
            sparsities.push(explanation.sparsity(candidates));
        }
    }
    let mean = sparsities.iter().sum::<f64>() / sparsities.len() as f64;
    assert!(
        mean > 0.2 && mean < 1.0,
        "mean sparsity {mean:.3} should show real but selective explanations"
    );
}

#[test]
fn all_explainers_produce_graph_consistent_triples() {
    let pair = load(DatasetName::DbpWd, DatasetScale::Small);
    let trained = build_model(ModelKind::MTransE, TrainConfig::fast()).train(&pair);
    let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
    let p = pair.reference.iter().next().unwrap();
    let explainers: Vec<Box<dyn Explainer + '_>> = vec![
        Box::new(PerturbationExplainer::new(
            &pair,
            &trained,
            BaselineMethod::EaLime,
        )),
        Box::new(PerturbationExplainer::new(
            &pair,
            &trained,
            BaselineMethod::EaShapley,
        )),
        Box::new(PerturbationExplainer::new(
            &pair,
            &trained,
            BaselineMethod::Anchor,
        )),
        Box::new(PerturbationExplainer::new(
            &pair,
            &trained,
            BaselineMethod::Lore,
        )),
    ];
    for explainer in &explainers {
        let e = explainer.explain_pair(p.source, p.target, 6);
        for t in e.source_triples.triples() {
            assert!(
                pair.source.contains_triple(&t),
                "{}",
                explainer.method_name()
            );
        }
        for t in e.target_triples.triples() {
            assert!(
                pair.target.contains_triple(&t),
                "{}",
                explainer.method_name()
            );
        }
    }
    let exea_explanation = exea.explain(p.source, p.target);
    for t in exea_explanation.source_triples.triples() {
        assert!(pair.source.contains_triple(&t));
    }
}
