//! Invariants of the repair pipeline across datasets and models.

use ea_data::datasets::{load, DatasetName, DatasetScale};
use ea_models::{build_model, ModelKind, TrainConfig};
use exea_core::{ExEa, ExeaConfig, RepairConfig};

/// Repair output is always a one-to-one alignment covering all test sources,
/// never claims a seed target entity, and is deterministic.
#[test]
fn repaired_alignment_is_one_to_one_complete_and_deterministic() {
    for dataset in [DatasetName::ZhEn, DatasetName::DbpWd] {
        let pair = load(dataset, DatasetScale::Small);
        let trained = build_model(ModelKind::GcnAlign, TrainConfig::fast()).train(&pair);
        let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
        let a = exea.repair(&RepairConfig::default());
        let b = exea.repair(&RepairConfig::default());
        assert_eq!(
            a.repaired.to_vec(),
            b.repaired.to_vec(),
            "repair must be deterministic"
        );
        assert!(a.repaired.is_one_to_one());
        assert_eq!(a.repaired.len(), pair.reference.len());
        for s in pair.reference.sources() {
            assert!(a.repaired.contains_source(s));
        }
        for p in a.repaired.iter() {
            assert!(
                !pair.seed.contains_target(p.target),
                "{dataset}: repair must not steal seed target {}",
                p.target
            );
        }
    }
}

/// Ablation configurations still produce valid alignments (they only differ
/// in which conflicts get resolved).
#[test]
fn ablated_repairs_are_still_valid_alignments() {
    let pair = load(DatasetName::ZhEn, DatasetScale::Small);
    let trained = build_model(ModelKind::MTransE, TrainConfig::fast()).train(&pair);
    let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
    let base = trained.accuracy(&pair);
    for config in [
        RepairConfig::without_cr1(),
        RepairConfig::without_cr2(),
        RepairConfig::without_cr3(),
    ] {
        let outcome = exea.repair(&config);
        assert!(outcome.repaired.len() >= pair.reference.len() * 9 / 10);
        let acc = outcome.repaired.accuracy_against(&pair.reference);
        assert!(
            acc >= base * 0.9,
            "ablated repair should not fall far below the base accuracy"
        );
    }
}

/// The repair statistics are consistent with the prediction set.
#[test]
fn repair_stats_reflect_prediction_conflicts() {
    let pair = load(DatasetName::JaEn, DatasetScale::Small);
    let trained = build_model(ModelKind::MTransE, TrainConfig::fast()).train(&pair);
    let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
    let outcome = exea.repair(&RepairConfig::default());
    assert_eq!(
        outcome.stats.one_to_many_conflicts,
        exea.predictions().one_to_many_conflicts().len()
    );
    assert!(outcome.stats.changed_pairs <= pair.reference.len());
}
