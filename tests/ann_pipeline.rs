//! End-to-end test of the config-driven exact ↔ ANN candidate switch: with
//! exhaustive probing (`nprobe = nlist`, recall 1.0) the whole downstream
//! pipeline — prediction, repair (cr2/cr3), top-candidate verification —
//! must make exactly the decisions the exact scan makes; with partial
//! probing it must still produce a valid one-to-one repaired alignment.

use ea_data::datasets::{load, DatasetName, DatasetScale};
use ea_embed::{CandidateSearch, IvfParams};
use ea_models::{build_model, ModelKind, TrainConfig};
use exea_core::{verify_top_candidates, ExEa, ExeaConfig, RepairConfig};

#[test]
fn exhaustive_ivf_pipeline_reproduces_exact_repair_and_verification() {
    let pair = load(DatasetName::ZhEn, DatasetScale::Small);
    let trained = build_model(ModelKind::MTransE, TrainConfig::fast()).train(&pair);

    // Pin the baseline to the exact scan explicitly: the config default is
    // env-overridable (EXEA_CANDIDATE_SEARCH), and a partial-probing override
    // would silently change what this test compares against.
    let exact = ExEa::new(
        &pair,
        &trained,
        ExeaConfig {
            candidate_search: CandidateSearch::Exact,
            ..ExeaConfig::default()
        },
    );
    let ivf = ExEa::new(
        &pair,
        &trained,
        ExeaConfig {
            candidate_search: CandidateSearch::Ivf(IvfParams::exhaustive()),
            ..ExeaConfig::default()
        },
    );

    // Predictions (greedy k=1) agree exactly.
    assert_eq!(exact.predictions().to_vec(), ivf.predictions().to_vec());

    // The full repair pipeline makes identical decisions.
    let exact_outcome = exact.repair(&RepairConfig::default());
    let ivf_outcome = ivf.repair(&RepairConfig::default());
    assert_eq!(
        exact_outcome.repaired.to_vec(),
        ivf_outcome.repaired.to_vec(),
        "repair decisions diverged at recall-1.0 settings"
    );
    assert_eq!(exact_outcome.stats, ivf_outcome.stats);

    // Top-candidate verification sees the same candidates and verdicts.
    let exact_verdicts = verify_top_candidates(&exact, 2);
    let ivf_verdicts = verify_top_candidates(&ivf, 2);
    assert_eq!(exact_verdicts, ivf_verdicts);
}

#[test]
fn partial_probing_pipeline_still_repairs_to_a_one_to_one_alignment() {
    let pair = load(DatasetName::ZhEn, DatasetScale::Small);
    let trained = build_model(ModelKind::GcnAlign, TrainConfig::fast()).train(&pair);
    let exea = ExEa::new(
        &pair,
        &trained,
        ExeaConfig {
            candidate_search: CandidateSearch::Ivf(IvfParams {
                nprobe: 3,
                ..IvfParams::default()
            }),
            ..ExeaConfig::default()
        },
    );
    let outcome = exea.repair(&RepairConfig::default());
    assert!(outcome.repaired.is_one_to_one());
    for s in pair.reference.sources() {
        assert!(
            outcome.repaired.contains_source(s),
            "source {s} lost by ANN-backed repair"
        );
    }
    // Approximate candidates must still repair to something better than the
    // raw greedy prediction of this weak model.
    let base = trained.accuracy(&pair);
    let repaired = outcome.repaired.accuracy_against(&pair.reference);
    assert!(
        repaired > base,
        "ANN-backed repair should still improve accuracy ({base:.3} -> {repaired:.3})"
    );
}
