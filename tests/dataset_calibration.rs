//! Calibration checks of the synthetic dataset generator against the
//! qualitative properties the paper relies on.

use ea_data::datasets::{config_for, load, DatasetName, DatasetScale};
use ea_data::noise::with_noisy_seed;
use ea_graph::RelationFunctionality;

#[test]
fn all_five_datasets_generate_with_expected_shape() {
    for name in DatasetName::all() {
        let pair = load(name, DatasetScale::Small);
        let stats = pair.stats();
        assert_eq!(stats.seed_pairs + stats.reference_pairs, 300, "{name}");
        assert!(stats.source.average_degree > 3.0, "{name} too sparse");
        assert_eq!(
            stats.source.isolated_entities, 0,
            "{name} has isolated world entities"
        );
        // Seed is roughly 30% of the gold alignment, as in the benchmarks.
        let ratio = stats.seed_pairs as f64 / (stats.seed_pairs + stats.reference_pairs) as f64;
        assert!((ratio - 0.3).abs() < 0.02, "{name} seed ratio {ratio}");
    }
}

#[test]
fn dataset_difficulty_ordering_matches_the_paper() {
    // FR-EN is the densest cross-lingual dataset; the heterogeneous pairs
    // merge relations on the target side.
    let fr = load(DatasetName::FrEn, DatasetScale::Small).stats();
    let zh = load(DatasetName::ZhEn, DatasetScale::Small).stats();
    let ja = load(DatasetName::JaEn, DatasetScale::Small).stats();
    assert!(fr.source.average_degree > zh.source.average_degree);
    assert!(zh.source.average_degree > ja.source.average_degree);
    for name in [DatasetName::DbpWd, DatasetName::DbpYago] {
        let pair = load(name, DatasetScale::Small);
        assert!(pair.target.num_relations() < pair.source.num_relations());
    }
}

#[test]
fn functional_relations_exist_for_adg_weighting() {
    let pair = load(DatasetName::ZhEn, DatasetScale::Small);
    let func = RelationFunctionality::compute(&pair.source);
    let mut high = 0usize;
    let mut lower = 0usize;
    for r in pair.source.relation_ids() {
        let f = func.max_directional(r);
        if f > 0.97 {
            high += 1;
        } else if f > 0.0 && f < 0.9 {
            lower += 1;
        }
    }
    assert!(high > 0, "some relations should be (nearly) functional");
    assert!(
        lower > 0,
        "functionality should vary across relations so ADG edge weights differ"
    );
}

#[test]
fn noise_injection_only_touches_the_seed() {
    let clean = load(DatasetName::DbpWd, DatasetScale::Small);
    let noisy = with_noisy_seed(&clean, 1.0 / 6.0, 4);
    assert_eq!(noisy.reference.to_vec(), clean.reference.to_vec());
    assert_eq!(noisy.seed.len(), clean.seed.len());
    let changed = clean
        .seed
        .iter()
        .filter(|p| noisy.seed.target_of(p.source) != Some(p.target))
        .count();
    assert_eq!(changed, (clean.seed.len() as f64 / 6.0).round() as usize);
    assert_eq!(noisy.source.num_triples(), clean.source.num_triples());
}

#[test]
fn scales_and_configs_are_consistent() {
    assert!(DatasetScale::Bench.alignment_pairs() > DatasetScale::Small.alignment_pairs());
    assert!(DatasetScale::Paper.alignment_pairs() == 15000);
    for name in DatasetName::all() {
        let cfg = config_for(name, DatasetScale::Small);
        assert_eq!(cfg.world_entities, 300);
        assert!(cfg.seed_ratio > 0.0 && cfg.seed_ratio < 1.0);
    }
}
