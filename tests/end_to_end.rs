//! End-to-end integration test: dataset → model → explanation → ADG → repair.

use ea_data::datasets::{load, DatasetName, DatasetScale};
use ea_models::{build_model, ModelKind, TrainConfig};
use exea_core::{ExEa, ExeaConfig, RepairConfig};

#[test]
fn full_pipeline_improves_every_model_on_zh_en() {
    let pair = load(DatasetName::ZhEn, DatasetScale::Small);
    for kind in ModelKind::all() {
        let trained = build_model(kind, TrainConfig::fast()).train(&pair);
        let base = trained.accuracy(&pair);
        let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
        let outcome = exea.repair(&RepairConfig::default());
        let repaired = outcome.repaired.accuracy_against(&pair.reference);
        assert!(
            repaired >= base,
            "{kind}: repair must not hurt accuracy ({base:.3} -> {repaired:.3})"
        );
        assert!(
            outcome.repaired.is_one_to_one(),
            "{kind}: output must be one-to-one"
        );
        // Every test entity is still aligned after repair.
        for s in pair.reference.sources() {
            assert!(outcome.repaired.contains_source(s));
        }
    }
}

#[test]
fn explanations_exist_for_most_correct_predictions() {
    let pair = load(DatasetName::FrEn, DatasetScale::Small);
    let trained = build_model(ModelKind::DualAmn, TrainConfig::fast()).train(&pair);
    let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
    let predictions = exea.predictions();
    let mut explained = 0usize;
    let mut correct = 0usize;
    for p in pair.reference.iter() {
        if predictions.contains(&p) {
            correct += 1;
            if !exea.explain(p.source, p.target).is_empty() {
                explained += 1;
            }
        }
    }
    assert!(correct > 0, "the model predicts something correctly");
    assert!(
        explained * 3 >= correct * 2,
        "at least two thirds of correct predictions should be explainable ({explained}/{correct})"
    );
}

#[test]
fn confidence_separates_correct_from_incorrect_predictions() {
    let pair = load(DatasetName::ZhEn, DatasetScale::Small);
    let trained = build_model(ModelKind::GcnAlign, TrainConfig::fast()).train(&pair);
    let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
    let mut correct_confidence = Vec::new();
    let mut incorrect_confidence = Vec::new();
    for p in exea.predictions().iter().take(150) {
        let (_, adg) = exea.explain_and_score(p.source, p.target);
        if pair.reference.contains(&p) {
            correct_confidence.push(adg.confidence());
        } else {
            incorrect_confidence.push(adg.confidence());
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    assert!(!correct_confidence.is_empty() && !incorrect_confidence.is_empty());
    assert!(
        avg(&correct_confidence) > avg(&incorrect_confidence),
        "confidence should separate correct ({:.3}) from incorrect ({:.3}) predictions",
        avg(&correct_confidence),
        avg(&incorrect_confidence)
    );
}
