//! Cross-crate tests of the baseline explainers and the simulated LLM.

use ea_baselines::{BaselineMethod, LlmVerifier, PerturbationExplainer, SimulatedLlmExplainer};
use ea_data::datasets::{load, DatasetName, DatasetScale};
use ea_graph::AlignmentPair;
use ea_models::{build_model, ModelKind, TrainConfig};
use exea_core::{ExEa, ExeaConfig, Explainer, VerificationOutcome};

#[test]
fn every_baseline_method_runs_on_every_model_family() {
    let pair = load(DatasetName::ZhEn, DatasetScale::Small);
    let p = pair.reference.iter().next().unwrap();
    for kind in [ModelKind::MTransE, ModelKind::GcnAlign] {
        let trained = build_model(kind, TrainConfig::fast()).train(&pair);
        for method in BaselineMethod::table1() {
            let explainer = PerturbationExplainer::new(&pair, &trained, method);
            let e = explainer.explain_pair(p.source, p.target, 5);
            assert!(e.num_triples() <= 5, "{kind} {method:?}");
        }
    }
}

#[test]
fn llm_match_explainer_pairs_triples_by_name() {
    let pair = load(DatasetName::ZhEn, DatasetScale::Small);
    let explainer = SimulatedLlmExplainer::new(&pair);
    let mut matched_any = false;
    for p in pair.reference.iter().take(30) {
        let e = explainer.explain_pair(p.source, p.target, 8);
        if !e.source_triples.is_empty() && !e.target_triples.is_empty() {
            matched_any = true;
            break;
        }
    }
    assert!(
        matched_any,
        "the simulated LLM should match some triples by name"
    );
}

#[test]
fn verification_fusion_beats_or_matches_the_weaker_component() {
    let pair = load(DatasetName::ZhEn, DatasetScale::Small);
    let trained = build_model(ModelKind::GcnAlign, TrainConfig::fast()).train(&pair);
    let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
    let llm = LlmVerifier::new(&pair);

    // Balanced candidate set built from predictions.
    let predictions = exea.predictions();
    let mut candidates: Vec<(AlignmentPair, bool)> = Vec::new();
    for p in predictions.iter() {
        let label = pair.reference.contains(&p);
        candidates.push((p, label));
        if candidates.len() >= 120 {
            break;
        }
    }
    let labels: Vec<bool> = candidates.iter().map(|&(_, l)| l).collect();
    let llm_dec: Vec<bool> = candidates.iter().map(|(p, _)| llm.verify(p)).collect();
    let fused_dec: Vec<bool> = candidates
        .iter()
        .map(|(p, _)| llm.verify_with_exea(&exea, p))
        .collect();
    let llm_out = VerificationOutcome::from_decisions(&llm_dec, &labels);
    let fused_out = VerificationOutcome::from_decisions(&fused_dec, &labels);
    // The fusion should not collapse below the LLM-only baseline by much.
    assert!(
        fused_out.f1 + 0.15 >= llm_out.f1,
        "fusion F1 {:.3} collapsed versus LLM-only {:.3}",
        fused_out.f1,
        llm_out.f1
    );
}

#[test]
fn baselines_differ_from_each_other_on_at_least_some_pairs() {
    let pair = load(DatasetName::ZhEn, DatasetScale::Small);
    let trained = build_model(ModelKind::MTransE, TrainConfig::fast()).train(&pair);
    let lime = PerturbationExplainer::new(&pair, &trained, BaselineMethod::EaLime);
    let shapley = PerturbationExplainer::new(&pair, &trained, BaselineMethod::EaShapley);
    let mut differ = false;
    for p in pair.reference.iter().take(20) {
        let a = lime.explain_pair(p.source, p.target, 5);
        let b = shapley.explain_pair(p.source, p.target, 5);
        if a.source_triples.to_hash_set() != b.source_triples.to_hash_set()
            || a.target_triples.to_hash_set() != b.target_triples.to_hash_set()
        {
            differ = true;
            break;
        }
    }
    assert!(
        differ,
        "EALime and EAShapley should not be byte-identical methods"
    );
}
