//! Offline shim of `serde_derive`.
//!
//! The workspace builds in a container without crates.io access, and nothing
//! in the codebase actually serializes — the `#[derive(Serialize,
//! Deserialize)]` annotations only declare intent for downstream users. These
//! no-op derives keep the annotations compiling; swap the vendored `serde`
//! for the real crate to regain functional serialization.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
