//! Offline shim of `rand_chacha`: [`ChaCha8Rng`] implements the workspace's
//! vendored [`rand`] traits on top of a genuine ChaCha8 keystream, so seeded
//! streams are deterministic, well mixed, and independent of `StdRng`.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// A ChaCha8-based random generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u64; 8],
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let mut working = state;
        for _ in 0..4 {
            // Two rounds per loop iteration: 8 rounds total (ChaCha8).
            quarter(&mut working, 0, 4, 8, 12);
            quarter(&mut working, 1, 5, 9, 13);
            quarter(&mut working, 2, 6, 10, 14);
            quarter(&mut working, 3, 7, 11, 15);
            quarter(&mut working, 0, 5, 10, 15);
            quarter(&mut working, 1, 6, 11, 12);
            quarter(&mut working, 2, 7, 8, 13);
            quarter(&mut working, 3, 4, 9, 14);
        }
        for (w, s) in working.iter_mut().zip(&state) {
            *w = w.wrapping_add(*s);
        }
        for (i, slot) in self.buffer.iter_mut().enumerate() {
            *slot = (working[2 * i] as u64) | ((working[2 * i + 1] as u64) << 32);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.index >= self.buffer.len() {
            self.refill();
        }
        let v = self.buffer[self.index];
        self.index += 1;
        v
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, slot) in key.iter_mut().enumerate() {
            let mut bytes = [0u8; 4];
            bytes.copy_from_slice(&seed[4 * i..4 * i + 4]);
            *slot = u32::from_le_bytes(bytes);
        }
        Self {
            key,
            counter: 0,
            buffer: [0; 8],
            index: usize::MAX,
        }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = [0u8; 32];
        let mut s = state;
        for chunk in seed.chunks_mut(8) {
            let mut z = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            s = z;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            chunk.copy_from_slice(&(z ^ (z >> 31)).to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        let mut c = ChaCha8Rng::seed_from_u64(6);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn implements_the_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..100 {
            let x = rng.gen_range(0..10usize);
            assert!(x < 10);
        }
    }
}
