//! Offline shim of the `memmap2` read-only mapping API surface this
//! workspace uses.
//!
//! The build container has no crates.io access, so this crate provides the
//! one type the on-disk candidate store needs: [`Mmap`], a read-only
//! memory-mapped view of a whole file that derefs to `&[u8]`. On unix it is
//! implemented directly on `mmap(2)`/`munmap(2)` (declared `extern "C"`
//! against the libc the Rust standard library already links); on other
//! platforms — or when the kernel refuses the mapping — [`Mmap::map`]
//! returns an error and callers fall back to buffered positional reads
//! (which `ea_embed::storage` does automatically).
//!
//! Swapping in the real `memmap2` crate requires renaming
//! `memmap::Mmap::map(&file)` to `unsafe { memmap2::Mmap::map(&file) }`: the
//! real crate marks `map` unsafe because another process truncating the file
//! turns reads into SIGBUS. This shim accepts the same caveat but keeps the
//! call safe, since every consumer in the workspace maps private spill files
//! it wrote itself.
//!
//! All `unsafe` in the workspace lives here (the consuming crates are
//! `#![forbid(unsafe_code)]`); the invariants are the classic mmap ones —
//! the pointer returned by a successful `mmap` is valid for `len` bytes
//! until `munmap`, and the mapping is `MAP_PRIVATE` read-only so the slice
//! contents are immutable from this process's point of view.

/// A read-only memory mapping of an entire file, dereferencing to `&[u8]`.
///
/// Dropping the value unmaps the region. Empty files map to an empty slice
/// without touching `mmap(2)` (which rejects zero-length mappings).
#[derive(Debug)]
pub struct Mmap {
    ptr: *mut core::ffi::c_void,
    len: usize,
}

// SAFETY: the mapping is read-only and owned uniquely by this value; the
// underlying pages are plain memory valid from any thread until `munmap`
// runs in `Drop` (which requires exclusive ownership).
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

#[cfg(unix)]
mod sys {
    use core::ffi::c_void;
    use std::os::raw::{c_int, c_long};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: c_long,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

#[cfg(target_os = "linux")]
mod fadvise {
    use std::os::raw::c_int;

    pub const POSIX_FADV_WILLNEED: c_int = 3;

    extern "C" {
        // off_t is 64-bit on every linux target Rust supports (LFS is the
        // default ABI for the glibc/musl versions std links against).
        pub fn posix_fadvise(fd: c_int, offset: i64, len: i64, advice: c_int) -> c_int;
    }
}

/// Advises the kernel that `len` bytes of `file` starting at `offset` will
/// be read soon (`posix_fadvise(POSIX_FADV_WILLNEED)`), kicking off
/// readahead so the following positional reads hit the page cache.
///
/// Purely a hint: on non-linux platforms, or when the kernel rejects the
/// advice (pipes, sealed sandboxes), this is a silent no-op — correctness
/// never depends on it. Ranges past EOF are clamped by the kernel.
#[cfg(target_os = "linux")]
pub fn advise_willneed(file: &std::fs::File, offset: u64, len: u64) {
    use std::os::unix::io::AsRawFd;
    let (Ok(offset), Ok(len)) = (i64::try_from(offset), i64::try_from(len)) else {
        return;
    };
    if len == 0 {
        return;
    }
    // SAFETY: posix_fadvise only reads its arguments; an invalid range or fd
    // yields an error return we deliberately ignore (advisory only).
    unsafe {
        fadvise::posix_fadvise(file.as_raw_fd(), offset, len, fadvise::POSIX_FADV_WILLNEED);
    }
}

/// See the linux variant; readahead advice is unavailable here, so this is
/// a no-op that keeps call sites platform-independent.
#[cfg(not(target_os = "linux"))]
pub fn advise_willneed(_file: &std::fs::File, _offset: u64, _len: u64) {}

impl Mmap {
    /// Maps the whole of `file` read-only.
    ///
    /// Fails with the kernel's error when the mapping is refused (or with
    /// `Unsupported` on non-unix platforms); callers are expected to fall
    /// back to positional reads in that case.
    #[cfg(unix)]
    pub fn map(file: &std::fs::File) -> std::io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "file too large to map on this platform",
            ));
        }
        let len = len as usize;
        if len == 0 {
            return Ok(Mmap {
                ptr: core::ptr::null_mut(),
                len: 0,
            });
        }
        // SAFETY: plain read-only file mapping; arguments are well-formed
        // (page-aligned offset 0, open fd, non-zero length). The result is
        // checked against MAP_FAILED before use.
        let ptr = unsafe {
            sys::mmap(
                core::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::MAP_FAILED {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Mmap { ptr, len })
    }

    /// Non-unix platforms cannot map; callers use their pread fallback.
    #[cfg(not(unix))]
    pub fn map(_file: &std::fs::File) -> std::io::Result<Mmap> {
        Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "memmap shim: no mmap on this platform",
        ))
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl core::ops::Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: a successful mmap of `len` bytes stays valid until Drop;
        // the mapping is read-only, so &[u8] aliasing is sound.
        unsafe { core::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if self.len != 0 {
            // SAFETY: ptr/len came from a successful mmap and are unmapped
            // exactly once.
            unsafe {
                sys::munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("memmap-shim-{}-{name}", std::process::id()))
    }

    #[test]
    fn maps_whole_file_contents() {
        let path = temp_path("contents");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let map = Mmap::map(&file).unwrap();
        assert_eq!(map.len(), payload.len());
        assert!(!map.is_empty());
        assert_eq!(&map[..], &payload[..]);
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn advise_willneed_is_a_harmless_hint() {
        let path = temp_path("advise");
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&[0u8; 4096])
            .unwrap();
        let file = std::fs::File::open(&path).unwrap();
        // None of these may panic or corrupt anything: in-range, past-EOF,
        // zero-length, and unrepresentable ranges are all just hints.
        advise_willneed(&file, 0, 4096);
        advise_willneed(&file, 1 << 40, 4096);
        advise_willneed(&file, 0, 0);
        advise_willneed(&file, u64::MAX, u64::MAX);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_path("empty");
        std::fs::File::create(&path).unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let map = Mmap::map(&file).unwrap();
        assert!(map.is_empty());
        assert_eq!(&map[..], &[] as &[u8]);
        std::fs::remove_file(&path).unwrap();
    }
}
