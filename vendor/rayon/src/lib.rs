//! Offline shim of the `rayon` API surface this workspace uses.
//!
//! The build container has no crates.io access, so this crate re-implements
//! the small slice of rayon the ExEA pipeline needs — `par_iter` /
//! `into_par_iter`, `map`, `collect`, `for_each`, and `join` — on top of
//! `std::thread::scope`. Work is split into per-thread chunks that preserve
//! input order, so `par_iter().map(f).collect::<Vec<_>>()` returns results in
//! exactly the order a sequential `iter().map(f).collect()` would: parallel
//! runs are bit-identical to sequential ones for pure `f`.
//!
//! Swapping in the real rayon crate requires no source changes: the exercised
//! names and semantics match.

#![forbid(unsafe_code)]

use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// Number of worker threads to use (respects `RAYON_NUM_THREADS`).
pub fn current_num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Runs two closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon shim: join worker panicked");
        (ra, rb)
    })
}

/// Order-preserving parallel map used by every adapter in this shim.
fn parallel_map<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n).max(1);
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (in_chunk, out_chunk) in slots.chunks_mut(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (slot, result) in in_chunk.iter_mut().zip(out_chunk.iter_mut()) {
                    let item = slot.take().expect("rayon shim: item already consumed");
                    *result = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("rayon shim: worker chunk did not complete"))
        .collect()
}

/// A parallel iterator: a materialized work list plus a composed pipeline.
pub trait ParallelIterator: Sized + Send {
    /// Item type produced by the iterator.
    type Item: Send;

    /// Executes the pipeline and returns all results in input order.
    fn run(self) -> Vec<Self::Item>;

    /// Maps every item through `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Runs `f` on every item in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        let _ = self.map(f).run();
    }

    /// Collects the results into `C` (input order is preserved).
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_vec(self.run())
    }

    /// Accepted for API compatibility; the shim ignores the hint.
    fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

/// Collection types a parallel iterator can `collect` into.
pub trait FromParallelIterator<T: Send> {
    /// Builds the collection from the already-ordered results.
    fn from_par_vec(items: Vec<T>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_vec(items: Vec<T>) -> Self {
        items
    }
}

/// Base parallel iterator over a materialized item list.
pub struct IterBridge<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IterBridge<T> {
    type Item = T;

    fn run(self) -> Vec<T> {
        self.items
    }
}

/// Parallel `map` adapter.
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync + Send,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        parallel_map(self.base.run(), &self.f)
    }
}

/// Types convertible into an owning parallel iterator.
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item: Send;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IterBridge<T>;

    fn into_par_iter(self) -> IterBridge<T> {
        IterBridge { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = IterBridge<usize>;

    fn into_par_iter(self) -> IterBridge<usize> {
        IterBridge {
            items: self.collect(),
        }
    }
}

/// Types whose references can be iterated in parallel (`par_iter`).
pub trait IntoParallelRefIterator<'data> {
    /// Item type (a shared reference).
    type Item: Send + 'data;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Creates a borrowing parallel iterator.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = IterBridge<&'data T>;

    fn par_iter(&'data self) -> IterBridge<&'data T> {
        IterBridge {
            items: self.iter().collect(),
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = IterBridge<&'data T>;

    fn par_iter(&'data self) -> IterBridge<&'data T> {
        IterBridge {
            items: self.iter().collect(),
        }
    }
}

/// The usual glob import: `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let parallel: Vec<u64> = input.par_iter().map(|&x| x * x).collect();
        let sequential: Vec<u64> = input.iter().map(|&x| x * x).collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn into_par_iter_consumes() {
        let out: Vec<String> = vec![1, 2, 3]
            .into_par_iter()
            .map(|x| format!("v{x}"))
            .collect();
        assert_eq!(out, vec!["v1", "v2", "v3"]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 40 + 2, || "ok");
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..1000).collect();
        items.par_iter().for_each(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }
}
