//! Offline shim of the `proptest` API surface this workspace uses.
//!
//! Implements the `proptest!` macro, range/tuple/`vec`/bool strategies,
//! `prop_map`, and the `prop_assert*` family on top of the vendored `rand`
//! crate. Each property runs `ProptestConfig::cases` times with inputs drawn
//! from a generator seeded deterministically from the test's module path, so
//! failures are reproducible run-to-run. Unlike real proptest there is **no
//! shrinking**: a failing case reports the assertion panic directly.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-property configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic RNG for one property, seeded from its fully-qualified name.
pub fn test_rng(name: &str) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}

/// A value generator. The shim's strategies sample directly (no shrink tree).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Boolean strategies.
pub mod bool {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// The strategy behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }

    /// Generates `true` and `false` with equal probability.
    pub const ANY: Any = Any;
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Anything accepted as a `vec` length specification.
    pub trait IntoSizeRange {
        /// Returns the inclusive-exclusive `(min, max)` length bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self + 1)
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.min + 1 >= self.max {
                self.min
            } else {
                rng.gen_range(self.min..self.max)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates vectors whose length lies in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        assert!(min < max, "empty vec length range");
        VecStrategy { element, min, max }
    }
}

/// The `prop::` namespace (`prop::collection::vec`, `prop::bool::ANY`, …).
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
}

/// The usual glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Defines property tests. Mirrors proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..10, v in prop::collection::vec(0u32..5, 1..20)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            let ($(ref $arg,)+) = ($($strat,)+);
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample($arg, &mut __rng);)+
                // The closure gives `prop_assume!` an early-exit scope that
                // skips only the current case, not the whole property.
                #[allow(clippy::redundant_closure_call)]
                (move || { $body })();
            }
        }
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..17, f in -2.0f32..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_and_map_compose(v in prop::collection::vec((0u32..5, prop::bool::ANY), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (n, _b) in v {
                prop_assert!(n < 5);
            }
        }

        #[test]
        fn assume_skips_cases(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn prop_map_transforms() {
        let strategy = (0usize..5).prop_map(|x| x * 10);
        let mut rng = crate::test_rng("prop_map_transforms");
        for _ in 0..50 {
            let v = strategy.sample(&mut rng);
            assert!(v % 10 == 0 && v < 50);
        }
    }
}
