//! Offline shim of the `criterion` API surface this workspace uses.
//!
//! Provides `Criterion::bench_function`, `benchmark_group` (with
//! `sample_size`), `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark is warmed
//! up, then timed over enough iterations to fill a small measurement window;
//! the mean, minimum and maximum per-iteration times are printed as a table
//! row. No statistics files, plots, or outlier analysis — just honest
//! wall-clock numbers suitable for before/after comparisons.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of the standard black box (criterion's is equivalent here).
pub use std::hint::black_box;

/// Measurement settings shared by a group of benchmarks.
#[derive(Debug, Clone)]
struct Settings {
    /// Number of timed samples collected per benchmark.
    sample_size: usize,
    /// Target wall-clock time per sample.
    sample_target: Duration,
    /// Warm-up time before sampling.
    warm_up: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            sample_size: 20,
            sample_target: Duration::from_millis(50),
            warm_up: Duration::from_millis(100),
        }
    }
}

/// The benchmark harness.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Runs one benchmark and prints its timing row.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, &self.settings, f);
        self
    }

    /// Starts a named group of benchmarks with shared settings.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            settings: Settings::default(),
        }
    }
}

/// A group of benchmarks with its own settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, &self.settings, f);
        self
    }

    /// Ends the group (matching criterion's API; nothing to flush here).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; calls back into the timing loop.
pub struct Bencher<'a> {
    settings: &'a Settings,
    /// Collected per-iteration durations (one entry per sample).
    samples: Vec<Duration>,
}

impl Bencher<'_> {
    /// Times `routine`, storing per-iteration durations.
    pub fn iter<R, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> R,
    {
        // Warm-up: also used to estimate a per-iteration cost so each sample
        // batches enough iterations to dominate timer overhead.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.settings.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((self.settings.sample_target.as_secs_f64() / per_iter.max(1e-9)) as u64)
            .clamp(1, 1_000_000);

        self.samples.clear();
        for _ in 0..self.settings.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }
}

fn run_benchmark<F>(name: &str, settings: &Settings, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        settings,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {name:<42} (no samples collected)");
        return;
    }
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    let mean = bencher
        .samples
        .iter()
        .sum::<Duration>()
        .checked_div(bencher.samples.len() as u32)
        .unwrap_or_default();
    println!(
        "  {name:<42} time: [{} {} {}]",
        format_duration(min),
        format_duration(mean),
        format_duration(max)
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        // Keep the shim test fast: tiny warm-up and window.
        let mut criterion = Criterion {
            settings: Settings {
                sample_size: 3,
                sample_target: Duration::from_micros(200),
                warm_up: Duration::from_micros(200),
            },
        };
        let mut ran = false;
        criterion.bench_function("noop", |b| {
            ran = true;
            b.iter(|| black_box(1 + 1));
        });
        assert!(ran);
    }

    #[test]
    fn groups_apply_sample_size() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        group.sample_size(5);
        assert_eq!(group.settings.sample_size, 5);
        group.finish();
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert!(format_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
