//! Offline shim of the `rand` 0.8 API surface used by this workspace.
//!
//! The container this repository builds in has no access to crates.io, so the
//! workspace vendors a minimal, dependency-free implementation of the handful
//! of `rand` items the code actually uses: the [`Rng`] / [`RngCore`] /
//! [`SeedableRng`] traits, [`rngs::StdRng`], and [`seq::SliceRandom`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — statistically solid and fully deterministic for a given seed,
//! which is all the synthetic-dataset generators and trainers here require.
//! It intentionally does NOT match upstream `rand`'s stream bit-for-bit.

#![forbid(unsafe_code)]

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (kept for signature compatibility; unused by the shim).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn from the "standard" distribution
/// (`rng.gen::<T>()`): floats in `[0, 1)`, full-range integers, fair bools.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) as u64;
                if span == u64::MAX {
                    return start + (rng.next_u64() as $t);
                }
                start + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::draw(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = <$t as Standard>::draw(rng);
                start + u * (end - start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Unbiased uniform draw from `[0, span)` (`span == 0` means the full range).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    // Rejection sampling on the top of the range to remove modulo bias.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        <f64 as Standard>::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64 step, used for seeding.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut first = [0u8; 8];
            first.copy_from_slice(&seed[..8]);
            Self::from_u64(u64::from_le_bytes(first))
        }

        fn seed_from_u64(state: u64) -> Self {
            Self::from_u64(state)
        }
    }
}

/// Sequence helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-1.0f32..=1.0);
            assert!((-1.0..=1.0).contains(&y));
            let z: f64 = rng.gen();
            assert!((0.0..1.0).contains(&z));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
