//! Offline shim of `serde`.
//!
//! Provides marker traits with the canonical names plus the no-op derive
//! macros from the vendored `serde_derive`, so `#[derive(Serialize,
//! Deserialize)]` and `use serde::{Serialize, Deserialize}` compile without
//! network access. Replace this vendored crate with the real `serde` to get
//! functional serialization — no source changes needed elsewhere.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
