//! `exea` — umbrella crate of the ExEA workspace.
//!
//! Re-exports every member crate under one roof so downstream users (and the
//! examples and integration tests in this repository) can depend on a single
//! package. See the README for the workspace layout and the
//! explain → ADG → repair → verify pipeline walkthrough.

#![forbid(unsafe_code)]

pub use ea_baselines as baselines;
pub use ea_data as data;
pub use ea_embed as embed;
pub use ea_graph as graph;
pub use ea_metrics as metrics;
pub use ea_models as models;
pub use exea_core as core;
