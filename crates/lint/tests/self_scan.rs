//! The lint's strongest fixture is the workspace itself: every rule must
//! report zero diagnostics on the real tree. This is what the `lint-invariants`
//! CI job enforces; the test keeps the guarantee local to `cargo test` too.

use std::path::Path;
use std::process::Command;

#[test]
fn workspace_is_clean() {
    let workspace_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let out = Command::new(env!("CARGO_BIN_EXE_exea-lint"))
        .args(["--workspace", "--format=compact"])
        .arg(format!("--root={}", workspace_root.display()))
        .output()
        .expect("spawn exea-lint");

    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace self-scan found violations:\n{stdout}\n{stderr}"
    );
    assert_eq!(stdout, "", "expected no diagnostics, got:\n{stdout}");

    // Sanity: the scan actually covered the tree (guards against a walk bug
    // silently scanning zero files and vacuously passing).
    let scanned: usize = stderr
        .split_whitespace()
        .find_map(|w| w.parse().ok())
        .unwrap_or(0);
    assert!(
        scanned > 50,
        "suspiciously few files scanned ({scanned}):\n{stderr}"
    );
}
