//! Golden-fixture UI tests: each rule directory under `tests/fixtures/` holds
//! a violating fixture, an `allowed` counterpart exercising the inline
//! justification syntax, and an `expected.compact` file with the exact
//! diagnostics (path:line:col, rule, message) the scan must produce. The
//! comparison is byte-for-byte, so a drifting column or reworded message
//! fails loudly.

use std::path::Path;
use std::process::{Command, Output};

/// Runs the built `exea-lint` binary from the crate root so fixture paths in
/// the output are stable (`tests/fixtures/...`).
fn lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_exea-lint"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawn exea-lint")
}

/// Scans one fixture directory (bad + allowed together, so suppression is
/// exercised in the same run) and compares against its golden file.
fn check_fixture_dir(dir: &str) {
    let fixture = format!("tests/fixtures/{dir}");
    let out = lint(&["--format=compact", &fixture]);
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");

    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join(&fixture)
        .join("expected.compact");
    let golden = std::fs::read_to_string(&golden_path).expect("read golden file");

    assert_eq!(
        stdout,
        golden,
        "diagnostics for `{dir}` diverged from {}",
        golden_path.display()
    );
    let expect_clean = golden.is_empty();
    assert_eq!(
        out.status.code(),
        Some(if expect_clean { 0 } else { 1 }),
        "exit code for `{dir}`"
    );
}

#[test]
fn golden_nan_unsafe_order() {
    check_fixture_dir("nan-unsafe-order");
}

#[test]
fn golden_open_coded_float_sort() {
    check_fixture_dir("open-coded-float-sort");
}

#[test]
fn golden_unordered_float_fold() {
    check_fixture_dir("unordered-float-fold");
}

#[test]
fn golden_nondeterministic_par_idiom() {
    check_fixture_dir("nondeterministic-par-idiom");
}

#[test]
fn golden_unsafe_boundary() {
    check_fixture_dir("unsafe-boundary");
}

#[test]
fn golden_wall_clock_in_hot_path() {
    check_fixture_dir("wall-clock-in-hot-path");
}

#[test]
fn golden_panic_in_library_path() {
    check_fixture_dir("panic-in-library-path");
}

/// Banned patterns inside strings, raw strings, comments and char literals
/// must never surface: the golden file for this directory is empty.
#[test]
fn golden_no_false_positives() {
    check_fixture_dir("no-false-positives");
}

/// Allow-directive hygiene: missing justification and unknown rule names are
/// rejected (and do not suppress), unused directives are flagged.
#[test]
fn golden_malformed_allow() {
    check_fixture_dir("malformed-allow");
}

/// Every allowed fixture on its own is fully clean — the justified allow
/// directives suppress the violations they annotate and are all *used* (no
/// `unused-allow` residue).
#[test]
fn allowed_fixtures_are_clean_in_isolation() {
    for file in [
        "tests/fixtures/nan-unsafe-order/allowed.rs",
        "tests/fixtures/open-coded-float-sort/allowed.rs",
        "tests/fixtures/unordered-float-fold/allowed.rs",
        "tests/fixtures/nondeterministic-par-idiom/allowed.rs",
        "tests/fixtures/unsafe-boundary/allowed/lib.rs",
        "tests/fixtures/panic-in-library-path/serve/src/allowed.rs",
    ] {
        let out = lint(&["--format=compact", file]);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert_eq!(stdout, "", "allowed fixture `{file}` is not clean");
        assert_eq!(out.status.code(), Some(0), "exit code for `{file}`");
    }
}

/// `--format=json` emits a machine-readable report with the same rule names
/// and positions as the compact format.
#[test]
fn json_format_reports_rule_and_position() {
    let out = lint(&["--format=json", "tests/fixtures/unsafe-boundary/bad/lib.rs"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout.contains("\"files_scanned\":1"), "got: {stdout}");
    assert!(
        stdout.contains("\"rule\":\"unsafe-boundary\""),
        "got: {stdout}"
    );
    assert!(
        stdout.contains("\"line\":1") && stdout.contains("\"col\":1"),
        "got: {stdout}"
    );
}

/// No `--workspace` and no paths is a usage error: exit 2, message on stderr.
#[test]
fn usage_error_exits_two() {
    let out = lint(&["--format=compact"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("nothing to lint"), "got: {stderr}");
}

/// Unknown flags are rejected rather than silently treated as paths.
#[test]
fn unknown_flag_exits_two() {
    let out = lint(&["--frmat=json", "tests/fixtures/no-false-positives"]);
    assert_eq!(out.status.code(), Some(2));
}
