//! The justified escape hatch: deliberate panics (fault injection) carry an
//! inline justification and are suppressed.

pub fn injected_fault(trigger: bool) {
    if trigger {
        // exea-lint: allow(panic-in-library-path) -- deterministic fault injection; the chaos suite asserts this unwinds into a typed Internal response
        panic!("injected handler panic");
    }
}
