//! Violations: panicking idioms inside the serving daemon's library code.

pub fn lookup(map: &std::collections::BTreeMap<u32, u32>, key: u32) -> u32 {
    *map.get(&key).unwrap()
}

pub fn must_have(value: Option<u32>) -> u32 {
    value.expect("value is always present")
}

pub fn reject(kind: u8) -> u8 {
    match kind {
        0 => 0,
        1 => panic!("unsupported request kind"),
        _ => unreachable!("codes above 1 are filtered earlier"),
    }
}

pub fn later() -> u32 {
    todo!("wire this endpoint up")
}

// Recovery idioms are different identifiers and stay legal.
pub fn recovering(value: Option<u32>) -> u32 {
    value.unwrap_or_default()
}

#[cfg(test)]
mod tests {
    // Test code is exempt: a panicking assertion is how tests fail.
    #[test]
    fn unwrap_is_fine_here() {
        assert_eq!(Some(3).unwrap(), 3);
    }
}
