//! Fixture: a justified allow directive suppresses rule (1) in both the
//! preceding-line and the trailing form.

fn ranking(scores: &[f32]) -> Ordering {
    let a = scores[0];
    let b = scores[1];
    // exea-lint: allow(nan-unsafe-order) -- fixture: legacy comparator pinned bit-compatible by prop suite
    let first = a.partial_cmp(&b).unwrap();
    let second = a.total_cmp(&b); // exea-lint: allow(nan-unsafe-order) -- fixture: ±0.0 never reaches this path
    first.then(second)
}
