//! Fixture: rule (1) fires on every unwrap-style `partial_cmp` ranking and
//! on raw `total_cmp`, each at the right line:col. (Fixtures are lexed, not
//! compiled.)

fn ranking(scores: &[f32]) -> Ordering {
    let a = scores[0];
    let b = scores[1];
    let first = a.partial_cmp(&b).unwrap();
    let second = a.partial_cmp(&b).unwrap_or(Ordering::Equal);
    let third = a.partial_cmp(&b).expect("comparable");
    let fourth = a.total_cmp(&b);
    first.then(second).then(third).then(fourth)
}
