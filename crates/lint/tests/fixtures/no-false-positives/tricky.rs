//! Fixture: banned patterns inside strings, raw strings, byte strings, block
//! comments and char/lifetime tokens must never produce diagnostics.
//!
//! Docs may mention `.partial_cmp(&b).unwrap()` or `unsafe` freely.

/* block comment: xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); unsafe { } */
/* nested /* par_iter().for_each(|x| total_cmp) */ still one comment */

fn strings() -> usize {
    let s = "a.partial_cmp(&b).unwrap() unsafe Instant::now() thread_rng()";
    let r = r#"xs.sort_by(|a, b| a.total_cmp(b)) par_bridge "inner" done"#;
    let r2 = r##"weights.values().sum::<f32>() r#"nested"# end"##;
    let b = b"unsafe total_cmp par_bridge";
    let rb = br#"SystemTime::now() for_each"#;
    s.len() + r.len() + r2.len() + b.len() + rb.len()
}

fn chars_and_lifetimes<'unsafe_looking>(x: &'unsafe_looking str) -> (char, char, usize) {
    let quote = '"';
    let escaped = '\'';
    let lifetime_like = 'a';
    (quote, escaped, x.len() + lifetime_like as usize)
}

fn raw_idents() -> usize {
    let r#unsafe = 3usize;
    r#unsafe
}
