//! Fixture: ordered containers, slice iteration, integer accumulation and a
//! justified allow never trip rule (3).

fn totals(ordered: &BTreeMap<u32, f32>, dense: &[f32], people: &HashMap<u32, u64>) -> f32 {
    let by_key = ordered.values().sum::<f32>();
    let by_row = dense.iter().sum::<f32>();
    let ages: u64 = people.values().sum();
    let ids: HashSet<u32> = people.keys().copied().collect();
    let count = ids.iter().count();
    by_key + by_row + (ages as f32) + (count as f32)
}

fn running_max(h: &HashMap<u32, f32>) -> f32 {
    // exea-lint: allow(unordered-float-fold) -- fixture: max is commutative and order-insensitive
    h.values().fold(0.0f32, |m, v| if *v > m { *v } else { m })
}
