//! Fixture: rule (3) fires on float accumulation driven by `HashMap` /
//! `HashSet` iteration order, in chain, fold and loop form.

fn totals(weights: &HashMap<u32, f32>) -> f32 {
    let direct = weights.values().sum::<f32>();
    let folded = weights.iter().fold(0.0f32, |acc, (_, w)| acc + w);
    let mut acc = 0.0f32;
    for w in weights.values() {
        acc += *w;
    }
    direct + folded + acc
}
