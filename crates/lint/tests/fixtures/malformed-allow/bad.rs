//! Fixture: allow-directive hygiene. A directive without a `--` justification
//! is rejected (and does not suppress), an unknown rule name is rejected, and
//! a well-formed directive that suppresses nothing is flagged as unused.

fn ranking(a: f32, b: f32) -> Ordering {
    // exea-lint: allow(nan-unsafe-order)
    let first = a.partial_cmp(&b).unwrap();
    // exea-lint: allow(nan-unsafe-ordering) -- fixture: rule name has a typo
    let second = a.partial_cmp(&b).unwrap();
    first.then(second)
}

fn quiet(a: u32, b: u32) -> u32 {
    // exea-lint: allow(unordered-float-fold) -- fixture: nothing here folds floats
    a + b
}
