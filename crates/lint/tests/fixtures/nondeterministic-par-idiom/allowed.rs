//! Fixture: the blessed deterministic shape — `par_iter().map().collect()`
//! with a sequential merge — plus integer reductions and a justified allow
//! never trip rule (4).

fn aggregate(rows: &[Vec<f32>]) -> f32 {
    let partials: Vec<f32> = rows.par_iter().map(|row| row.iter().sum::<f32>()).collect();
    let total: f32 = partials.iter().sum();
    let sizes = rows.par_iter().map(|row| row.len()).reduce(|| 0usize, |a, b| a + b);
    // exea-lint: allow(nondeterministic-par-idiom) -- fixture: progress counter only, never affects scores
    rows.par_iter().for_each(|row| {
        COUNTER.fetch_add(row.len(), Ordering::Relaxed);
    });
    total + sizes as f32
}
