//! Fixture: rule (4) fires on parallel idioms whose merge order is not
//! deterministic: side-effecting `for_each`, float `reduce`, `par_bridge`.

fn aggregate(rows: &[Vec<f32>], sink: &Mutex<Vec<f32>>) -> f32 {
    rows.par_iter().for_each(|row| {
        sink.lock().unwrap().push(row[0]);
    });
    let total = rows
        .par_iter()
        .map(|row| row.iter().sum::<f32>())
        .reduce(|| 0.0f32, |a, b| a + b);
    let bridged = rows.iter().par_bridge().map(|row| row.len()).sum::<usize>();
    total + bridged as f32
}
