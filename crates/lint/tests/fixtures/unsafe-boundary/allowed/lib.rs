//! Fixture: a crate root carrying the forbid attribute, with a justified
//! allow for one audited unsafe block, is clean under rule (5).
#![forbid(unsafe_code)]

pub fn read_first(bytes: &[u8]) -> u8 {
    // exea-lint: allow(unsafe-boundary) -- fixture: audited bounds-checked pointer read
    unsafe { *bytes.as_ptr() }
}
