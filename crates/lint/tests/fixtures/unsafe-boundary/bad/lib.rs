//! Fixture: a crate root without `#![forbid(unsafe_code)]` plus an `unsafe`
//! block — rule (5) fires on both.

pub fn read_first(bytes: &[u8]) -> u8 {
    unsafe { *bytes.as_ptr() }
}
