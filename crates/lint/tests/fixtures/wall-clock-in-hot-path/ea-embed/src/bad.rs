//! Fixture: rule (6) fires on wall-clock and entropy sources inside hot-path
//! library code (this fixture's path contains `ea-embed/src/`).

fn score_batch(rows: &[f32]) -> f32 {
    let started = Instant::now();
    let stamp = SystemTime::now();
    let mut rng = thread_rng();
    let jitter: f32 = rng.gen();
    drop(stamp);
    rows.iter().map(|r| r * jitter).sum::<f32>() + started.elapsed().as_secs_f32()
}

fn background_compactor(idx: &mut MutableIndex) {
    loop {
        thread::sleep(COMPACT_TICK);
        idx.compact();
    }
}
