//! Fixture: the LSM module's caller-driven maintenance idiom stays legal —
//! a synchronous `compact()` the *caller* invokes uses no clock, no timer,
//! no ambient entropy, and a seeded RNG is fine. This file's path mirrors
//! `crates/ea-embed/src/lsm.rs`, so it scans under the same hot scope as
//! the real module.

fn compact(idx: &mut MutableIndex, seed: u64) -> Result<(), StorageError> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let order = idx.segments_ascending();
    idx.recluster(order, &mut rng)
}

fn maybe_compact(idx: &mut MutableIndex, compact_segments: usize) {
    // Count-driven, not time-driven: the insert that seals a segment decides.
    if idx.segments() >= compact_segments {
        let _ = idx.compact();
    }
}
