//! Fixture: blessed comparator shapes never trip rule (2): delegation to
//! `ea_embed::order`, `topk::rank_cmp`, a named comparator fn, integer
//! comparators, and a justified allow.

fn rank(xs: &mut Vec<(u32, f32)>, entries: &mut Vec<Ranked>, ids: &mut Vec<u32>) {
    xs.sort_unstable_by(|a, b| order::desc_f32(a.1, b.1).then(a.0.cmp(&b.0)));
    entries.sort_unstable_by(|a, b| a.rank_cmp(b));
    xs.sort_unstable_by(match_order);
    ids.sort_by(|a, b| a.cmp(b));
    // exea-lint: allow(open-coded-float-sort) -- fixture: epsilon-tolerant percentile cut by design
    xs.sort_by(|a, b| {
        if a.1 < b.1 {
            Ordering::Less
        } else {
            Ordering::Greater
        }
    });
}
