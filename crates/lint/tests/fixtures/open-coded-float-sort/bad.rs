//! Fixture: rule (2) fires on sort/selection closures that compare floats
//! without delegating to `ea_embed::order` / `topk::rank_cmp`.

fn rank(xs: &mut Vec<(u32, f32)>) {
    xs.sort_by(|a, b| match b.1.partial_cmp(&a.1) {
        Some(o) => o,
        None => Ordering::Equal,
    });
    xs.sort_unstable_by(|a, b| {
        if a.1 < b.1 {
            Ordering::Greater
        } else {
            Ordering::Less
        }
    });
    let worst = xs.iter().min_by(|a, b| {
        if a.1.is_nan() {
            Ordering::Less
        } else {
            Ordering::Greater
        }
    });
    drop(worst);
}
