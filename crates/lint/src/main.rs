#![forbid(unsafe_code)]
//! `exea-lint` — the workspace invariant checker.
//!
//! Statically enforces the three invariants every PR in this repository
//! defends (see `ARCHITECTURE.md`): bit-identical returned scores, NaN-safe
//! total orders, and deterministic parallel merges — plus the unsafe-code
//! boundary and the no-wall-clock-in-hot-path rule that keep candidate
//! generation replayable. The property suites can only catch violations on
//! the inputs they generate; this pass rejects the violating *patterns*
//! before they land.
//!
//! ```text
//! exea-lint --workspace [--root DIR] [--format=text|compact|json]
//! exea-lint [--format=..] PATH [PATH..]
//! ```
//!
//! Exit status: `0` clean, `1` diagnostics reported, `2` usage/IO error.
//! Suppress a finding with an inline justification:
//!
//! ```text
//! // exea-lint: allow(unsafe-boundary) -- vetted: mirrors the memmap shim
//! ```

mod allow;
mod diag;
mod lexer;
mod rules;

use diag::{Diagnostic, Format};
use rules::FileCtx;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(0) => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("exea-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}

struct Options {
    workspace: bool,
    root: PathBuf,
    format: Format,
    paths: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        workspace: false,
        root: PathBuf::from("."),
        format: Format::Text,
        paths: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => opts.workspace = true,
            "--help" | "-h" => {
                return Err("usage: exea-lint [--workspace] [--root DIR] \
                            [--format=text|compact|json] [PATH..]"
                    .to_string())
            }
            _ if a.starts_with("--format=") => {
                opts.format = match &a["--format=".len()..] {
                    "text" => Format::Text,
                    "compact" => Format::Compact,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--root" => {
                let dir = it.next().ok_or("--root requires a directory")?;
                opts.root = PathBuf::from(dir);
            }
            _ if a.starts_with("--root=") => {
                opts.root = PathBuf::from(&a["--root=".len()..]);
            }
            _ if a.starts_with("--") => return Err(format!("unknown flag `{a}`")),
            path => opts.paths.push(path.to_string()),
        }
    }
    if !opts.workspace && opts.paths.is_empty() {
        return Err("nothing to lint: pass --workspace or explicit paths".to_string());
    }
    Ok(opts)
}

fn run(args: &[String]) -> Result<usize, String> {
    let opts = parse_args(args)?;
    let mut files: Vec<(PathBuf, String)> = Vec::new();

    if opts.workspace {
        let mut found = Vec::new();
        walk(&opts.root, &mut found).map_err(|e| format!("walking {:?}: {e}", opts.root))?;
        for f in found {
            let display = display_path(&f, &opts.root);
            files.push((f, display));
        }
    }
    for p in &opts.paths {
        let path = PathBuf::from(p);
        if path.is_dir() {
            let mut found = Vec::new();
            walk(&path, &mut found).map_err(|e| format!("walking {p}: {e}"))?;
            for f in found {
                let display = display_path(&f, Path::new("."));
                files.push((f, display));
            }
        } else {
            files.push((path, p.replace('\\', "/")));
        }
    }

    let mut all: Vec<Diagnostic> = Vec::new();
    for (fs_path, display) in &files {
        let src = fs::read_to_string(fs_path).map_err(|e| format!("reading {display}: {e}"))?;
        let lexed = lexer::lex(&src);
        let mut allows = allow::parse(&lexed.comments, display);
        let ctx = file_ctx(fs_path, display);
        let mut diags = rules::check(&lexed.tokens, &ctx);
        diags.retain(|d| !allows.suppresses(d.rule, d.line));
        all.append(&mut diags);
        all.append(&mut allows.parse_diags);
        all.extend(allows.unused(display));
    }

    all.sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    print!("{}", diag::render(&all, opts.format, files.len()));
    eprintln!(
        "exea-lint: {} file(s) scanned, {} diagnostic(s)",
        files.len(),
        all.len()
    );
    Ok(all.len())
}

/// First-party source discovery: every `.rs` file below the root except the
/// vendored shims, build artifacts, VCS metadata and the lint's own golden
/// fixtures (which contain deliberate violations).
fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures"];
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn display_path(path: &Path, root: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Path-derived rule scoping. Substring matching (rather than exact roots)
/// keeps the golden fixtures honest: a fixture under
/// `tests/fixtures/wall-clock-in-hot-path/ea-embed/src/` exercises the same
/// scoping logic the real tree does.
fn file_ctx(fs_path: &Path, display: &str) -> FileCtx {
    let file_name = fs_path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let crate_root = if file_name == "lib.rs" {
        true
    } else {
        file_name == "main.rs"
            && fs_path
                .parent()
                .is_some_and(|p| p.file_name().is_some_and(|n| n == "src"))
            && !fs_path.with_file_name("lib.rs").exists()
    };
    FileCtx {
        path: display.to_string(),
        is_order_module: display.ends_with("ea-embed/src/order.rs"),
        hot_scope: display.contains("ea-embed/src/")
            || display.contains("core/src/")
            || display.starts_with("src/"),
        crate_root,
        serve_library: display.contains("serve/src/"),
    }
}
