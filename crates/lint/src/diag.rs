//! Diagnostic type and the three output formats (`text`, `compact`, `json`).

use std::fmt::Write as _;

/// One finding: a rule violation (or a meta finding about an allow comment)
/// at a 1-based source position.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable rule name, e.g. `nan-unsafe-order`.
    pub rule: &'static str,
    /// Display path of the offending file (as passed / workspace-relative).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Human-readable explanation of the violation.
    pub message: String,
}

/// Output format selected with `--format=`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// rustc-style two-line diagnostics (default).
    Text,
    /// One line per finding: `path:line:col: [rule] message`.
    Compact,
    /// A single JSON document with a `diagnostics` array.
    Json,
}

impl Diagnostic {
    /// `path:line:col: [rule] message` — the golden-fixture format.
    pub fn compact(&self) -> String {
        format!(
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }

    /// rustc-style rendering.
    pub fn text(&self) -> String {
        format!(
            "error[{}]: {}\n  --> {}:{}:{}\n",
            self.rule, self.message, self.path, self.line, self.col
        )
    }

    fn json(&self) -> String {
        format!(
            r#"{{"rule":"{}","path":"{}","line":{},"col":{},"message":"{}"}}"#,
            self.rule,
            json_escape(&self.path),
            self.line,
            self.col,
            json_escape(&self.message)
        )
    }
}

/// Renders the full diagnostic list in the requested format. The result is
/// written to stdout verbatim (may be empty for a clean run in non-JSON
/// formats).
pub fn render(diags: &[Diagnostic], format: Format, files_scanned: usize) -> String {
    let mut out = String::new();
    match format {
        Format::Text => {
            for d in diags {
                out.push_str(&d.text());
            }
        }
        Format::Compact => {
            for d in diags {
                out.push_str(&d.compact());
                out.push('\n');
            }
        }
        Format::Json => {
            out.push_str("{\"files_scanned\":");
            let _ = write!(out, "{files_scanned}");
            out.push_str(",\"diagnostics\":[");
            for (i, d) in diags.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&d.json());
            }
            out.push_str("]}\n");
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic {
            rule: "nan-unsafe-order",
            path: "crates/x/src/lib.rs".to_string(),
            line: 3,
            col: 9,
            message: "say \"no\"".to_string(),
        }
    }

    #[test]
    fn compact_shape() {
        assert_eq!(
            sample().compact(),
            "crates/x/src/lib.rs:3:9: [nan-unsafe-order] say \"no\""
        );
    }

    #[test]
    fn json_escapes_quotes() {
        let out = render(&[sample()], Format::Json, 1);
        assert!(out.contains(r#""message":"say \"no\"""#));
        assert!(out.contains(r#""files_scanned":1"#));
    }
}
