//! A small self-contained Rust lexer.
//!
//! The offline vendor set has no `syn`, so the rule engine works on a flat
//! token stream produced here. The lexer understands exactly as much Rust as
//! is needed to never mistake *non-code* for code:
//!
//! * line comments (captured, because `// exea-lint: allow(..)` directives
//!   live in them) and **nested** block comments;
//! * string literals: plain, byte (`b".."`), and raw / raw-byte literals with
//!   any number of `#` guards (`r#".."#`, `br##".."##`);
//! * char literals versus lifetimes (`'a'` is a char, `'a` in `<'a>` is a
//!   lifetime, `'\u{1F600}'` is a char);
//! * raw identifiers (`r#match`);
//! * numeric literals with an is-float classification (decimal point,
//!   exponent, or `f32`/`f64` suffix) so rules can use "a float literal" as
//!   evidence;
//! * a handful of compound operators (`::`, `+=`, `..`, …) the rules match
//!   on.
//!
//! Everything inside comments, strings and char literals is invisible to the
//! rules — the fixture suite pins that none of them can false-positive.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe` is an `Ident` with text `unsafe`).
    Ident,
    /// Lifetime such as `'a` (text excludes the quote).
    Lifetime,
    /// String literal of any flavour (text not retained).
    Str,
    /// Char or byte-char literal (text not retained).
    Char,
    /// Integer literal.
    Int,
    /// Float literal (decimal point, exponent, or `f32`/`f64` suffix).
    Float,
    /// Punctuation; compound operators like `::` are a single token.
    Punct,
}

/// One token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Token text for `Ident`, `Lifetime` and `Punct`; empty for literals.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
}

/// One line comment (`//…`), captured for allow-directive parsing.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based byte column of the leading `//`.
    pub col: u32,
    /// Text after the `//` marker (doc markers `/`/`!` still included).
    pub text: String,
}

/// Result of lexing one source file.
pub struct Lexed {
    /// All code tokens in source order.
    pub tokens: Vec<Token>,
    /// All line comments in source order.
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    src: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor<'_> {
    fn peek(&self, off: usize) -> u8 {
        *self.src.get(self.i + off).unwrap_or(&0)
    }

    fn eof(&self) -> bool {
        self.i >= self.src.len()
    }

    fn bump(&mut self) {
        let c = self.src[self.i];
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            if !self.eof() {
                self.bump();
            }
        }
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Compound operators lexed as a single `Punct` token. Order matters only in
/// that every entry is two bytes; longer operators (`<<=`, `..=`) come out as
/// two tokens, which is fine for the patterns the rules match.
const OPS2: &[&[u8; 2]] = &[
    b"::", b"->", b"=>", b"==", b"!=", b"<=", b">=", b"&&", b"||", b"+=", b"-=", b"*=", b"/=",
    b"%=", b"^=", b"|=", b"&=", b"<<", b">>", b"..",
];

/// Lexes one source file into tokens plus line comments.
pub fn lex(src: &str) -> Lexed {
    let mut c = Cursor {
        src: src.as_bytes(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut tokens = Vec::new();
    let mut comments = Vec::new();

    while !c.eof() {
        let (line, col) = (c.line, c.col);
        let ch = c.peek(0);
        match ch {
            b' ' | b'\t' | b'\r' | b'\n' => c.bump(),
            b'/' if c.peek(1) == b'/' => {
                c.bump_n(2);
                let start = c.i;
                while !c.eof() && c.peek(0) != b'\n' {
                    c.bump();
                }
                comments.push(Comment {
                    line,
                    col,
                    text: src[start..c.i].to_string(),
                });
            }
            b'/' if c.peek(1) == b'*' => {
                c.bump_n(2);
                let mut depth = 1usize;
                while !c.eof() && depth > 0 {
                    if c.peek(0) == b'/' && c.peek(1) == b'*' {
                        c.bump_n(2);
                        depth += 1;
                    } else if c.peek(0) == b'*' && c.peek(1) == b'/' {
                        c.bump_n(2);
                        depth -= 1;
                    } else {
                        c.bump();
                    }
                }
            }
            b'"' => {
                lex_plain_string(&mut c);
                tokens.push(Token {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                    col,
                });
            }
            b'\'' => {
                let tok = lex_quote(&mut c);
                tokens.push(Token { line, col, ..tok });
            }
            b'r' | b'b' => {
                let tok = lex_r_or_b(&mut c);
                tokens.push(Token { line, col, ..tok });
            }
            b'0'..=b'9' => {
                let kind = lex_number(&mut c);
                tokens.push(Token {
                    kind,
                    text: String::new(),
                    line,
                    col,
                });
            }
            _ if is_ident_start(ch) => {
                let text = lex_ident(&mut c);
                tokens.push(Token {
                    kind: TokKind::Ident,
                    text,
                    line,
                    col,
                });
            }
            _ => {
                let two = [c.peek(0), c.peek(1)];
                if OPS2.iter().any(|op| **op == two) {
                    c.bump_n(2);
                    tokens.push(Token {
                        kind: TokKind::Punct,
                        text: String::from_utf8_lossy(&two).into_owned(),
                        line,
                        col,
                    });
                } else {
                    c.bump();
                    tokens.push(Token {
                        kind: TokKind::Punct,
                        text: (ch as char).to_string(),
                        line,
                        col,
                    });
                }
            }
        }
    }

    Lexed { tokens, comments }
}

fn lex_ident(c: &mut Cursor) -> String {
    let start = c.i;
    while !c.eof() && is_ident_continue(c.peek(0)) {
        c.bump();
    }
    String::from_utf8_lossy(&c.src[start..c.i]).into_owned()
}

/// At an opening `"`: consumes the whole escaped string literal.
fn lex_plain_string(c: &mut Cursor) {
    c.bump(); // opening quote
    while !c.eof() {
        match c.peek(0) {
            b'\\' => c.bump_n(2),
            b'"' => {
                c.bump();
                break;
            }
            _ => c.bump(),
        }
    }
}

/// At the `r` of `r"…"` / `r#"…"#` (the caller verified the prefix):
/// consumes the raw string including its `#` guards.
fn lex_raw_string(c: &mut Cursor, hashes: usize) {
    // `r` + hashes + opening quote.
    c.bump_n(1 + hashes + 1);
    while !c.eof() {
        if c.peek(0) == b'"' {
            let mut ok = true;
            for k in 0..hashes {
                if c.peek(1 + k) != b'#' {
                    ok = false;
                    break;
                }
            }
            if ok {
                c.bump_n(1 + hashes);
                return;
            }
        }
        c.bump();
    }
}

/// At a `'`: either a char literal or a lifetime.
fn lex_quote(c: &mut Cursor) -> Token {
    let n1 = c.peek(1);
    // `'a` followed by anything but a closing quote is a lifetime; `'a'`,
    // `'\n'`, `'\u{..}'` are char literals.
    if n1 != b'\\' && is_ident_start(n1) && c.peek(2) != b'\'' {
        c.bump(); // quote
        let text = lex_ident(c);
        return Token {
            kind: TokKind::Lifetime,
            text,
            line: 0,
            col: 0,
        };
    }
    c.bump(); // opening quote
    while !c.eof() {
        match c.peek(0) {
            b'\\' => c.bump_n(2),
            b'\'' => {
                c.bump();
                break;
            }
            _ => c.bump(),
        }
    }
    Token {
        kind: TokKind::Char,
        text: String::new(),
        line: 0,
        col: 0,
    }
}

/// At an `r` or `b`: disambiguates raw strings, byte strings, byte chars and
/// raw identifiers from ordinary identifiers starting with those letters.
fn lex_r_or_b(c: &mut Cursor) -> Token {
    let first = c.peek(0);
    if first == b'r' {
        // r"…", r#…#"…"#…# or r#ident.
        let mut hashes = 0usize;
        while c.peek(1 + hashes) == b'#' {
            hashes += 1;
        }
        if c.peek(1 + hashes) == b'"' {
            lex_raw_string(c, hashes);
            return Token {
                kind: TokKind::Str,
                text: String::new(),
                line: 0,
                col: 0,
            };
        }
        if hashes == 1 && is_ident_start(c.peek(2)) {
            c.bump_n(2); // r#
                         // Keep the `r#` prefix: a raw ident is never a keyword, so rules
                         // matching `unsafe`/fn names must not see it as one.
            let text = format!("r#{}", lex_ident(c));
            return Token {
                kind: TokKind::Ident,
                text,
                line: 0,
                col: 0,
            };
        }
    } else {
        // b"…", b'…', br"…" / br#"…"#.
        if c.peek(1) == b'"' {
            c.bump(); // b
            lex_plain_string(c);
            return Token {
                kind: TokKind::Str,
                text: String::new(),
                line: 0,
                col: 0,
            };
        }
        if c.peek(1) == b'\'' {
            c.bump(); // b
            return lex_quote(c);
        }
        if c.peek(1) == b'r' {
            let mut hashes = 0usize;
            while c.peek(2 + hashes) == b'#' {
                hashes += 1;
            }
            if c.peek(2 + hashes) == b'"' {
                c.bump(); // b
                lex_raw_string(c, hashes);
                return Token {
                    kind: TokKind::Str,
                    text: String::new(),
                    line: 0,
                    col: 0,
                };
            }
        }
    }
    let text = lex_ident(c);
    Token {
        kind: TokKind::Ident,
        text,
        line: 0,
        col: 0,
    }
}

/// At a digit: consumes one numeric literal, classifying it int vs float.
fn lex_number(c: &mut Cursor) -> TokKind {
    let start = c.i;
    let prefixed = c.peek(0) == b'0' && matches!(c.peek(1), b'x' | b'X' | b'o' | b'b');
    if prefixed {
        c.bump_n(2);
    }
    let mut float = false;
    while !c.eof() {
        let p = c.peek(0);
        if p.is_ascii_alphanumeric() || p == b'_' {
            if !prefixed
                && (p == b'e' || p == b'E')
                && matches!(c.peek(1), b'0'..=b'9' | b'+' | b'-')
            {
                float = true;
                c.bump();
                if matches!(c.peek(0), b'+' | b'-') {
                    c.bump();
                }
                continue;
            }
            c.bump();
        } else if p == b'.' && !prefixed {
            let n = c.peek(1);
            if n == b'.' || is_ident_start(n) {
                break; // range (`1..n`) or method call (`1.max(2)`)
            }
            float = true;
            c.bump();
        } else {
            break;
        }
    }
    if !prefixed {
        let text = &c.src[start..c.i];
        if text.windows(3).any(|w| w == b"f32" || w == b"f64") {
            float = true;
        }
    }
    if float {
        TokKind::Float
    } else {
        TokKind::Int
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_code() {
        let src = r###"
            // partial_cmp(x).unwrap() in a comment
            /* nested /* block with sort_by(|a,b| a.partial_cmp(b)) */ done */
            let s = "unsafe { partial_cmp }";
            let r = r#"sort_by(|a, b| a.total_cmp(b))"#;
            let b = b"unsafe";
            let rb = br##"Instant::now()"##;
        "###;
        let names = idents(src);
        assert!(!names.iter().any(|n| n == "partial_cmp"
            || n == "sort_by"
            || n == "unsafe"
            || n == "total_cmp"
            || n == "Instant"));
        assert_eq!(lex(src).comments.len(), 1);
    }

    #[test]
    fn char_literals_are_not_lifetimes() {
        let toks =
            lex("let c = 'a'; let l: Vec<'static> = x; let e = '\\u{1F600}'; let q = '\\'';");
        let chars = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .count();
        let lifetimes: Vec<_> = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(chars, 3);
        assert_eq!(lifetimes, vec!["static".to_string()]);
    }

    #[test]
    fn raw_identifiers_and_number_classes() {
        let toks = lex(
            "let r#match = 1; let f = 0.5; let g = 1e-3; let h = 2f32; let i = 0xff; let r = 1..n;",
        );
        // Raw idents keep their `r#` prefix so keyword-matching rules
        // (e.g. `unsafe`) can never confuse `r#unsafe` with the keyword.
        assert!(toks
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "r#match"));
        assert!(!toks.tokens.iter().any(|t| t.text == "match"));
        let floats = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Float)
            .count();
        assert_eq!(floats, 3); // 0.5, 1e-3, 2f32 — not 0xff, not `1` in `1..n`
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks.tokens[0].line, toks.tokens[0].col), (1, 1));
        assert_eq!((toks.tokens[1].line, toks.tokens[1].col), (2, 3));
    }

    #[test]
    fn compound_ops_lex_as_one_token() {
        let toks = lex("a += b; c::d; e..f; g >> h;");
        let puncts: Vec<_> = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.clone())
            .collect();
        assert!(puncts.contains(&"+=".to_string()));
        assert!(puncts.contains(&"::".to_string()));
        assert!(puncts.contains(&"..".to_string()));
        assert!(puncts.contains(&">>".to_string()));
    }
}
