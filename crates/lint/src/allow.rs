//! The `// exea-lint: allow(<rule>) -- <justification>` escape hatch.
//!
//! An allow directive lives in a line comment, names one or more rules
//! (comma-separated), and **must** carry a justification after `--`; an
//! unjustified or unknown-rule directive is itself a diagnostic
//! (`malformed-allow`). A directive suppresses matching diagnostics on its
//! own line (trailing form) or on the line directly below (preceding form).
//! Directives that suppress nothing are reported as `unused-allow`, so stale
//! escapes cannot accumulate.

use crate::diag::Diagnostic;
use crate::lexer::Comment;
use crate::rules;

/// One parsed allow directive.
#[derive(Debug)]
pub struct AllowDirective {
    line: u32,
    rules: Vec<String>,
    used: bool,
}

/// All directives of one file plus the diagnostics produced while parsing
/// them.
#[derive(Debug, Default)]
pub struct Allows {
    directives: Vec<AllowDirective>,
    /// `malformed-allow` findings (missing justification, unknown rule, …).
    pub parse_diags: Vec<Diagnostic>,
}

/// The marker an allow comment starts with (after comment trivia).
const MARKER: &str = "exea-lint:";

/// Parses every `exea-lint:` directive out of a file's line comments.
pub fn parse(comments: &[Comment], path: &str) -> Allows {
    fn bad(out: &mut Allows, path: &str, c: &Comment, msg: String) {
        out.parse_diags.push(Diagnostic {
            rule: "malformed-allow",
            path: path.to_string(),
            line: c.line,
            col: c.col,
            message: msg,
        });
    }

    let mut out = Allows::default();
    for c in comments {
        // Strip doc-comment markers (`///` and `//!` arrive as a leading
        // `/` or `!` in the captured text) and whitespace.
        let body = c.text.trim_start_matches(['/', '!']).trim();
        let Some(rest) = body.strip_prefix(MARKER) else {
            continue;
        };
        let rest = rest.trim();
        let Some(rest) = rest.strip_prefix("allow(") else {
            bad(
                &mut out,
                path,
                c,
                format!("expected `allow(<rule>) -- <justification>` after `{MARKER}`"),
            );
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad(&mut out, path, c, "unclosed `allow(` directive".to_string());
            continue;
        };
        let mut names = Vec::new();
        let mut all_known = true;
        for name in rest[..close].split(',') {
            let name = name.trim();
            if rules::is_known_rule(name) {
                names.push(name.to_string());
            } else {
                all_known = false;
                bad(
                    &mut out,
                    path,
                    c,
                    format!(
                        "unknown rule `{name}` in allow directive (known rules: {})",
                        rules::RULES.join(", ")
                    ),
                );
            }
        }
        let tail = rest[close + 1..].trim();
        let justification = tail.strip_prefix("--").map(str::trim);
        match justification {
            Some(j) if !j.is_empty() => {}
            _ => {
                bad(
                    &mut out,
                    path,
                    c,
                    "allow directive requires a justification: `-- <why this is sound>`"
                        .to_string(),
                );
                continue;
            }
        }
        if all_known && !names.is_empty() {
            out.directives.push(AllowDirective {
                line: c.line,
                rules: names,
                used: false,
            });
        }
    }
    out
}

impl Allows {
    /// True (and marks the directive used) if a diagnostic of `rule` at
    /// `line` is covered by a directive on the same line or the line above.
    pub fn suppresses(&mut self, rule: &str, line: u32) -> bool {
        let mut hit = false;
        for d in &mut self.directives {
            if (d.line == line || d.line + 1 == line) && d.rules.iter().any(|r| r == rule) {
                d.used = true;
                hit = true;
            }
        }
        hit
    }

    /// Diagnostics for directives that never suppressed anything.
    pub fn unused(&self, path: &str) -> Vec<Diagnostic> {
        self.directives
            .iter()
            .filter(|d| !d.used)
            .map(|d| Diagnostic {
                rule: "unused-allow",
                path: path.to_string(),
                line: d.line,
                col: 1,
                message: format!(
                    "allow({}) suppresses nothing on this or the next line; remove it",
                    d.rules.join(", ")
                ),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comment(line: u32, text: &str) -> Comment {
        Comment {
            line,
            col: 5,
            text: text.to_string(),
        }
    }

    #[test]
    fn parses_and_suppresses_same_and_next_line() {
        let mut a = parse(
            &[comment(
                4,
                " exea-lint: allow(unsafe-boundary) -- vetted mmap shim call",
            )],
            "f.rs",
        );
        assert!(a.parse_diags.is_empty());
        assert!(a.suppresses("unsafe-boundary", 4));
        assert!(a.suppresses("unsafe-boundary", 5));
        assert!(!a.suppresses("unsafe-boundary", 6));
        assert!(!a.suppresses("nan-unsafe-order", 5));
        assert!(a.unused("f.rs").is_empty());
    }

    #[test]
    fn justification_is_required() {
        let a = parse(&[comment(1, " exea-lint: allow(nan-unsafe-order)")], "f.rs");
        assert_eq!(a.parse_diags.len(), 1);
        assert!(a.parse_diags[0].message.contains("justification"));
        let b = parse(
            &[comment(1, " exea-lint: allow(nan-unsafe-order) -- ")],
            "f.rs",
        );
        assert_eq!(b.parse_diags.len(), 1);
    }

    #[test]
    fn unknown_rules_are_reported() {
        let a = parse(
            &[comment(1, " exea-lint: allow(no-such-rule) -- x")],
            "f.rs",
        );
        assert_eq!(a.parse_diags.len(), 1);
        assert!(a.parse_diags[0].message.contains("unknown rule"));
    }

    #[test]
    fn unused_directives_are_reported() {
        let a = parse(
            &[comment(9, " exea-lint: allow(unsafe-boundary) -- stale")],
            "f.rs",
        );
        let unused = a.unused("f.rs");
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].line, 9);
    }
}
