//! The seven invariant rules, implemented over the flat token stream.
//!
//! Each rule has a stable kebab-case name (used in diagnostics and in
//! `allow(..)` directives) and guards one of the workspace invariants
//! documented in `ARCHITECTURE.md`:
//!
//! | rule | invariant |
//! |---|---|
//! | `nan-unsafe-order` | NaN-safe total orders |
//! | `open-coded-float-sort` | NaN-safe total orders |
//! | `unordered-float-fold` | deterministic merges (hash iteration order) |
//! | `nondeterministic-par-idiom` | deterministic parallel merges |
//! | `unsafe-boundary` | the vendored-memmap-only unsafe boundary |
//! | `wall-clock-in-hot-path` | bit-identical, replayable hot paths |
//! | `panic-in-library-path` | the daemon answers typed errors, never dies |
//!
//! The rules are deliberately token-level heuristics (no type information):
//! they match the concrete idioms this workspace bans, they are tuned so the
//! blessed idioms (`ea_embed::order` comparators, `topk::rank_cmp`,
//! `par_iter().map(..).collect()`, BTreeMap iteration) never trip them, and
//! every behaviour is pinned by the golden fixtures under `tests/fixtures/`.

use crate::diag::Diagnostic;
use crate::lexer::{TokKind, Token};
use std::collections::HashSet;

/// Rule (1): `.partial_cmp(..).unwrap*()` / `.expect()` rankings and raw
/// `.total_cmp(..)` outside `ea_embed::order`.
pub const NAN_UNSAFE_ORDER: &str = "nan-unsafe-order";
/// Rule (2): sort/selection closures that compare floats without delegating
/// to a blessed comparator.
pub const OPEN_CODED_FLOAT_SORT: &str = "open-coded-float-sort";
/// Rule (3): float accumulation driven by `HashMap`/`HashSet` iteration
/// order.
pub const UNORDERED_FLOAT_FOLD: &str = "unordered-float-fold";
/// Rule (4): order-discarding parallel idioms (`for_each`, `par_bridge`,
/// float `reduce`).
pub const NONDETERMINISTIC_PAR_IDIOM: &str = "nondeterministic-par-idiom";
/// Rule (5): any `unsafe` token, plus the `#![forbid(unsafe_code)]` header
/// check on crate roots.
pub const UNSAFE_BOUNDARY: &str = "unsafe-boundary";
/// Rule (6): wall-clock / ambient-entropy calls inside hot-path library
/// code, including timed waits (`sleep`, `recv_timeout`) that turn into
/// time-driven maintenance scheduling.
pub const WALL_CLOCK_IN_HOT_PATH: &str = "wall-clock-in-hot-path";
/// Rule (7): `unwrap()`/`expect()`/`panic!`-family calls in the serving
/// daemon's library code, where an unwind kills a serving thread instead of
/// producing a typed protocol response.
pub const PANIC_IN_LIBRARY_PATH: &str = "panic-in-library-path";

/// All rule names, in diagnostic-priority order.
pub const RULES: &[&str] = &[
    NAN_UNSAFE_ORDER,
    OPEN_CODED_FLOAT_SORT,
    UNORDERED_FLOAT_FOLD,
    NONDETERMINISTIC_PAR_IDIOM,
    UNSAFE_BOUNDARY,
    WALL_CLOCK_IN_HOT_PATH,
    PANIC_IN_LIBRARY_PATH,
];

/// True for names that can appear in an `allow(..)` directive.
pub fn is_known_rule(name: &str) -> bool {
    RULES.contains(&name)
}

/// Per-file context the path-sensitive rules need.
pub struct FileCtx {
    /// Display path (workspace-relative, `/`-separated).
    pub path: String,
    /// True for `ea_embed::order` itself — exempt from rule (1), it is the
    /// one place allowed to build comparators out of `partial_cmp`.
    pub is_order_module: bool,
    /// True for hot-path library code (`crates/ea-embed/src`,
    /// `crates/core/src`, the umbrella `src/`) — scope of rule (6).
    pub hot_scope: bool,
    /// True for crate roots (`lib.rs`, or a `src/main.rs` with no sibling
    /// `lib.rs`) — scope of rule (5)'s header check.
    pub crate_root: bool,
    /// True for the serving daemon's library code (`crates/serve/src`) —
    /// scope of rule (7): a panic there kills a serving thread, so every
    /// failure must surface as a typed protocol response instead.
    pub serve_library: bool,
}

/// Runs every rule over one file's token stream.
pub fn check(tokens: &[Token], ctx: &FileCtx) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let masked = test_mask(tokens);
    nan_unsafe_order(tokens, ctx, &mut diags);
    open_coded_float_sort(tokens, ctx, &mut diags);
    unordered_float_fold(tokens, ctx, &mut diags);
    nondeterministic_par_idiom(tokens, ctx, &mut diags);
    unsafe_boundary(tokens, ctx, &mut diags);
    wall_clock_in_hot_path(tokens, ctx, &masked, &mut diags);
    panic_in_library_path(tokens, ctx, &masked, &mut diags);
    diags
}

// ---------------------------------------------------------------------------
// token-stream helpers

fn ident_at(t: &[Token], i: usize) -> Option<&str> {
    match t.get(i) {
        Some(tok) if tok.kind == TokKind::Ident => Some(&tok.text),
        _ => None,
    }
}

fn is_punct(t: &[Token], i: usize, s: &str) -> bool {
    matches!(t.get(i), Some(tok) if tok.kind == TokKind::Punct && tok.text == s)
}

/// Index of the delimiter matching the opener at `open` (`(`, `[` or `{`);
/// `t.len()` if unbalanced.
fn matching_close(t: &[Token], open: usize) -> usize {
    let (o, c) = match t[open].text.as_str() {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        "{" => ("{", "}"),
        _ => return open,
    };
    let mut depth = 0usize;
    for (i, tok) in t.iter().enumerate().skip(open) {
        if tok.kind == TokKind::Punct {
            if tok.text == o {
                depth += 1;
            } else if tok.text == c {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
    }
    t.len()
}

/// With `t[open] == "<"`: index just past the matching `>`, `>>`-aware.
fn skip_angles(t: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < t.len() {
        if t[i].kind == TokKind::Punct {
            match t[i].text.as_str() {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                _ => {}
            }
        }
        i += 1;
        if depth <= 0 {
            return i;
        }
    }
    t.len()
}

/// One `.method::<..>(..)` segment of a call chain.
#[derive(Clone, Copy)]
struct Seg {
    /// Index of the method-name ident.
    name: usize,
    /// Half-open span of the turbofish interior (empty if absent).
    tf: (usize, usize),
    /// Half-open span of the argument tokens (empty if absent).
    args: (usize, usize),
}

/// Walks `.a(..).b::<..>(..)…` starting just past a call's closing paren.
fn method_chain(t: &[Token], mut j: usize) -> Vec<Seg> {
    let mut segs = Vec::new();
    loop {
        if is_punct(t, j, "?") {
            j += 1;
        }
        if !is_punct(t, j, ".") {
            break;
        }
        let name = j + 1;
        if ident_at(t, name).is_none() {
            break;
        }
        let mut k = name + 1;
        let mut tf = (k, k);
        if is_punct(t, k, "::") && is_punct(t, k + 1, "<") {
            let end = skip_angles(t, k + 1);
            tf = (k + 2, end.saturating_sub(1));
            k = end;
        }
        let mut args = (k, k);
        if is_punct(t, k, "(") {
            let close = matching_close(t, k);
            args = (k + 1, close);
            k = (close + 1).min(t.len());
        }
        segs.push(Seg { name, tf, args });
        j = k;
    }
    segs
}

/// Float evidence inside a half-open span: a float literal or an `f32`/`f64`
/// ident.
fn float_evidence(t: &[Token], span: (usize, usize)) -> bool {
    let hi = span.1.min(t.len());
    t[span.0.min(hi)..hi].iter().any(|tok| {
        tok.kind == TokKind::Float
            || (tok.kind == TokKind::Ident && (tok.text == "f32" || tok.text == "f64"))
    })
}

/// Rough statement bounds around `i`: back to the previous `;`/`{`/`}`,
/// forward to the next `;` (or closing brace) at bracket depth 0.
fn statement_span(t: &[Token], i: usize) -> (usize, usize) {
    let mut lo = i;
    while lo > 0 {
        let p = &t[lo - 1];
        if p.kind == TokKind::Punct && matches!(p.text.as_str(), ";" | "{" | "}") {
            break;
        }
        lo -= 1;
    }
    let mut hi = i;
    let mut depth = 0i32;
    while hi < t.len() {
        if t[hi].kind == TokKind::Punct {
            match t[hi].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
        }
        hi += 1;
    }
    (lo, hi)
}

fn push(
    diags: &mut Vec<Diagnostic>,
    ctx: &FileCtx,
    rule: &'static str,
    at: &Token,
    message: String,
) {
    diags.push(Diagnostic {
        rule,
        path: ctx.path.clone(),
        line: at.line,
        col: at.col,
        message,
    });
}

/// Marks tokens inside `#[test]` / `#[cfg(test)]`-gated items, so rule (6)
/// can allowlist in-file test modules.
fn test_mask(t: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; t.len()];
    let mut i = 0usize;
    while i < t.len() {
        if !(is_punct(t, i, "#") && is_punct(t, i + 1, "[")) {
            i += 1;
            continue;
        }
        let close = matching_close(t, i + 1);
        let gated = t[i + 2..close.min(t.len())]
            .iter()
            .any(|tok| tok.kind == TokKind::Ident && tok.text == "test");
        if !gated {
            i = close + 1;
            continue;
        }
        // Skip any further attributes, then mask the gated item: up to the
        // matching brace of its body, or the terminating `;`.
        let mut j = close + 1;
        while is_punct(t, j, "#") && is_punct(t, j + 1, "[") {
            j = matching_close(t, j + 1) + 1;
        }
        let mut depth = 0i32;
        while j < t.len() {
            if t[j].kind == TokKind::Punct {
                match t[j].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        let body_close = matching_close(t, j);
                        for m in mask.iter_mut().take(body_close.min(t.len())).skip(i) {
                            *m = true;
                        }
                        j = body_close;
                        break;
                    }
                    "{" => depth += 1,
                    "}" => depth -= 1,
                    ";" if depth == 0 => {
                        for m in mask.iter_mut().take(j).skip(i) {
                            *m = true;
                        }
                        break;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        i = j + 1;
    }
    mask
}

// ---------------------------------------------------------------------------
// rule (1): nan-unsafe-order

const UNWRAPPERS: &[&str] = &[
    "unwrap",
    "expect",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
];

fn nan_unsafe_order(t: &[Token], ctx: &FileCtx, diags: &mut Vec<Diagnostic>) {
    if ctx.is_order_module {
        return;
    }
    for i in 1..t.len() {
        let Some(name) = ident_at(t, i) else { continue };
        if !is_punct(t, i - 1, ".") {
            continue;
        }
        if name == "total_cmp" {
            push(
                diags,
                ctx,
                NAN_UNSAFE_ORDER,
                &t[i],
                "raw `.total_cmp(..)` splits ±0.0 ties (breaking bit-compat with the \
                 dense reference order); rank through `ea_embed::order` instead"
                    .to_string(),
            );
            continue;
        }
        if name != "partial_cmp" || !is_punct(t, i + 1, "(") {
            continue;
        }
        let close = matching_close(t, i + 1);
        if !is_punct(t, close + 1, ".") {
            continue;
        }
        if let Some(m) = ident_at(t, close + 2) {
            if UNWRAPPERS.contains(&m) {
                push(
                    diags,
                    ctx,
                    NAN_UNSAFE_ORDER,
                    &t[i],
                    format!(
                        "`.partial_cmp(..).{m}(..)` is not a total order once a NaN appears \
                         (panics or breaks sort transitivity); use the NaN-safe comparators \
                         in `ea_embed::order`"
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// rule (2): open-coded-float-sort

const SORT_FNS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "max_by",
    "min_by",
    "select_nth_unstable_by",
];

/// Idents whose presence in a comparator closure marks it as delegating to a
/// blessed NaN-safe total order.
const BLESSED: &[&str] = &["asc_f32", "desc_f32", "asc_f64", "desc_f64", "rank_cmp"];

fn open_coded_float_sort(t: &[Token], ctx: &FileCtx, diags: &mut Vec<Diagnostic>) {
    for i in 1..t.len() {
        let Some(name) = ident_at(t, i) else { continue };
        if !SORT_FNS.contains(&name) || !is_punct(t, i - 1, ".") || !is_punct(t, i + 1, "(") {
            continue;
        }
        let close = matching_close(t, i + 1);
        let (lo, hi) = (i + 2, close);
        // A bare named comparator (no closure) is linted where it is
        // defined, not at the call site.
        if !t[lo..hi.min(t.len())]
            .iter()
            .any(|tok| tok.kind == TokKind::Punct && tok.text == "|")
        {
            continue;
        }
        let blessed = (lo..hi).any(|k| {
            matches!(ident_at(t, k), Some(n) if BLESSED.contains(&n))
                || (ident_at(t, k) == Some("order") && is_punct(t, k + 1, "::"))
        });
        if blessed {
            continue;
        }
        let signal = (lo..hi).any(|k| {
            matches!(
                ident_at(t, k),
                Some("partial_cmp")
                    | Some("total_cmp")
                    | Some("is_nan")
                    | Some("f32")
                    | Some("f64")
            ) || (ident_at(t, k) == Some("Ordering")
                && is_punct(t, k + 1, "::")
                && matches!(ident_at(t, k + 2), Some("Less") | Some("Greater")))
        }) || float_evidence(t, (lo, hi));
        if signal {
            push(
                diags,
                ctx,
                OPEN_CODED_FLOAT_SORT,
                &t[i],
                format!(
                    "`{name}` closure compares floats without delegating to a named \
                     `ea_embed::order`/`topk::rank_cmp` comparator; open-coded float \
                     orders drift out of sync with the canonical ranking"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// rule (3): unordered-float-fold

const HASH_ITERS: &[&str] = &[
    "values",
    "keys",
    "iter",
    "iter_mut",
    "into_iter",
    "into_values",
    "into_keys",
    "drain",
    "values_mut",
];

fn classify_vars(t: &[Token]) -> (HashSet<String>, HashSet<String>) {
    let mut hash = HashSet::new();
    let mut float = HashSet::new();
    for i in 0..t.len() {
        if ident_at(t, i) == Some("let") {
            let mut j = i + 1;
            if ident_at(t, j) == Some("mut") {
                j += 1;
            }
            let Some(name) = ident_at(t, j) else { continue };
            let (_, hi) = statement_span(t, j + 1);
            let span = (j + 1, hi);
            if t[span.0.min(hi)..hi].iter().any(|tok| {
                tok.kind == TokKind::Ident && (tok.text == "HashMap" || tok.text == "HashSet")
            }) {
                hash.insert(name.to_string());
            }
            if float_evidence(t, span) {
                float.insert(name.to_string());
            }
        }
        // `name: &mut HashMap<..>` parameters and fields.
        if matches!(ident_at(t, i), Some("HashMap") | Some("HashSet")) {
            let mut k = i;
            while k > 0 && (is_punct(t, k - 1, "&") || ident_at(t, k - 1) == Some("mut")) {
                k -= 1;
            }
            if k >= 2 && is_punct(t, k - 1, ":") {
                if let Some(n) = ident_at(t, k - 2) {
                    hash.insert(n.to_string());
                }
            }
        }
    }
    (hash, float)
}

fn unordered_float_fold(t: &[Token], ctx: &FileCtx, diags: &mut Vec<Diagnostic>) {
    let (hash_vars, float_vars) = classify_vars(t);
    if hash_vars.is_empty() {
        return;
    }
    let fix = "iterate a deterministically ordered view (BTreeMap, or keys sorted first) \
               or accumulate in ascending key order";
    for i in 0..t.len() {
        // Chain form: `m.values().sum::<f32>()`, `m.iter().fold(0.0, ..)`.
        if let Some(v) = ident_at(t, i) {
            if hash_vars.contains(v)
                && is_punct(t, i + 1, ".")
                && matches!(ident_at(t, i + 2), Some(f) if HASH_ITERS.contains(&f))
                && is_punct(t, i + 3, "(")
            {
                let close = matching_close(t, i + 3);
                for seg in method_chain(t, close + 1) {
                    let name = ident_at(t, seg.name).unwrap_or("");
                    let flagged = match name {
                        "sum" | "product" => {
                            if seg.tf.1 > seg.tf.0 {
                                float_evidence(t, seg.tf)
                            } else {
                                float_evidence(t, statement_span(t, i))
                            }
                        }
                        "fold" | "reduce" => {
                            float_evidence(t, seg.args) || float_evidence(t, statement_span(t, i))
                        }
                        _ => false,
                    };
                    if flagged {
                        push(
                            diags,
                            ctx,
                            UNORDERED_FLOAT_FOLD,
                            &t[seg.name],
                            format!(
                                "float `{name}` driven by `{v}`'s hash iteration order \
                                 accumulates in a nondeterministic sequence; {fix}"
                            ),
                        );
                    }
                }
            }
        }
        // Loop form: `for v in m.values() { acc += v; }`.
        if ident_at(t, i) == Some("for") {
            hash_for_loop(t, i, &hash_vars, &float_vars, ctx, diags, fix);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn hash_for_loop(
    t: &[Token],
    i: usize,
    hash_vars: &HashSet<String>,
    float_vars: &HashSet<String>,
    ctx: &FileCtx,
    diags: &mut Vec<Diagnostic>,
    fix: &str,
) {
    // Locate `in` at bracket depth 0 before the loop body.
    let mut j = i + 1;
    let mut depth = 0i32;
    let mut in_idx = None;
    while j < t.len() {
        if t[j].kind == TokKind::Punct {
            match t[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => break,
                _ => {}
            }
        } else if depth == 0 && ident_at(t, j) == Some("in") {
            in_idx = Some(j);
            break;
        }
        j += 1;
    }
    let Some(in_idx) = in_idx else { return };
    let mut k = in_idx + 1;
    while is_punct(t, k, "&") {
        k += 1;
    }
    let Some(v) = ident_at(t, k) else { return };
    if !hash_vars.contains(v)
        || !is_punct(t, k + 1, ".")
        || !matches!(ident_at(t, k + 2), Some(f) if HASH_ITERS.contains(&f))
    {
        return;
    }
    let mut b = k;
    while b < t.len() && !is_punct(t, b, "{") {
        b += 1;
    }
    if b >= t.len() {
        return;
    }
    let body_close = matching_close(t, b);
    for m in b..body_close.min(t.len()) {
        if t[m].kind == TokKind::Punct && matches!(t[m].text.as_str(), "+=" | "-=" | "*=" | "/=") {
            let lhs_float = matches!(ident_at(t, m - 1), Some(n) if float_vars.contains(n));
            if lhs_float || float_evidence(t, (b, body_close)) {
                push(
                    diags,
                    ctx,
                    UNORDERED_FLOAT_FOLD,
                    &t[m],
                    format!(
                        "float accumulation inside a loop over `{v}`'s hash iteration \
                         order is nondeterministic; {fix}"
                    ),
                );
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// rule (4): nondeterministic-par-idiom

const PAR_SOURCES: &[&str] = &[
    "par_iter",
    "into_par_iter",
    "par_iter_mut",
    "par_chunks",
    "par_chunks_mut",
    "par_windows",
    "par_drain",
];

fn nondeterministic_par_idiom(t: &[Token], ctx: &FileCtx, diags: &mut Vec<Diagnostic>) {
    for i in 1..t.len() {
        let Some(name) = ident_at(t, i) else { continue };
        if !is_punct(t, i - 1, ".") {
            continue;
        }
        if name == "par_bridge" {
            push(
                diags,
                ctx,
                NONDETERMINISTIC_PAR_IDIOM,
                &t[i],
                "`par_bridge` yields items in a nondeterministic order; restructure \
                 around an indexed `par_iter()` so merges stay order-preserving"
                    .to_string(),
            );
            continue;
        }
        if !PAR_SOURCES.contains(&name) || !is_punct(t, i + 1, "(") {
            continue;
        }
        let close = matching_close(t, i + 1);
        for seg in method_chain(t, close + 1) {
            match ident_at(t, seg.name).unwrap_or("") {
                "for_each" | "for_each_with" | "for_each_init" => push(
                    diags,
                    ctx,
                    NONDETERMINISTIC_PAR_IDIOM,
                    &t[seg.name],
                    "order-discarding parallel `for_each`; use the blessed \
                     order-preserving `par_iter().map(..).collect()` shape"
                        .to_string(),
                ),
                f @ ("reduce" | "reduce_with" | "fold" | "sum" | "product") => {
                    let ev = if seg.tf.1 > seg.tf.0 {
                        float_evidence(t, seg.tf)
                    } else {
                        float_evidence(t, seg.args) || float_evidence(t, statement_span(t, i))
                    };
                    if ev {
                        push(
                            diags,
                            ctx,
                            NONDETERMINISTIC_PAR_IDIOM,
                            &t[seg.name],
                            format!(
                                "parallel float `{f}`'s combining order depends on work \
                                 splitting; collect per-block results in input order and \
                                 reduce sequentially"
                            ),
                        );
                    }
                }
                _ => {}
            }
        }
    }
}

// ---------------------------------------------------------------------------
// rule (5): unsafe-boundary

fn unsafe_boundary(t: &[Token], ctx: &FileCtx, diags: &mut Vec<Diagnostic>) {
    for (i, tok) in t.iter().enumerate() {
        if tok.kind == TokKind::Ident && tok.text == "unsafe" {
            push(
                diags,
                ctx,
                UNSAFE_BOUNDARY,
                &t[i],
                "`unsafe` outside the vendored memmap shim; first-party crates keep \
                 `#![forbid(unsafe_code)]` so the mmap wrapper stays the workspace's \
                 only unsafe surface"
                    .to_string(),
            );
        }
    }
    if ctx.crate_root && !has_forbid_unsafe(t) {
        diags.push(Diagnostic {
            rule: UNSAFE_BOUNDARY,
            path: ctx.path.clone(),
            line: 1,
            col: 1,
            message: "crate root is missing `#![forbid(unsafe_code)]`; every first-party \
                      crate must forbid unsafe at the root"
                .to_string(),
        });
    }
}

fn has_forbid_unsafe(t: &[Token]) -> bool {
    for i in 0..t.len() {
        if is_punct(t, i, "#") && is_punct(t, i + 1, "!") && is_punct(t, i + 2, "[") {
            let close = matching_close(t, i + 2);
            let span = &t[(i + 3).min(t.len())..close.min(t.len())];
            let has = |n: &str| span.iter().any(|k| k.kind == TokKind::Ident && k.text == n);
            if has("forbid") && has("unsafe_code") {
                return true;
            }
        }
    }
    false
}

// ---------------------------------------------------------------------------
// rule (6): wall-clock-in-hot-path

const ENTROPY_FNS: &[&str] = &["thread_rng", "from_entropy", "OsRng", "getrandom"];

/// Timed-wait primitives that smuggle the wall clock in as *scheduling*
/// rather than as a timestamp: a `sleep`/`recv_timeout` loop is how a
/// background compactor or seal timer gets written, and the LSM contract
/// (`ea_embed::lsm`) is that maintenance is caller-driven — `compact()` is a
/// synchronous operation, never a timer.
const TIMED_WAIT_FNS: &[&str] = &["sleep", "sleep_ms", "park_timeout", "recv_timeout"];

fn wall_clock_in_hot_path(
    t: &[Token],
    ctx: &FileCtx,
    masked: &[bool],
    diags: &mut Vec<Diagnostic>,
) {
    if !ctx.hot_scope {
        return;
    }
    for i in 0..t.len() {
        if masked[i] {
            continue;
        }
        let Some(name) = ident_at(t, i) else { continue };
        if name == "Instant" && is_punct(t, i + 1, "::") && ident_at(t, i + 2) == Some("now") {
            push(
                diags,
                ctx,
                WALL_CLOCK_IN_HOT_PATH,
                &t[i],
                "`Instant::now()` in hot-path library code; timing belongs in \
                 `ea-metrics` (or the bench crate), not in kernels or engines"
                    .to_string(),
            );
        } else if name == "SystemTime" {
            push(
                diags,
                ctx,
                WALL_CLOCK_IN_HOT_PATH,
                &t[i],
                "`SystemTime` in hot-path library code makes results depend on the \
                 wall clock; thread timestamps in from the caller"
                    .to_string(),
            );
        } else if ENTROPY_FNS.contains(&name) {
            push(
                diags,
                ctx,
                WALL_CLOCK_IN_HOT_PATH,
                &t[i],
                format!(
                    "`{name}` draws ambient entropy, breaking run-to-run determinism; \
                     use a seeded ChaCha8 RNG threaded through the config"
                ),
            );
        } else if TIMED_WAIT_FNS.contains(&name) && is_punct(t, i + 1, "(") {
            push(
                diags,
                ctx,
                WALL_CLOCK_IN_HOT_PATH,
                &t[i],
                format!(
                    "`{name}` schedules work off the wall clock; index maintenance \
                     (seal/compact) must be caller-driven — expose a synchronous \
                     operation and let the caller decide when"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// rule (7): panic-in-library-path

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

fn panic_in_library_path(t: &[Token], ctx: &FileCtx, masked: &[bool], diags: &mut Vec<Diagnostic>) {
    if !ctx.serve_library {
        return;
    }
    for i in 0..t.len() {
        if masked[i] {
            continue;
        }
        let Some(name) = ident_at(t, i) else { continue };
        if (name == "unwrap" || name == "expect")
            && i > 0
            && is_punct(t, i - 1, ".")
            && is_punct(t, i + 1, "(")
        {
            push(
                diags,
                ctx,
                PANIC_IN_LIBRARY_PATH,
                &t[i],
                format!(
                    "`.{name}(..)` in daemon library code can unwind a serving thread; \
                     handle the failure arm and surface a typed protocol response instead"
                ),
            );
        } else if PANIC_MACROS.contains(&name) && is_punct(t, i + 1, "!") {
            push(
                diags,
                ctx,
                PANIC_IN_LIBRARY_PATH,
                &t[i],
                format!(
                    "`{name}!` in daemon library code kills the serving path; the daemon \
                     must answer a typed error, never die on a request"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx() -> FileCtx {
        FileCtx {
            path: "crates/x/src/lib.rs".to_string(),
            is_order_module: false,
            hot_scope: false,
            crate_root: false,
            serve_library: false,
        }
    }

    fn run(src: &str) -> Vec<Diagnostic> {
        check(&lex(src).tokens, &ctx())
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn partial_cmp_unwrap_and_total_cmp_fire() {
        let d = run("fn f(a: f32, b: f32) { let _ = a.partial_cmp(&b).unwrap(); }");
        assert_eq!(rules_of(&d), vec![NAN_UNSAFE_ORDER]);
        let d = run("fn f(a: f32, b: f32) { let _ = a.total_cmp(&b); }");
        assert_eq!(rules_of(&d), vec![NAN_UNSAFE_ORDER]);
        // A handled partial_cmp (no unwrap) is the order-module idiom, not a
        // violation at large.
        let d = run("fn f(a: f32, b: f32) -> bool { a.partial_cmp(&b).is_some() }");
        assert!(d.is_empty());
    }

    #[test]
    fn order_module_is_exempt_from_rule_1() {
        let mut c = ctx();
        c.is_order_module = true;
        let d = check(
            &lex("fn f(a: f32, b: f32) { let _ = a.partial_cmp(&b).unwrap(); }").tokens,
            &c,
        );
        assert!(d.is_empty());
    }

    #[test]
    fn open_coded_sort_fires_and_blessed_sort_does_not() {
        let bad = "fn f(v: &mut [f32]) { v.sort_by(|a, b| b.partial_cmp(a).unwrap_or(Ordering::Equal)); }";
        assert!(rules_of(&run(bad)).contains(&OPEN_CODED_FLOAT_SORT));
        let blessed = "fn f(v: &mut [f32]) { v.sort_by(|a, b| order::desc_f32(*a, *b)); }";
        assert!(run(blessed).is_empty());
        let named = "fn f(v: &mut [Item]) { v.sort_by(item_order); }";
        assert!(run(named).is_empty());
        let ints = "fn f(v: &mut [u32]) { v.sort_by(|a, b| a.cmp(b)); }";
        assert!(run(ints).is_empty());
    }

    #[test]
    fn hash_float_folds_fire_btree_does_not() {
        let bad = "fn f() { let m: HashMap<u32, f32> = HashMap::new(); \
                   let _t = m.values().sum::<f32>(); }";
        assert_eq!(rules_of(&run(bad)), vec![UNORDERED_FLOAT_FOLD]);
        let bad_loop = "fn f(m: &HashMap<u32, f32>) { let mut acc = 0.0f32; \
                        for v in m.values() { acc += *v; } }";
        assert_eq!(rules_of(&run(bad_loop)), vec![UNORDERED_FLOAT_FOLD]);
        let btree = "fn f() { let m: BTreeMap<u32, f32> = BTreeMap::new(); \
                     let _t = m.values().sum::<f32>(); }";
        assert!(run(btree).is_empty());
        let int_sum = "fn f(m: &HashMap<u32, u64>) -> u64 { m.values().sum::<u64>() }";
        assert!(run(int_sum).is_empty());
    }

    #[test]
    fn par_idioms_fire_blessed_shape_does_not() {
        let bad = "fn f(v: &[f32]) { v.par_iter().for_each(|x| sink(x)); }";
        assert_eq!(rules_of(&run(bad)), vec![NONDETERMINISTIC_PAR_IDIOM]);
        let bridge = "fn f(it: I) { it.par_bridge().count(); }";
        assert_eq!(rules_of(&run(bridge)), vec![NONDETERMINISTIC_PAR_IDIOM]);
        let reduce =
            "fn f(v: &[f32]) -> f32 { v.par_iter().cloned().reduce(|| 0.0f32, |a, b| a + b) }";
        assert_eq!(rules_of(&run(reduce)), vec![NONDETERMINISTIC_PAR_IDIOM]);
        let blessed = "fn f(v: &[f32]) -> Vec<f32> { v.par_iter().map(|x| x * 2.0).collect() }";
        assert!(run(blessed).is_empty());
        let int_reduce =
            "fn f(v: &[u64]) -> u64 { v.par_iter().cloned().reduce(|| 0, |a, b| a + b) }";
        assert!(run(int_reduce).is_empty());
    }

    #[test]
    fn unsafe_token_and_missing_forbid_fire() {
        let d = run("fn f(p: *const u8) -> u8 { unsafe { *p } }");
        assert_eq!(rules_of(&d), vec![UNSAFE_BOUNDARY]);
        let mut c = ctx();
        c.crate_root = true;
        let d = check(&lex("//! A crate.\npub fn f() {}").tokens, &c);
        assert_eq!(rules_of(&d), vec![UNSAFE_BOUNDARY]);
        let d = check(
            &lex("//! A crate.\n#![forbid(unsafe_code)]\npub fn f() {}").tokens,
            &c,
        );
        assert!(d.is_empty());
    }

    #[test]
    fn wall_clock_fires_only_in_hot_scope_and_not_in_tests() {
        let src = "fn f() { let _t = Instant::now(); }";
        assert!(run(src).is_empty()); // not hot scope
        let mut c = ctx();
        c.hot_scope = true;
        assert_eq!(
            rules_of(&check(&lex(src).tokens, &c)),
            vec![WALL_CLOCK_IN_HOT_PATH]
        );
        let gated = "#[cfg(test)]\nmod tests { fn f() { let _t = Instant::now(); } }";
        assert!(check(&lex(gated).tokens, &c).is_empty());
        let rng = "fn f() { let r = thread_rng(); }";
        assert_eq!(
            rules_of(&check(&lex(rng).tokens, &c)),
            vec![WALL_CLOCK_IN_HOT_PATH]
        );
        // Timed waits are wall-clock *scheduling*: a sleep loop is how a
        // background compactor gets written, and LSM maintenance must stay
        // caller-driven.
        let timer = "fn f() { loop { thread::sleep(TICK); idx.compact(); } }";
        assert_eq!(
            rules_of(&check(&lex(timer).tokens, &c)),
            vec![WALL_CLOCK_IN_HOT_PATH]
        );
        // A field or variable merely *named* sleep does not trip the rule —
        // only the call form does.
        let named = "fn f(s: &Config) -> u64 { s.sleep }";
        assert!(check(&lex(named).tokens, &c).is_empty());
    }

    #[test]
    fn panics_fire_only_in_serve_library_scope() {
        let unwrap = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        let expect = "fn f(x: Option<u32>) -> u32 { x.expect(\"present\") }";
        let bang = "fn f() { panic!(\"boom\"); }";
        let unreach = "fn f() { unreachable!(); }";
        // Outside the serve library nothing fires.
        for src in [unwrap, expect, bang, unreach] {
            assert!(run(src).is_empty(), "fired outside serve scope: {src}");
        }
        let mut c = ctx();
        c.serve_library = true;
        for src in [unwrap, expect, bang, unreach] {
            assert_eq!(
                rules_of(&check(&lex(src).tokens, &c)),
                vec![PANIC_IN_LIBRARY_PATH],
                "did not fire in serve scope: {src}"
            );
        }
        // The recovery idioms the daemon does use stay legal: they are
        // different identifiers, not `unwrap`/`expect`.
        for src in [
            "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }",
            "fn f(x: Option<u32>) -> u32 { x.unwrap_or_default() }",
            "fn f(l: &M) -> G { l.lock().unwrap_or_else(PoisonError::into_inner) }",
        ] {
            assert!(
                check(&lex(src).tokens, &c).is_empty(),
                "recovery idiom flagged: {src}"
            );
        }
        // Test code inside the crate is exempt.
        let gated = "#[cfg(test)]\nmod tests { fn f(x: Option<u32>) -> u32 { x.unwrap() } }";
        assert!(check(&lex(gated).tokens, &c).is_empty());
    }
}
