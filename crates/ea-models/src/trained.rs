//! The artifact produced by training: embeddings plus inference helpers.

use ea_embed::{CandidateIndex, CandidateSource, EmbeddingTable, SimilarityMatrix};
use ea_graph::{AlignmentSet, EntityId, KgPair, KgSide, RelationId};

/// The output of training an EA model on a [`KgPair`]: entity embeddings for
/// both graphs, relation embeddings when the model learns them, and the
/// inference utilities the ExEA framework needs (similarity lookups, greedy
/// prediction, ranked candidate lists).
#[derive(Debug, Clone)]
pub struct TrainedAlignment {
    model_name: String,
    source_entities: EmbeddingTable,
    target_entities: EmbeddingTable,
    source_relations: Option<EmbeddingTable>,
    target_relations: Option<EmbeddingTable>,
}

impl TrainedAlignment {
    /// Creates a trained artifact. Relation tables are optional because
    /// GCN-Align does not learn relation embeddings (ExEA then derives them
    /// from entity embeddings, Eq. 1 of the paper).
    pub fn new(
        model_name: impl Into<String>,
        source_entities: EmbeddingTable,
        target_entities: EmbeddingTable,
        source_relations: Option<EmbeddingTable>,
        target_relations: Option<EmbeddingTable>,
    ) -> Self {
        Self {
            model_name: model_name.into(),
            source_entities,
            target_entities,
            source_relations,
            target_relations,
        }
    }

    /// Name of the model that produced this artifact.
    pub fn model_name(&self) -> &str {
        &self.model_name
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.source_entities.dim()
    }

    /// The entity-embedding table of one side.
    pub fn entities(&self, side: KgSide) -> &EmbeddingTable {
        match side {
            KgSide::Source => &self.source_entities,
            KgSide::Target => &self.target_entities,
        }
    }

    /// The relation-embedding table of one side, if the model learned one.
    pub fn relations(&self, side: KgSide) -> Option<&EmbeddingTable> {
        match side {
            KgSide::Source => self.source_relations.as_ref(),
            KgSide::Target => self.target_relations.as_ref(),
        }
    }

    /// Whether the model learned relation embeddings.
    pub fn has_relation_embeddings(&self) -> bool {
        self.source_relations.is_some() && self.target_relations.is_some()
    }

    /// The embedding vector of an entity.
    pub fn entity_embedding(&self, side: KgSide, entity: EntityId) -> &[f32] {
        self.entities(side).row(entity.index())
    }

    /// The embedding vector of a relation, if available.
    pub fn relation_embedding(&self, side: KgSide, relation: RelationId) -> Option<&[f32]> {
        self.relations(side).map(|t| t.row(relation.index()))
    }

    /// Cosine similarity between a source entity and a target entity.
    pub fn entity_similarity(&self, source: EntityId, target: EntityId) -> f32 {
        self.source_entities
            .cosine_between(source.index(), &self.target_entities, target.index())
    }

    /// Cosine similarity between two entities on the *same* side (used when
    /// comparing competing source entities).
    pub fn same_side_similarity(&self, side: KgSide, a: EntityId, b: EntityId) -> f32 {
        let table = self.entities(side);
        table.cosine_between(a.index(), table, b.index())
    }

    /// The similarity matrix between the pair's test source entities and all
    /// target entities, the structure Algorithm 1 of the paper calls `M`.
    ///
    /// This is the dense O(n²) *reference*; inference hot paths use
    /// [`TrainedAlignment::candidate_index`] instead, which produces
    /// bit-identical top-k candidates and greedy alignments in O(n·k) memory.
    pub fn similarity_matrix(&self, pair: &KgPair) -> SimilarityMatrix {
        let sources = pair.test_source_entities();
        let targets: Vec<EntityId> = pair.target.entity_ids().collect();
        SimilarityMatrix::compute(
            &self.source_entities,
            &sources,
            &self.target_entities,
            &targets,
        )
    }

    /// Similarity matrix between arbitrary entity lists.
    pub fn similarity_matrix_between(
        &self,
        sources: &[EntityId],
        targets: &[EntityId],
    ) -> SimilarityMatrix {
        SimilarityMatrix::compute(
            &self.source_entities,
            sources,
            &self.target_entities,
            targets,
        )
    }

    /// Blocked top-`k` candidate lists between the pair's test source
    /// entities and all target entities — the bounded-memory production form
    /// of the matrix `M` (same greedy alignment and top-k candidates as
    /// [`TrainedAlignment::similarity_matrix`], O(n·k) storage). Exact scan;
    /// use [`TrainedAlignment::candidate_index_with`] to switch strategies.
    pub fn candidate_index(&self, pair: &KgPair, k: usize) -> CandidateIndex {
        self.candidate_index_with(pair, k, &ea_embed::CandidateSearch::Exact)
    }

    /// Top-`k` candidate lists between the pair's test source entities and
    /// all target entities, produced by the given candidate-generation
    /// strategy ([`ea_embed::CandidateSearch`]) — the exact blocked scan,
    /// the IVF approximate pre-filter (optionally IVF-SQ), the SQ8
    /// quantized scan or the sharded scatter-gather engine. Approximate
    /// strategies may miss candidates but every returned score is the
    /// bit-exact f32 dot of the exact kernel.
    pub fn candidate_index_with(
        &self,
        pair: &KgPair,
        k: usize,
        search: &dyn CandidateSource,
    ) -> CandidateIndex {
        let sources = pair.test_source_entities();
        let targets: Vec<EntityId> = pair.target.entity_ids().collect();
        self.candidate_index_between_with(&sources, &targets, k, search)
    }

    /// Blocked top-`k` candidate lists between arbitrary entity lists
    /// (exact scan).
    pub fn candidate_index_between(
        &self,
        sources: &[EntityId],
        targets: &[EntityId],
        k: usize,
    ) -> CandidateIndex {
        self.candidate_index_between_with(sources, targets, k, &ea_embed::CandidateSearch::Exact)
    }

    /// Top-`k` candidate lists between arbitrary entity lists under the given
    /// candidate-generation strategy.
    pub fn candidate_index_between_with(
        &self,
        sources: &[EntityId],
        targets: &[EntityId],
        k: usize,
        search: &dyn CandidateSource,
    ) -> CandidateIndex {
        search.forward_index(
            &self.source_entities,
            sources,
            &self.target_entities,
            targets,
            k,
        )
    }

    /// Greedy alignment prediction for the pair's test source entities
    /// (the paper's `Ares`). Runs on the blocked candidate engine with
    /// `k = 1`, so prediction memory is O(n) instead of the dense matrix's
    /// O(n²). Exact scan; use [`TrainedAlignment::predict_with`] to switch
    /// strategies.
    pub fn predict(&self, pair: &KgPair) -> AlignmentSet {
        self.candidate_index(pair, 1).greedy_alignment()
    }

    /// Greedy alignment prediction through the given candidate-generation
    /// strategy. With [`ea_embed::CandidateSearch::Ivf`] at `nprobe < nlist`
    /// (or [`ea_embed::CandidateSearch::Sq8`] at a finite `rerank_factor`)
    /// the prediction is approximate (each source aligns to the best target
    /// the strategy surfaced); at `nprobe = nlist` / exhaustive re-ranking
    /// it is bit-identical to [`TrainedAlignment::predict`].
    pub fn predict_with(&self, pair: &KgPair, search: &dyn CandidateSource) -> AlignmentSet {
        self.candidate_index_with(pair, 1, search)
            .greedy_alignment()
    }

    /// Alignment accuracy of the greedy prediction against the reference
    /// alignment.
    pub fn accuracy(&self, pair: &KgPair) -> f64 {
        self.predict(pair).accuracy_against(&pair.reference)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ea_graph::{AlignmentPair, KnowledgeGraph};

    fn tiny_pair() -> KgPair {
        let mut k1 = KnowledgeGraph::new();
        k1.add_triple_by_names("a1", "r", "b1");
        k1.add_triple_by_names("b1", "r", "c1");
        let mut k2 = KnowledgeGraph::new();
        k2.add_triple_by_names("a2", "s", "b2");
        k2.add_triple_by_names("b2", "s", "c2");
        let seed = AlignmentSet::from_pairs([AlignmentPair::new(
            k1.entity_by_name("a1").unwrap(),
            k2.entity_by_name("a2").unwrap(),
        )]);
        let reference = AlignmentSet::from_pairs([
            AlignmentPair::new(
                k1.entity_by_name("b1").unwrap(),
                k2.entity_by_name("b2").unwrap(),
            ),
            AlignmentPair::new(
                k1.entity_by_name("c1").unwrap(),
                k2.entity_by_name("c2").unwrap(),
            ),
        ]);
        KgPair::new("tiny", k1, k2, seed, reference).unwrap()
    }

    /// Builds a trained artifact whose embeddings perfectly encode the gold
    /// alignment: entity i on both sides gets the i-th basis vector.
    fn perfect_artifact(pair: &KgPair) -> TrainedAlignment {
        let n = pair.source.num_entities().max(pair.target.num_entities());
        let mut s = EmbeddingTable::zeros(pair.source.num_entities(), n);
        let mut t = EmbeddingTable::zeros(pair.target.num_entities(), n);
        for i in 0..pair.source.num_entities() {
            s.row_mut(i)[i] = 1.0;
        }
        for i in 0..pair.target.num_entities() {
            t.row_mut(i)[i] = 1.0;
        }
        TrainedAlignment::new("perfect", s, t, None, None)
    }

    #[test]
    fn accessors_report_shapes() {
        let pair = tiny_pair();
        let trained = perfect_artifact(&pair);
        assert_eq!(trained.model_name(), "perfect");
        assert_eq!(trained.dim(), 3);
        assert!(!trained.has_relation_embeddings());
        assert!(trained.relations(KgSide::Source).is_none());
        assert_eq!(
            trained.entities(KgSide::Source).rows(),
            pair.source.num_entities()
        );
        assert!(trained
            .relation_embedding(KgSide::Target, RelationId(0))
            .is_none());
    }

    #[test]
    fn perfect_embeddings_yield_perfect_accuracy() {
        let pair = tiny_pair();
        let trained = perfect_artifact(&pair);
        let prediction = trained.predict(&pair);
        assert_eq!(prediction.len(), 2);
        assert!((trained.accuracy(&pair) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn similarity_lookups_are_consistent() {
        let pair = tiny_pair();
        let trained = perfect_artifact(&pair);
        let b1 = pair.source.entity_by_name("b1").unwrap();
        let b2 = pair.target.entity_by_name("b2").unwrap();
        let c2 = pair.target.entity_by_name("c2").unwrap();
        assert!(trained.entity_similarity(b1, b2) > trained.entity_similarity(b1, c2));
        let m = trained.similarity_matrix(&pair);
        assert_eq!(
            m.similarity(b1, b2).unwrap(),
            trained.entity_similarity(b1, b2)
        );
        let sub = trained.similarity_matrix_between(&[b1], &[b2, c2]);
        assert_eq!(sub.source_ids().len(), 1);
        assert_eq!(sub.target_ids().len(), 2);
    }

    #[test]
    fn candidate_index_matches_dense_matrix() {
        let pair = tiny_pair();
        let trained = perfect_artifact(&pair);
        let m = trained.similarity_matrix(&pair);
        let index = trained.candidate_index(&pair, 3);
        let mut dense = m.greedy_alignment().to_vec();
        let mut blocked = index.greedy_alignment().to_vec();
        dense.sort();
        blocked.sort();
        assert_eq!(dense, blocked);
        for &s in &pair.test_source_entities() {
            let dense_top: Vec<_> = m.top_k(s, 3);
            let blocked_top: Vec<_> = index.top_k(s, 3);
            assert_eq!(dense_top.len(), blocked_top.len());
            for ((dt, ds), (bt, bs)) in dense_top.iter().zip(&blocked_top) {
                assert_eq!(dt, bt);
                assert_eq!(ds.to_bits(), bs.to_bits());
            }
        }
        let sub = trained.candidate_index_between(
            &[pair.source.entity_by_name("b1").unwrap()],
            &[pair.target.entity_by_name("b2").unwrap()],
            2,
        );
        assert_eq!(sub.source_ids().len(), 1);
        assert_eq!(sub.candidates_per_source(), 1);
    }

    #[test]
    fn same_side_similarity_is_reflexive() {
        let pair = tiny_pair();
        let trained = perfect_artifact(&pair);
        let a1 = pair.source.entity_by_name("a1").unwrap();
        let b1 = pair.source.entity_by_name("b1").unwrap();
        assert!(
            trained.same_side_similarity(KgSide::Source, a1, a1)
                > trained.same_side_similarity(KgSide::Source, a1, b1)
        );
    }

    #[test]
    fn relation_tables_are_exposed_when_present() {
        let pair = tiny_pair();
        let s_rel = EmbeddingTable::zeros(pair.source.num_relations(), 4);
        let t_rel = EmbeddingTable::zeros(pair.target.num_relations(), 4);
        let trained = TrainedAlignment::new(
            "with-relations",
            EmbeddingTable::zeros(pair.source.num_entities(), 4),
            EmbeddingTable::zeros(pair.target.num_entities(), 4),
            Some(s_rel),
            Some(t_rel),
        );
        assert!(trained.has_relation_embeddings());
        assert!(trained
            .relation_embedding(KgSide::Source, RelationId(0))
            .is_some());
    }
}
