//! AlignE: bootstrapping-style alignment learning with hard negatives.
//!
//! AlignE (Sun et al., IJCAI 2018 — the alignment-oriented variant without
//! bootstrapping) improves on MTransE in two ways the paper's analysis leans
//! on:
//!
//! 1. **Hard negative sampling** — negatives are drawn from the entities most
//!    similar to the true counterpart under the current embeddings, which
//!    teaches the model to distinguish similar entities (and is why AlignE
//!    gains the least from ExEA's relation-conflict resolution, Fig. 6).
//! 2. **Limit-based alignment loss** — instead of merely pulling seed pairs
//!    together, a margin-ranking loss keeps the positive distance below the
//!    negative distance, sharpening decision boundaries.

use crate::config::TrainConfig;
use crate::trained::TrainedAlignment;
use crate::training::{
    alignment_margin_epoch, alignment_pull_epoch, training_rng, transe_epoch, TranslationState,
};
use crate::traits::EaModel;
use ea_embed::{HardNegativeCache, NegativeSampler};
use ea_graph::KgPair;

/// The AlignE model.
#[derive(Debug, Clone)]
pub struct AlignE {
    config: TrainConfig,
}

impl AlignE {
    /// Creates an AlignE model with the given configuration.
    pub fn new(config: TrainConfig) -> Self {
        config.validate();
        Self { config }
    }

    /// Number of nearest neighbours hard negatives are drawn from.
    const HARD_K: usize = 10;
    /// Probability of falling back to a uniform negative.
    const UNIFORM_PROB: f64 = 0.3;
    /// How often (in epochs) the hard-negative caches are rebuilt.
    const REFRESH_EVERY: usize = 10;
}

impl EaModel for AlignE {
    fn name(&self) -> &'static str {
        "AlignE"
    }

    fn config(&self) -> &TrainConfig {
        &self.config
    }

    fn train(&self, pair: &KgPair) -> TrainedAlignment {
        let mut rng = training_rng(&self.config);
        let mut state = TranslationState::init(pair, &self.config, &mut rng);
        // Uniform corruption for the triple loss (as in TransE); the hard
        // negatives are reserved for the alignment loss, where distinguishing
        // similar counterpart candidates actually matters.
        let source_sampler = NegativeSampler::uniform(pair.source.num_entities());
        let target_sampler = NegativeSampler::uniform(pair.target.num_entities());
        let mut hard_targets = HardNegativeCache::build(
            &state.target_entities,
            Self::HARD_K,
            pair.target.num_entities(),
            Self::UNIFORM_PROB,
        );

        for epoch in 0..self.config.epochs {
            if epoch > 0 && epoch % Self::REFRESH_EVERY == 0 {
                hard_targets = HardNegativeCache::build(
                    &state.target_entities,
                    Self::HARD_K,
                    pair.target.num_entities(),
                    Self::UNIFORM_PROB,
                );
            }
            transe_epoch(
                &pair.source,
                &mut state.source_entities,
                &mut state.source_relations,
                &source_sampler,
                &self.config,
                &mut rng,
            );
            transe_epoch(
                &pair.target,
                &mut state.target_entities,
                &mut state.target_relations,
                &target_sampler,
                &self.config,
                &mut rng,
            );
            // The limit-based alignment loss with hard negative target
            // entities, plus a gentle pull to keep the spaces calibrated.
            alignment_margin_epoch(
                &pair.seed,
                &mut state.source_entities,
                &mut state.target_entities,
                &hard_targets,
                &self.config,
                &mut rng,
            );
            alignment_pull_epoch(
                &pair.seed,
                &mut state.source_entities,
                &mut state.target_entities,
                &self.config,
            );
            // AlignE's parameter-sharing calibration: seed entities are the
            // same parameter, so snap them together periodically.
            if epoch % 5 == 4 {
                crate::training::merge_seed_embeddings(
                    &pair.seed,
                    &mut state.source_entities,
                    &mut state.target_entities,
                );
                state.source_entities.normalize_rows();
                state.target_entities.normalize_rows();
            }
        }
        state.source_entities.normalize_rows();
        state.target_entities.normalize_rows();

        TrainedAlignment::new(
            self.name(),
            state.source_entities,
            state.target_entities,
            Some(state.source_relations),
            Some(state.target_relations),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ea_data::datasets::{load, DatasetName, DatasetScale};
    use ea_graph::KgSide;

    #[test]
    fn training_is_deterministic_given_seed() {
        let pair = load(DatasetName::ZhEn, DatasetScale::Small);
        let model = AlignE::new(TrainConfig::fast());
        let a = model.train(&pair);
        let b = model.train(&pair);
        assert_eq!(
            a.entities(KgSide::Target).data(),
            b.entities(KgSide::Target).data()
        );
    }

    #[test]
    fn training_beats_random_alignment() {
        let pair = load(DatasetName::ZhEn, DatasetScale::Small);
        let trained = AlignE::new(TrainConfig::fast()).train(&pair);
        let acc = trained.accuracy(&pair);
        let random_baseline = 1.0 / pair.target.num_entities() as f64;
        assert!(
            acc > random_baseline * 10.0,
            "AlignE accuracy {acc} too low"
        );
    }

    #[test]
    fn artifact_metadata_is_correct() {
        let pair = load(DatasetName::ZhEn, DatasetScale::Small);
        let trained = AlignE::new(TrainConfig::fast()).train(&pair);
        assert_eq!(trained.model_name(), "AlignE");
        assert!(trained.has_relation_embeddings());
    }
}
