//! Dual-AMN: relation-gated aggregation with hard negative mining.
//!
//! Dual-AMN (Mao et al., WWW 2021) is the strongest structure-only EA model
//! the paper evaluates. The published architecture combines a relation-aware
//! "simplified relational attention" layer, a proxy-attention cross-graph
//! layer and a normalised hard-sample-mining loss. This reproduction keeps
//! the ingredients ExEA's analysis depends on (see `DESIGN.md` §3):
//!
//! * **relation-aware aggregation** — each neighbour contribution is gated by
//!   a per-relation vector derived from the relation's translational
//!   behaviour, so relation semantics are captured (which is why Dual-AMN
//!   gains little from relation-conflict resolution, Fig. 6);
//! * **hard negative mining** — negatives are drawn from the entities most
//!   similar to the true counterpart (precomputed candidate cache), giving
//!   the model its ability to separate look-alike entities;
//! * **strongest base accuracy** of the four models: gated propagation plus
//!   50% more fine-tuning epochs than GCN-Align.

use crate::config::TrainConfig;
use crate::trained::TrainedAlignment;
use crate::training::{
    alignment_margin_epoch, anchor_init, merge_seed_embeddings, propagate, training_rng,
    NeighborLists,
};
use crate::traits::EaModel;
use ea_embed::{EmbeddingTable, HardNegativeCache};
use ea_graph::KgPair;
use rand::Rng;

/// The Dual-AMN model (simplified; see module docs).
#[derive(Debug, Clone)]
pub struct DualAmn {
    config: TrainConfig,
}

impl DualAmn {
    /// Creates a Dual-AMN model with the given configuration.
    pub fn new(config: TrainConfig) -> Self {
        config.validate();
        Self { config }
    }

    /// Number of nearest neighbours hard negatives are drawn from.
    const HARD_K: usize = 10;
    /// Probability of falling back to a uniform negative.
    const UNIFORM_PROB: f64 = 0.2;
    /// How often (in epochs) the hard-negative cache is rebuilt.
    const REFRESH_EVERY: usize = 10;
    /// Residual (self-loop) weight used during propagation.
    const SELF_WEIGHT: f32 = 0.3;
    /// Number of propagation layers.
    const LAYERS: usize = 2;
    /// Scale of the non-anchor initial noise.
    const NOISE: f32 = 0.05;
    /// Similarity threshold for the proxy-matching anchor-augmentation round.
    const PSEUDO_SIM: f32 = 0.5;
}

impl EaModel for DualAmn {
    fn name(&self) -> &'static str {
        "Dual-AMN"
    }

    fn config(&self) -> &TrainConfig {
        &self.config
    }

    fn train(&self, pair: &KgPair) -> TrainedAlignment {
        let config = &self.config;
        let mut rng = training_rng(config);
        let (mut source_base, mut target_base) = anchor_init(pair, config, Self::NOISE, &mut rng);
        let source_neighbors = NeighborLists::build(&pair.source);
        let target_neighbors = NeighborLists::build(&pair.target);

        // Provisional ungated propagation gives entity positions from which
        // the relation gates are derived.
        let source_prov = propagate(&source_base, &source_neighbors, None, 1, Self::SELF_WEIGHT);
        let target_prov = propagate(&target_base, &target_neighbors, None, 1, Self::SELF_WEIGHT);
        let source_gates = derive_gates(&pair.source, &source_prov, config.dim);
        let target_gates = derive_gates(&pair.target, &target_prov, config.dim);

        // Dual-channel structural representation: the ungated channel captures
        // plain neighbourhood overlap (as in GCN-Align), the gated channel
        // captures relation-aware structure. Concatenating the two is the
        // CPU-friendly counterpart of Dual-AMN's two aggregation networks.
        let source_plain = propagate(
            &source_base,
            &source_neighbors,
            None,
            Self::LAYERS,
            Self::SELF_WEIGHT,
        );
        let target_plain = propagate(
            &target_base,
            &target_neighbors,
            None,
            Self::LAYERS,
            Self::SELF_WEIGHT,
        );
        let source_gated = propagate(
            &source_base,
            &source_neighbors,
            Some(&source_gates),
            Self::LAYERS,
            Self::SELF_WEIGHT,
        );
        let target_gated = propagate(
            &target_base,
            &target_neighbors,
            Some(&target_gates),
            Self::LAYERS,
            Self::SELF_WEIGHT,
        );
        let mut source_out = concat_tables(&source_plain, &source_gated);
        let mut target_out = concat_tables(&target_plain, &target_gated);

        // Fine-tune with hard negatives; Dual-AMN's normalised loss converges
        // fast in the original, which we emulate with 50% more epochs.
        let epochs = config.epochs + config.epochs / 2;
        let mut cache = HardNegativeCache::build(
            &target_out,
            Self::HARD_K,
            pair.target.num_entities(),
            Self::UNIFORM_PROB,
        );
        for epoch in 0..epochs {
            if epoch > 0 && epoch % Self::REFRESH_EVERY == 0 {
                cache = HardNegativeCache::build(
                    &target_out,
                    Self::HARD_K,
                    pair.target.num_entities(),
                    Self::UNIFORM_PROB,
                );
            }
            alignment_margin_epoch(
                &pair.seed,
                &mut source_out,
                &mut target_out,
                &cache,
                config,
                &mut rng,
            );
            merge_seed_embeddings(&pair.seed, &mut source_out, &mut target_out);
        }

        // Proxy-matching stand-in: one round of confident cross-graph anchor
        // augmentation. Mutual nearest neighbours above a similarity threshold
        // are treated as additional shared anchors and the representation is
        // rebuilt, which plays the role of the original model's proxy-attention
        // cross-graph interaction.
        let pseudo = mutual_anchor_candidates(
            pair,
            &source_out,
            &target_out,
            Self::PSEUDO_SIM,
            &config.candidate_search,
        );
        if !pseudo.is_empty() {
            let mut anchor = vec![0.0f32; config.dim];
            for p in pseudo.iter() {
                for v in anchor.iter_mut() {
                    *v = rng.gen_range(-1.0f32..=1.0);
                }
                ea_embed::vector::normalize(&mut anchor);
                source_base
                    .row_mut(p.source.index())
                    .copy_from_slice(&anchor);
                target_base
                    .row_mut(p.target.index())
                    .copy_from_slice(&anchor);
            }
            let source_plain = propagate(
                &source_base,
                &source_neighbors,
                None,
                Self::LAYERS,
                Self::SELF_WEIGHT,
            );
            let target_plain = propagate(
                &target_base,
                &target_neighbors,
                None,
                Self::LAYERS,
                Self::SELF_WEIGHT,
            );
            let source_gated = propagate(
                &source_base,
                &source_neighbors,
                Some(&source_gates),
                Self::LAYERS,
                Self::SELF_WEIGHT,
            );
            let target_gated = propagate(
                &target_base,
                &target_neighbors,
                Some(&target_gates),
                Self::LAYERS,
                Self::SELF_WEIGHT,
            );
            source_out = concat_tables(&source_plain, &source_gated);
            target_out = concat_tables(&target_plain, &target_gated);
            for _ in 0..config.epochs / 2 {
                alignment_margin_epoch(
                    &pair.seed,
                    &mut source_out,
                    &mut target_out,
                    &cache,
                    config,
                    &mut rng,
                );
                merge_seed_embeddings(&pair.seed, &mut source_out, &mut target_out);
            }
        }
        source_out.normalize_rows();
        target_out.normalize_rows();

        TrainedAlignment::new(
            self.name(),
            source_out,
            target_out,
            Some(source_gates),
            Some(target_gates),
        )
    }
}

/// Finds mutual nearest neighbours between the not-yet-anchored entities of
/// both graphs whose cosine similarity exceeds `threshold`. These pairs are
/// confident enough to serve as additional anchors for a second
/// representation-building round.
fn mutual_anchor_candidates(
    pair: &KgPair,
    source_out: &EmbeddingTable,
    target_out: &EmbeddingTable,
    threshold: f32,
    search: &ea_embed::CandidateSearch,
) -> Vec<ea_graph::AlignmentPair> {
    use ea_graph::EntityId;
    let sources: Vec<EntityId> = pair
        .source
        .entity_ids()
        .filter(|e| !pair.seed.contains_source(*e))
        .collect();
    let targets: Vec<EntityId> = pair
        .target
        .entity_ids()
        .filter(|e| !pair.seed.contains_target(*e))
        .collect();
    if sources.is_empty() || targets.is_empty() {
        return Vec::new();
    }
    // Blocked top-1 candidate engine: best target per source from the
    // forward lists, best source per target from the reverse lists — no
    // dense n_s × n_t matrix, no quadratic rescan. Ties resolve to the
    // earliest row/column, like the dense scans did. The configured
    // `CandidateSearch` decides whether the lists come from the exact scan,
    // the IVF pre-filter or the sharded scatter-gather engine (approximate
    // mining trades a few anchors for a sub-quadratic sweep; at
    // `nprobe = nlist` / full routing it is bit-identical).
    use ea_embed::CandidateSource as _;
    let index = search.bidirectional_index(source_out, &sources, target_out, &targets, 1);
    let mut pseudo = Vec::new();
    for (i, &s) in sources.iter().enumerate() {
        let (t, sim) = index
            .candidates(i)
            .next()
            .expect("non-empty targets yield a best candidate");
        if sim < threshold {
            continue;
        }
        if let Some((best_s, _)) = index.best_source_for_target(t) {
            if best_s == s {
                pseudo.push(ea_graph::AlignmentPair::new(s, t));
            }
        }
    }
    pseudo
}

/// Concatenates two embedding tables row-wise (the dual-channel combination).
fn concat_tables(a: &EmbeddingTable, b: &EmbeddingTable) -> EmbeddingTable {
    assert_eq!(a.rows(), b.rows(), "channel tables must have the same rows");
    let mut out = EmbeddingTable::zeros(a.rows(), a.dim() + b.dim());
    for i in 0..a.rows() {
        let row = out.row_mut(i);
        row[..a.dim()].copy_from_slice(a.row(i));
        row[a.dim()..].copy_from_slice(b.row(i));
    }
    out
}

/// Derives a per-relation gate vector `1 + mean(head - tail)` from the current
/// entity embeddings: relations with consistent translational behaviour get a
/// distinctive gate, relations that connect arbitrary entities stay close to
/// the all-ones (ungated) vector. These gates double as the model's relation
/// embeddings.
fn derive_gates(
    kg: &ea_graph::KnowledgeGraph,
    entities: &EmbeddingTable,
    dim: usize,
) -> EmbeddingTable {
    let mut gates = EmbeddingTable::zeros(kg.num_relations().max(1), dim);
    for r in 0..gates.rows() {
        for v in gates.row_mut(r) {
            *v = 1.0;
        }
    }
    // Mean-of-translations scratch shared across relations (no per-relation
    // allocation); the reduction itself is the same `Σ (head − tail) / count`
    // Eq. 1 derives relation embeddings with.
    let mut acc = vec![0.0f32; dim];
    for r in kg.relation_ids() {
        acc.fill(0.0);
        let mut count = 0usize;
        for t in kg.triples_with_relation(r) {
            let head = entities.row(t.head.index());
            let tail = entities.row(t.tail.index());
            for (a, (h, tl)) in acc.iter_mut().zip(head.iter().zip(tail)) {
                *a += h - tl;
            }
            count += 1;
        }
        if count == 0 {
            continue;
        }
        let gate = gates.row_mut(r.index());
        for i in 0..dim {
            gate[i] = 1.0 + acc[i] / count as f32;
        }
    }
    gates
}

#[cfg(test)]
mod tests {
    use super::*;
    use ea_data::datasets::{load, DatasetName, DatasetScale};
    use ea_graph::KgSide;

    #[test]
    fn training_is_deterministic_given_seed() {
        let pair = load(DatasetName::ZhEn, DatasetScale::Small);
        let model = DualAmn::new(TrainConfig::fast());
        let a = model.train(&pair);
        let b = model.train(&pair);
        assert_eq!(
            a.entities(KgSide::Source).data(),
            b.entities(KgSide::Source).data()
        );
    }

    #[test]
    fn training_beats_random_alignment() {
        let pair = load(DatasetName::ZhEn, DatasetScale::Small);
        let trained = DualAmn::new(TrainConfig::fast()).train(&pair);
        let acc = trained.accuracy(&pair);
        let random_baseline = 1.0 / pair.target.num_entities() as f64;
        assert!(
            acc > random_baseline * 20.0,
            "Dual-AMN accuracy {acc} too low"
        );
    }

    #[test]
    fn dual_amn_exposes_relation_gates_as_relation_embeddings() {
        let pair = load(DatasetName::ZhEn, DatasetScale::Small);
        let trained = DualAmn::new(TrainConfig::fast()).train(&pair);
        assert!(trained.has_relation_embeddings());
        assert_eq!(
            trained.relations(KgSide::Source).unwrap().rows(),
            pair.source.num_relations()
        );
    }

    #[test]
    fn derive_gates_marks_translational_relations() {
        let pair = load(DatasetName::ZhEn, DatasetScale::Small);
        let config = TrainConfig::fast();
        let mut rng = training_rng(&config);
        let entities = EmbeddingTable::uniform_normalized(
            pair.source.num_entities(),
            config.dim,
            1.0,
            &mut rng,
        );
        let gates = derive_gates(&pair.source, &entities, config.dim);
        assert_eq!(gates.rows(), pair.source.num_relations());
        // A used relation's gate differs from the all-ones default.
        let used = pair.source.triples()[0].relation;
        assert!(gates
            .row(used.index())
            .iter()
            .any(|&v| (v - 1.0).abs() > 1e-6));
    }
}
