//! Embedding-based entity-alignment models.
//!
//! The ExEA framework is model-agnostic: it consumes the entity (and, when
//! available, relation) embeddings plus the predicted alignment of *any*
//! embedding-based EA model. This crate provides from-scratch CPU
//! implementations of the four representative models the paper evaluates:
//!
//! | Model | Family | Negative sampling | Relation embeddings |
//! |-------|--------|-------------------|---------------------|
//! | [`MTransE`]   | TransE (translation) | uniform | yes |
//! | [`AlignE`]    | TransE (translation) | hard    | yes |
//! | [`GcnAlign`]  | GCN (aggregation)    | uniform | no  |
//! | [`DualAmn`]   | GCN (aggregation)    | hard    | yes (gates) |
//!
//! All models implement the [`EaModel`] trait: `train` a [`ea_graph::KgPair`] into a
//! [`TrainedAlignment`] artifact holding embeddings for both graphs. Training
//! is deterministic given the [`TrainConfig`] seed, which is what makes the
//! paper's fidelity protocol (delete triples, retrain, re-measure) reproducible.
//!
//! The Dual-AMN implementation is a simplification of the published model
//! (see `DESIGN.md` §3): it keeps the properties the paper's analysis relies
//! on — relation-aware aggregation, hard negative mining, strongest base
//! accuracy — without proxy-attention matching.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aligne;
pub mod config;
pub mod dual_amn;
pub mod gcn_align;
pub mod mtranse;
pub mod trained;
pub mod training;
pub mod traits;

pub use aligne::AlignE;
pub use config::TrainConfig;
pub use dual_amn::DualAmn;
pub use gcn_align::GcnAlign;
pub use mtranse::MTransE;
pub use trained::TrainedAlignment;
pub use traits::{build_model, EaModel, ModelKind};
