//! Shared training machinery used by the concrete models.
//!
//! The four models differ in *what* they score (translations vs. aggregated
//! neighbourhoods) and in *how* they pick negatives, but they share the same
//! skeleton: margin-based ranking losses optimised with sparse SGD over
//! entity/relation embedding tables. The helpers here keep each model file
//! focused on the parts that make it distinctive.

use crate::config::TrainConfig;
use ea_embed::{vector, EmbeddingTable, Negatives};
use ea_graph::{AlignmentSet, KgPair, KnowledgeGraph};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Mutable training state shared by the translation-based models: entity and
/// relation tables for both graphs.
#[derive(Debug)]
pub struct TranslationState {
    /// Source-graph entity embeddings.
    pub source_entities: EmbeddingTable,
    /// Target-graph entity embeddings.
    pub target_entities: EmbeddingTable,
    /// Source-graph relation embeddings.
    pub source_relations: EmbeddingTable,
    /// Target-graph relation embeddings.
    pub target_relations: EmbeddingTable,
}

impl TranslationState {
    /// Initialises uniformly-random, row-normalised tables for a KG pair.
    pub fn init(pair: &KgPair, config: &TrainConfig, rng: &mut ChaCha8Rng) -> Self {
        let dim = config.dim;
        Self {
            source_entities: EmbeddingTable::uniform_normalized(
                pair.source.num_entities(),
                dim,
                1.0,
                rng,
            ),
            target_entities: EmbeddingTable::uniform_normalized(
                pair.target.num_entities(),
                dim,
                1.0,
                rng,
            ),
            source_relations: EmbeddingTable::uniform_normalized(
                pair.source.num_relations().max(1),
                dim,
                1.0,
                rng,
            ),
            target_relations: EmbeddingTable::uniform_normalized(
                pair.target.num_relations().max(1),
                dim,
                1.0,
                rng,
            ),
        }
    }
}

/// Creates the deterministic RNG for a training run.
pub fn training_rng(config: &TrainConfig) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(config.seed)
}

/// TransE plausibility score: squared L2 norm of `h + r - t`. Lower is more
/// plausible.
pub fn transe_score(h: &[f32], r: &[f32], t: &[f32]) -> f32 {
    let mut sum = 0.0;
    for i in 0..h.len() {
        let d = h[i] + r[i] - t[i];
        sum += d * d;
    }
    sum
}

/// One epoch of TransE margin-ranking updates over the triples of one graph.
///
/// For every triple a corrupted triple is produced by replacing the head or
/// the tail with a sampled negative entity. When the margin is violated the
/// four involved rows (head, relation, tail, corrupted entity) receive SGD
/// updates.
#[allow(clippy::too_many_arguments)]
pub fn transe_epoch<N: Negatives>(
    kg: &KnowledgeGraph,
    entities: &mut EmbeddingTable,
    relations: &mut EmbeddingTable,
    sampler: &N,
    config: &TrainConfig,
    rng: &mut ChaCha8Rng,
) {
    let lr = config.learning_rate;
    // Gradient scratch reused across every sample of the epoch (the old code
    // collected two fresh `Vec<f32>`s per violated sample).
    let mut pos_grad = vec![0.0f32; config.dim];
    let mut neg_grad = vec![0.0f32; config.dim];
    for triple in kg.triples() {
        for _ in 0..config.negative_samples {
            let corrupt_tail = rng.gen_bool(0.5);
            let anchor = if corrupt_tail {
                triple.tail.index()
            } else {
                triple.head.index()
            };
            let Some(neg) = sampler.negative(rng, entities, anchor, anchor) else {
                continue;
            };
            let (h, r, t) = (
                triple.head.index(),
                triple.relation.index(),
                triple.tail.index(),
            );
            let (neg_h, neg_t) = if corrupt_tail { (h, neg) } else { (neg, t) };

            let pos_score = transe_score(entities.row(h), relations.row(r), entities.row(t));
            let neg_score =
                transe_score(entities.row(neg_h), relations.row(r), entities.row(neg_t));
            let violation = config.margin + pos_score - neg_score;
            if violation <= 0.0 {
                continue;
            }
            // Gradient of pos_score w.r.t. h (and r) is 2(h + r - t); w.r.t. t
            // it is the negation. The negative triple contributes with the
            // opposite sign.
            fill_transe_grad(
                entities.row(h),
                relations.row(r),
                entities.row(t),
                &mut pos_grad,
            );
            fill_transe_grad(
                entities.row(neg_h),
                relations.row(r),
                entities.row(neg_t),
                &mut neg_grad,
            );

            entities.add_to_row(h, &pos_grad, -lr);
            entities.add_to_row(t, &pos_grad, lr);
            relations.add_to_row(r, &pos_grad, -lr);
            entities.add_to_row(neg_h, &neg_grad, lr);
            entities.add_to_row(neg_t, &neg_grad, -lr);
            relations.add_to_row(r, &neg_grad, lr);
        }
    }
}

/// `grad = 2 (h + r - t)`, the TransE margin gradient, into a reused buffer.
#[inline]
fn fill_transe_grad(h: &[f32], r: &[f32], t: &[f32], out: &mut [f32]) {
    for (o, ((x, y), z)) in out.iter_mut().zip(h.iter().zip(r).zip(t)) {
        *o = 2.0 * (x + y - z);
    }
}

/// One epoch of seed-alignment pulling: the embeddings of seed-aligned
/// entities are moved towards each other, scaled by
/// `config.alignment_weight`.
pub fn alignment_pull_epoch(
    seed: &AlignmentSet,
    source_entities: &mut EmbeddingTable,
    target_entities: &mut EmbeddingTable,
    config: &TrainConfig,
) {
    let step = config.learning_rate * config.alignment_weight;
    let mut diff = vec![0.0f32; source_entities.dim()];
    for p in seed.iter() {
        vector::sub_into(
            source_entities.row(p.source.index()),
            target_entities.row(p.target.index()),
            &mut diff,
        );
        source_entities.add_to_row(p.source.index(), &diff, -step);
        target_entities.add_to_row(p.target.index(), &diff, step);
    }
}

/// Hard seed anchoring: the embeddings of each seed-aligned pair are replaced
/// by their mean, so the two spaces share exact anchor points.
///
/// This is the "parameter sharing" calibration used by bootstrapping-style EA
/// models: seed entities are treated as the same parameter. Structural
/// training then positions the remaining entities relative to these shared
/// anchors, which is what lets alignment propagate beyond the seed.
pub fn merge_seed_embeddings(
    seed: &AlignmentSet,
    source_entities: &mut EmbeddingTable,
    target_entities: &mut EmbeddingTable,
) {
    let dim = source_entities.dim();
    let mut mean = vec![0.0f32; dim];
    for p in seed.iter() {
        vector::add_into(
            source_entities.row(p.source.index()),
            target_entities.row(p.target.index()),
            &mut mean,
        );
        vector::scale(&mut mean, 0.5);
        source_entities
            .row_mut(p.source.index())
            .copy_from_slice(&mean);
        target_entities
            .row_mut(p.target.index())
            .copy_from_slice(&mean);
    }
}

/// One epoch of alignment margin-ranking with negative target entities:
/// seed pairs must be closer than the source entity is to a sampled negative
/// target entity. This is the loss that lets AlignE and Dual-AMN distinguish
/// highly similar entities.
pub fn alignment_margin_epoch<N: Negatives>(
    seed: &AlignmentSet,
    source_entities: &mut EmbeddingTable,
    target_entities: &mut EmbeddingTable,
    sampler: &N,
    config: &TrainConfig,
    rng: &mut ChaCha8Rng,
) {
    let step = config.learning_rate * config.alignment_weight;
    let mut pos_grad = vec![0.0f32; source_entities.dim()];
    let mut neg_grad = vec![0.0f32; source_entities.dim()];
    for p in seed.iter() {
        let s = p.source.index();
        let t = p.target.index();
        for _ in 0..config.negative_samples {
            let Some(neg) = sampler.negative(rng, target_entities, t, t) else {
                continue;
            };
            let pos_dist = vector::squared_distance(source_entities.row(s), target_entities.row(t));
            let neg_dist =
                vector::squared_distance(source_entities.row(s), target_entities.row(neg));
            if config.margin + pos_dist - neg_dist <= 0.0 {
                continue;
            }
            vector::sub_into(
                source_entities.row(s),
                target_entities.row(t),
                &mut pos_grad,
            );
            vector::sub_into(
                source_entities.row(s),
                target_entities.row(neg),
                &mut neg_grad,
            );
            // Decrease the positive distance.
            source_entities.add_to_row(s, &pos_grad, -step);
            target_entities.add_to_row(t, &pos_grad, step);
            // Increase the negative distance.
            source_entities.add_to_row(s, &neg_grad, step);
            target_entities.add_to_row(neg, &neg_grad, -step);
        }
    }
}

/// Precomputed neighbour lists used by the aggregation-based models:
/// for each entity, the `(neighbour, relation)` pairs of its incident triples.
#[derive(Debug, Clone)]
pub struct NeighborLists {
    lists: Vec<Vec<(u32, u32)>>,
}

impl NeighborLists {
    /// Builds neighbour lists for a graph.
    pub fn build(kg: &KnowledgeGraph) -> Self {
        let mut lists = vec![Vec::new(); kg.num_entities()];
        for (e, list) in lists.iter_mut().enumerate() {
            let eid = ea_graph::EntityId::from_index(e);
            for (n, t, _) in kg.neighbors(eid) {
                list.push((n.0, t.relation.0));
            }
        }
        Self { lists }
    }

    /// The `(neighbour, relation)` pairs of an entity.
    pub fn of(&self, entity: usize) -> &[(u32, u32)] {
        &self.lists[entity]
    }

    /// Number of entities covered.
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// Whether the graph had no entities.
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }
}

/// Computes aggregated (one-layer GCN-style) embeddings:
/// `out(e) = normalize(base(e) + mean over neighbours of gate(r) ⊙ base(n))`.
///
/// When `gates` is `None` the aggregation is ungated (GCN-Align); with gates
/// it is relation-aware (Dual-AMN).
pub fn aggregate(
    base: &EmbeddingTable,
    neighbors: &NeighborLists,
    gates: Option<&EmbeddingTable>,
) -> EmbeddingTable {
    let dim = base.dim();
    let mut out = EmbeddingTable::zeros(base.rows(), dim);
    let mut acc = vec![0.0f32; dim];
    for e in 0..base.rows() {
        let list = neighbors.of(e);
        acc.copy_from_slice(base.row(e));
        if !list.is_empty() {
            let scale = 1.0 / list.len() as f32;
            for &(n, r) in list {
                let n_row = base.row(n as usize);
                match gates {
                    Some(g) => {
                        let gate = g.row(r as usize);
                        for i in 0..dim {
                            acc[i] += scale * gate[i] * n_row[i];
                        }
                    }
                    None => {
                        vector::add_scaled(&mut acc, n_row, scale);
                    }
                }
            }
        }
        vector::normalize(&mut acc);
        out.row_mut(e).copy_from_slice(&acc);
    }
    out
}

/// Anchor initialisation for the aggregation-based models.
///
/// Seed-aligned entities receive a *shared* random unit vector on both sides
/// (the anchor); all other entities receive only small random noise. After
/// [`propagate`], an entity's representation is dominated by which anchors
/// appear in its multi-hop neighbourhood — the structural signal GCN-based EA
/// models extract — while the noise component breaks ties deterministically.
pub fn anchor_init(
    pair: &KgPair,
    config: &TrainConfig,
    noise_scale: f32,
    rng: &mut ChaCha8Rng,
) -> (EmbeddingTable, EmbeddingTable) {
    let dim = config.dim;
    let mut source = EmbeddingTable::uniform_normalized(pair.source.num_entities(), dim, 1.0, rng);
    let mut target = EmbeddingTable::uniform_normalized(pair.target.num_entities(), dim, 1.0, rng);
    for i in 0..source.rows() {
        vector::scale(source.row_mut(i), noise_scale);
    }
    for i in 0..target.rows() {
        vector::scale(target.row_mut(i), noise_scale);
    }
    let mut anchor = vec![0.0f32; dim];
    for p in pair.seed.iter() {
        for v in anchor.iter_mut() {
            *v = rng.gen_range(-1.0..=1.0);
        }
        vector::normalize(&mut anchor);
        source.row_mut(p.source.index()).copy_from_slice(&anchor);
        target.row_mut(p.target.index()).copy_from_slice(&anchor);
    }
    (source, target)
}

/// Runs `layers` rounds of neighbourhood propagation:
/// `h ← normalize(self_weight · h + mean over neighbours of gate(r) ⊙ h(n))`.
///
/// With the seed anchors merged by [`merge_seed_embeddings`], two rounds are
/// enough for an entity's representation to be dominated by *which anchors it
/// is near*, which is the structural signal the GCN-family models exploit at
/// inference time.
pub fn propagate(
    base: &EmbeddingTable,
    neighbors: &NeighborLists,
    gates: Option<&EmbeddingTable>,
    layers: usize,
    self_weight: f32,
) -> EmbeddingTable {
    let dim = base.dim();
    let mut current = base.clone();
    let mut acc = vec![0.0f32; dim];
    for _ in 0..layers {
        let mut next = EmbeddingTable::zeros(current.rows(), dim);
        for e in 0..current.rows() {
            let list = neighbors.of(e);
            for (a, v) in acc.iter_mut().zip(current.row(e)) {
                *a = v * self_weight;
            }
            if !list.is_empty() {
                let scale = 1.0 / list.len() as f32;
                for &(n, r) in list {
                    let n_row = current.row(n as usize);
                    match gates {
                        Some(g) => {
                            let gate = g.row(r as usize);
                            for i in 0..dim {
                                acc[i] += scale * gate[i] * n_row[i];
                            }
                        }
                        None => {
                            vector::add_scaled(&mut acc, n_row, scale);
                        }
                    }
                }
            }
            vector::normalize(&mut acc);
            next.row_mut(e).copy_from_slice(&acc);
        }
        current = next;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use ea_data::datasets::{load, DatasetName, DatasetScale};
    use ea_embed::NegativeSampler;
    use ea_graph::EntityId;

    #[test]
    fn transe_score_is_zero_for_exact_translation() {
        let h = [1.0, 2.0];
        let r = [0.5, -1.0];
        let t = [1.5, 1.0];
        assert!(transe_score(&h, &r, &t).abs() < 1e-12);
        assert!(transe_score(&h, &r, &[0.0, 0.0]) > 0.0);
    }

    #[test]
    fn transe_epochs_improve_triple_ranking() {
        let pair = load(DatasetName::ZhEn, DatasetScale::Small);
        let config = TrainConfig::fast();
        let mut rng = training_rng(&config);
        let mut state = TranslationState::init(&pair, &config, &mut rng);
        let sampler = NegativeSampler::uniform(pair.source.num_entities());

        // Fraction of triples ranked above a fixed corrupted variant: the
        // quantity the margin loss actually optimises.
        let ranking_accuracy = |ent: &EmbeddingTable, rel: &EmbeddingTable| {
            let n = pair.source.num_entities();
            let correct = pair
                .source
                .triples()
                .iter()
                .enumerate()
                .filter(|(i, t)| {
                    let pos = transe_score(
                        ent.row(t.head.index()),
                        rel.row(t.relation.index()),
                        ent.row(t.tail.index()),
                    );
                    let corrupted_tail = (t.tail.index() + i + 1) % n;
                    let neg = transe_score(
                        ent.row(t.head.index()),
                        rel.row(t.relation.index()),
                        ent.row(corrupted_tail),
                    );
                    pos < neg
                })
                .count();
            correct as f64 / pair.source.num_triples() as f64
        };

        let before = ranking_accuracy(&state.source_entities, &state.source_relations);
        for epoch in 0..20 {
            transe_epoch(
                &pair.source,
                &mut state.source_entities,
                &mut state.source_relations,
                &sampler,
                &config,
                &mut rng,
            );
            if epoch % 5 == 4 {
                state.source_entities.normalize_rows();
            }
        }
        let after = ranking_accuracy(&state.source_entities, &state.source_relations);
        assert!(
            after > before && after > 0.7,
            "TransE epochs should improve triple ranking ({before:.3} -> {after:.3})"
        );
    }

    #[test]
    fn alignment_pull_brings_seed_pairs_closer() {
        let pair = load(DatasetName::ZhEn, DatasetScale::Small);
        let config = TrainConfig::fast();
        let mut rng = training_rng(&config);
        let mut state = TranslationState::init(&pair, &config, &mut rng);
        let avg_dist = |s: &EmbeddingTable, t: &EmbeddingTable| {
            pair.seed
                .iter()
                .map(|p| {
                    vector::squared_distance(s.row(p.source.index()), t.row(p.target.index()))
                        as f64
                })
                .sum::<f64>()
                / pair.seed.len() as f64
        };
        let before = avg_dist(&state.source_entities, &state.target_entities);
        for _ in 0..10 {
            alignment_pull_epoch(
                &pair.seed,
                &mut state.source_entities,
                &mut state.target_entities,
                &config,
            );
        }
        let after = avg_dist(&state.source_entities, &state.target_entities);
        assert!(
            after < before * 0.7,
            "pull should shrink seed distances ({before} -> {after})"
        );
    }

    #[test]
    fn alignment_margin_epoch_separates_negatives() {
        let pair = load(DatasetName::ZhEn, DatasetScale::Small);
        let config = TrainConfig::fast();
        let mut rng = training_rng(&config);
        let mut state = TranslationState::init(&pair, &config, &mut rng);
        let sampler = NegativeSampler::uniform(pair.target.num_entities());
        let avg_dist = |s: &EmbeddingTable, t: &EmbeddingTable| {
            pair.seed
                .iter()
                .map(|p| {
                    vector::squared_distance(s.row(p.source.index()), t.row(p.target.index()))
                        as f64
                })
                .sum::<f64>()
                / pair.seed.len() as f64
        };
        let before = avg_dist(&state.source_entities, &state.target_entities);
        for _ in 0..10 {
            alignment_margin_epoch(
                &pair.seed,
                &mut state.source_entities,
                &mut state.target_entities,
                &sampler,
                &config,
                &mut rng,
            );
        }
        let after = avg_dist(&state.source_entities, &state.target_entities);
        assert!(
            after < before,
            "margin epochs should shrink positive distances"
        );
    }

    #[test]
    fn neighbor_lists_match_graph_neighbors() {
        let pair = load(DatasetName::ZhEn, DatasetScale::Small);
        let lists = NeighborLists::build(&pair.source);
        assert_eq!(lists.len(), pair.source.num_entities());
        assert!(!lists.is_empty());
        for e in pair.source.entity_ids().take(50) {
            assert_eq!(lists.of(e.index()).len(), pair.source.neighbors(e).len());
        }
    }

    #[test]
    fn aggregation_produces_unit_rows_and_mixes_neighbors() {
        let pair = load(DatasetName::ZhEn, DatasetScale::Small);
        let config = TrainConfig::fast();
        let mut rng = training_rng(&config);
        let base = EmbeddingTable::uniform_normalized(
            pair.source.num_entities(),
            config.dim,
            1.0,
            &mut rng,
        );
        let lists = NeighborLists::build(&pair.source);
        let out = aggregate(&base, &lists, None);
        assert_eq!(out.rows(), base.rows());
        // Rows are normalised.
        for e in 0..out.rows().min(100) {
            let n = vector::norm(out.row(e));
            assert!((n - 1.0).abs() < 1e-4 || n < 1e-6);
        }
        // Aggregated embedding differs from the base for entities with neighbours.
        let busy = pair
            .source
            .entity_ids()
            .find(|&e| pair.source.degree(e) > 2)
            .unwrap();
        let cos = vector::cosine(base.row(busy.index()), out.row(busy.index()));
        assert!(cos < 0.999, "aggregation should change the embedding");
    }

    #[test]
    fn gated_aggregation_uses_relation_gates() {
        let mut kg = ea_graph::KnowledgeGraph::new();
        kg.add_triple_by_names("a", "r0", "b");
        let lists = NeighborLists::build(&kg);
        let mut base = EmbeddingTable::zeros(2, 2);
        base.row_mut(0).copy_from_slice(&[1.0, 0.0]);
        base.row_mut(1).copy_from_slice(&[0.0, 1.0]);
        // Gate that zeroes out the neighbour contribution.
        let zero_gate = EmbeddingTable::zeros(1, 2);
        let gated = aggregate(&base, &lists, Some(&zero_gate));
        let a = EntityId(0);
        assert!((vector::cosine(gated.row(a.index()), &[1.0, 0.0]) - 1.0).abs() < 1e-5);
        // Ungated aggregation mixes in the neighbour.
        let ungated = aggregate(&base, &lists, None);
        assert!(vector::cosine(ungated.row(a.index()), &[1.0, 0.0]) < 0.999);
    }
}
