//! GCN-Align: graph-convolutional entity alignment.
//!
//! GCN-Align (Wang et al., EMNLP 2018) was the first EA model built on graph
//! convolutional networks. Entities are represented by aggregating their
//! neighbourhood features with shared convolution weights across the two
//! graphs; seed-aligned entities are trained to have similar aggregated
//! representations. Crucially for ExEA, GCN-Align learns **no relation
//! embeddings** and does not distinguish which relation connects a neighbour
//! — the property the paper repeatedly points to when explaining why
//! GCN-Align benefits the most from relation-conflict resolution (Fig. 6) and
//! why perturbation-based baselines struggle to explain it (Table I).
//!
//! Implementation: seed pairs are anchored to shared vectors
//! ([`crate::training::anchor_init`], the CPU equivalent of sharing GCN
//! weights across graphs), two rounds of ungated mean aggregation produce the
//! structural representations, and a margin-ranking loss with **uniform**
//! negatives fine-tunes the output embeddings for `epochs` rounds.

use crate::config::TrainConfig;
use crate::trained::TrainedAlignment;
use crate::training::{
    alignment_margin_epoch, anchor_init, merge_seed_embeddings, propagate, training_rng,
    NeighborLists,
};
use crate::traits::EaModel;
use ea_embed::NegativeSampler;
use ea_graph::KgPair;

/// The GCN-Align model.
#[derive(Debug, Clone)]
pub struct GcnAlign {
    config: TrainConfig,
}

impl GcnAlign {
    /// Creates a GCN-Align model with the given configuration.
    pub fn new(config: TrainConfig) -> Self {
        config.validate();
        Self { config }
    }

    /// Residual (self-loop) weight used during propagation.
    pub(crate) const SELF_WEIGHT: f32 = 0.3;
    /// Number of propagation layers.
    pub(crate) const LAYERS: usize = 2;
    /// Scale of the non-anchor initial noise.
    pub(crate) const NOISE: f32 = 0.05;
}

impl EaModel for GcnAlign {
    fn name(&self) -> &'static str {
        "GCN-Align"
    }

    fn config(&self) -> &TrainConfig {
        &self.config
    }

    fn train(&self, pair: &KgPair) -> TrainedAlignment {
        let config = &self.config;
        let mut rng = training_rng(config);
        let (source_base, target_base) = anchor_init(pair, config, Self::NOISE, &mut rng);
        let source_neighbors = NeighborLists::build(&pair.source);
        let target_neighbors = NeighborLists::build(&pair.target);

        // Structural representation: two rounds of ungated mean aggregation
        // over the anchored base embeddings.
        let mut source_out = propagate(
            &source_base,
            &source_neighbors,
            None,
            Self::LAYERS,
            Self::SELF_WEIGHT,
        );
        let mut target_out = propagate(
            &target_base,
            &target_neighbors,
            None,
            Self::LAYERS,
            Self::SELF_WEIGHT,
        );

        // Fine-tune the output embeddings with a margin-ranking loss and
        // uniform negatives (GCN-Align has no hard-sample mining).
        let sampler = NegativeSampler::uniform(pair.target.num_entities());
        for _ in 0..config.epochs {
            alignment_margin_epoch(
                &pair.seed,
                &mut source_out,
                &mut target_out,
                &sampler,
                config,
                &mut rng,
            );
            merge_seed_embeddings(&pair.seed, &mut source_out, &mut target_out);
        }
        source_out.normalize_rows();
        target_out.normalize_rows();

        // GCN-Align learns no relation embeddings: ExEA must derive them from
        // entity embeddings (Eq. 1 of the paper).
        TrainedAlignment::new(self.name(), source_out, target_out, None, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ea_data::datasets::{load, DatasetName, DatasetScale};
    use ea_graph::KgSide;

    #[test]
    fn training_is_deterministic_given_seed() {
        let pair = load(DatasetName::ZhEn, DatasetScale::Small);
        let model = GcnAlign::new(TrainConfig::fast());
        let a = model.train(&pair);
        let b = model.train(&pair);
        assert_eq!(
            a.entities(KgSide::Source).data(),
            b.entities(KgSide::Source).data()
        );
    }

    #[test]
    fn training_beats_random_alignment() {
        let pair = load(DatasetName::ZhEn, DatasetScale::Small);
        let trained = GcnAlign::new(TrainConfig::fast()).train(&pair);
        let acc = trained.accuracy(&pair);
        let random_baseline = 1.0 / pair.target.num_entities() as f64;
        assert!(
            acc > random_baseline * 20.0,
            "GCN-Align accuracy {acc} too low"
        );
    }

    #[test]
    fn gcn_align_has_no_relation_embeddings() {
        let pair = load(DatasetName::ZhEn, DatasetScale::Small);
        let trained = GcnAlign::new(TrainConfig::fast()).train(&pair);
        assert!(!trained.has_relation_embeddings());
        assert_eq!(trained.model_name(), "GCN-Align");
    }

    #[test]
    fn seed_pairs_end_up_nearly_identical() {
        let pair = load(DatasetName::ZhEn, DatasetScale::Small);
        let trained = GcnAlign::new(TrainConfig::fast()).train(&pair);
        for p in pair.seed.iter().take(20) {
            assert!(
                trained.entity_similarity(p.source, p.target) > 0.99,
                "seed pair {p} should be anchored"
            );
        }
    }
}
