//! Shared training hyper-parameters.

use ea_embed::CandidateSearch;

/// Hyper-parameters shared by all EA models in this crate.
///
/// The defaults are tuned for the `Small`/`Bench` synthetic dataset scales so
/// that a full table of experiments finishes on a laptop CPU. Users running
/// paper-scale datasets should raise `epochs` and `dim`.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Margin of the ranking losses.
    pub margin: f32,
    /// Number of negative samples per positive example.
    pub negative_samples: usize,
    /// Weight of the alignment loss relative to the triple loss.
    pub alignment_weight: f32,
    /// RNG seed. Training is fully deterministic given this seed.
    pub seed: u64,
    /// Candidate-generation strategy used by training-time nearest-neighbour
    /// sweeps (currently Dual-AMN's mutual-anchor mining): the exact blocked
    /// scan, the IVF approximate pre-filter (optionally IVF-SQ), the SQ8
    /// quantized scan, or the sharded scatter-gather engine for corpora
    /// where the exact O(n_s·n_t) sweep is the bottleneck.
    pub candidate_search: CandidateSearch,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            dim: 32,
            epochs: 60,
            learning_rate: 0.05,
            margin: 1.0,
            negative_samples: 4,
            alignment_weight: 2.0,
            seed: 17,
            // Exact unless the EXEA_CANDIDATE_SEARCH override (CI's hook for
            // running the whole pipeline on an approximate engine) is set.
            candidate_search: CandidateSearch::default_from_env(),
        }
    }
}

impl TrainConfig {
    /// A configuration with fewer epochs and a smaller dimension, used by
    /// unit tests that only need the training loop to run, not to converge.
    pub fn fast() -> Self {
        Self {
            dim: 16,
            epochs: 40,
            ..Self::default()
        }
    }

    /// Validates the configuration, panicking on nonsensical values.
    pub fn validate(&self) {
        assert!(self.dim >= 2, "embedding dimension must be at least 2");
        assert!(self.epochs >= 1, "need at least one epoch");
        assert!(self.learning_rate > 0.0, "learning rate must be positive");
        assert!(self.margin > 0.0, "margin must be positive");
        assert!(
            self.negative_samples >= 1,
            "need at least one negative sample"
        );
    }

    /// Returns a copy with a different RNG seed (used to check that training
    /// is seed-deterministic but seed-sensitive).
    pub fn with_seed(&self, seed: u64) -> Self {
        Self {
            seed,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        TrainConfig::default().validate();
        TrainConfig::fast().validate();
    }

    #[test]
    fn fast_config_is_cheaper_than_default() {
        let fast = TrainConfig::fast();
        let default = TrainConfig::default();
        assert!(fast.epochs < default.epochs);
        assert!(fast.dim < default.dim);
    }

    #[test]
    fn with_seed_changes_only_the_seed() {
        let base = TrainConfig::default();
        let other = base.with_seed(99);
        assert_eq!(other.dim, base.dim);
        assert_eq!(other.epochs, base.epochs);
        assert_ne!(other.seed, base.seed);
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn invalid_dimension_is_rejected() {
        TrainConfig {
            dim: 1,
            ..TrainConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn invalid_learning_rate_is_rejected() {
        TrainConfig {
            learning_rate: -0.1,
            ..TrainConfig::default()
        }
        .validate();
    }
}
