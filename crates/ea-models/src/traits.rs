//! The model-agnostic training interface.

use crate::config::TrainConfig;
use crate::trained::TrainedAlignment;
use crate::{AlignE, DualAmn, GcnAlign, MTransE};
use ea_graph::KgPair;

/// An embedding-based entity-alignment model.
///
/// A model is a *recipe*: hyper-parameters plus a training procedure. Calling
/// [`EaModel::train`] on a [`KgPair`] produces a [`TrainedAlignment`]
/// artifact. Training must be deterministic given the model's configuration,
/// because the fidelity protocol retrains the model on a reduced dataset and
/// compares predictions.
pub trait EaModel {
    /// The model's display name (as used in the paper's tables).
    fn name(&self) -> &'static str;

    /// Trains the model on a KG pair and returns the embedding artifact.
    fn train(&self, pair: &KgPair) -> TrainedAlignment;

    /// The training configuration in use.
    fn config(&self) -> &TrainConfig;
}

/// The four models evaluated in the paper, as a value-level enum so that
/// benchmark harnesses can iterate over them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// MTransE: translation-based, uniform negatives.
    MTransE,
    /// AlignE: translation-based, hard negatives and limit-based alignment loss.
    AlignE,
    /// GCN-Align: aggregation-based, no relation embeddings.
    GcnAlign,
    /// Dual-AMN: relation-gated aggregation, hard negatives.
    DualAmn,
}

impl ModelKind {
    /// All four models, in the order the paper's tables list them.
    pub fn all() -> [ModelKind; 4] {
        [
            ModelKind::MTransE,
            ModelKind::AlignE,
            ModelKind::GcnAlign,
            ModelKind::DualAmn,
        ]
    }

    /// Display name matching the paper.
    pub fn label(&self) -> &'static str {
        match self {
            ModelKind::MTransE => "MTransE",
            ModelKind::AlignE => "AlignE",
            ModelKind::GcnAlign => "GCN-Align",
            ModelKind::DualAmn => "Dual-AMN",
        }
    }

    /// Whether the model family is translation (TransE) based.
    pub fn is_translation_based(&self) -> bool {
        matches!(self, ModelKind::MTransE | ModelKind::AlignE)
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Builds a boxed model of the given kind with the given configuration.
pub fn build_model(kind: ModelKind, config: TrainConfig) -> Box<dyn EaModel> {
    match kind {
        ModelKind::MTransE => Box::new(MTransE::new(config)),
        ModelKind::AlignE => Box::new(AlignE::new(config)),
        ModelKind::GcnAlign => Box::new(GcnAlign::new(config)),
        ModelKind::DualAmn => Box::new(DualAmn::new(config)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_kind_labels_match_paper() {
        assert_eq!(ModelKind::MTransE.label(), "MTransE");
        assert_eq!(ModelKind::AlignE.label(), "AlignE");
        assert_eq!(ModelKind::GcnAlign.label(), "GCN-Align");
        assert_eq!(ModelKind::DualAmn.label(), "Dual-AMN");
        assert_eq!(ModelKind::all().len(), 4);
        assert_eq!(ModelKind::DualAmn.to_string(), "Dual-AMN");
    }

    #[test]
    fn family_classification() {
        assert!(ModelKind::MTransE.is_translation_based());
        assert!(ModelKind::AlignE.is_translation_based());
        assert!(!ModelKind::GcnAlign.is_translation_based());
        assert!(!ModelKind::DualAmn.is_translation_based());
    }

    #[test]
    fn build_model_produces_matching_names() {
        for kind in ModelKind::all() {
            let model = build_model(kind, TrainConfig::fast());
            assert_eq!(model.name(), kind.label());
            assert_eq!(model.config().dim, TrainConfig::fast().dim);
        }
    }
}
