//! MTransE: multilingual knowledge graph embeddings for entity alignment.
//!
//! MTransE (Chen et al., IJCAI 2017) is the pioneering translation-based EA
//! model. Each knowledge graph is embedded with TransE (relations are
//! translations from head to tail) and an alignment component calibrates the
//! two spaces so that seed-aligned entities end up close. This implementation
//! uses the distance-based axis-calibration variant: the alignment loss
//! directly minimises the distance between the embeddings of seed pairs.
//!
//! MTransE uses *uniform* negative sampling and no mechanism to separate
//! similar entities, which is why the paper finds it benefits the most from
//! ExEA's conflict repair (Table III).

use crate::config::TrainConfig;
use crate::trained::TrainedAlignment;
use crate::training::{alignment_pull_epoch, training_rng, transe_epoch, TranslationState};
use crate::traits::EaModel;
use ea_embed::NegativeSampler;
use ea_graph::KgPair;

/// The MTransE model.
#[derive(Debug, Clone)]
pub struct MTransE {
    config: TrainConfig,
}

impl MTransE {
    /// Creates an MTransE model with the given configuration.
    pub fn new(config: TrainConfig) -> Self {
        config.validate();
        Self { config }
    }
}

impl EaModel for MTransE {
    fn name(&self) -> &'static str {
        "MTransE"
    }

    fn config(&self) -> &TrainConfig {
        &self.config
    }

    fn train(&self, pair: &KgPair) -> TrainedAlignment {
        let mut rng = training_rng(&self.config);
        let mut state = TranslationState::init(pair, &self.config, &mut rng);
        let source_sampler = NegativeSampler::uniform(pair.source.num_entities());
        let target_sampler = NegativeSampler::uniform(pair.target.num_entities());

        for epoch in 0..self.config.epochs {
            transe_epoch(
                &pair.source,
                &mut state.source_entities,
                &mut state.source_relations,
                &source_sampler,
                &self.config,
                &mut rng,
            );
            transe_epoch(
                &pair.target,
                &mut state.target_entities,
                &mut state.target_relations,
                &target_sampler,
                &self.config,
                &mut rng,
            );
            alignment_pull_epoch(
                &pair.seed,
                &mut state.source_entities,
                &mut state.target_entities,
                &self.config,
            );
            // Periodic row normalisation keeps the margin meaningful, as in
            // the original TransE training procedure; the space calibration is
            // refreshed at the same cadence by snapping seed pairs together.
            if epoch % 5 == 4 {
                crate::training::merge_seed_embeddings(
                    &pair.seed,
                    &mut state.source_entities,
                    &mut state.target_entities,
                );
                state.source_entities.normalize_rows();
                state.target_entities.normalize_rows();
            }
        }
        state.source_entities.normalize_rows();
        state.target_entities.normalize_rows();

        TrainedAlignment::new(
            self.name(),
            state.source_entities,
            state.target_entities,
            Some(state.source_relations),
            Some(state.target_relations),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ea_data::datasets::{load, DatasetName, DatasetScale};

    #[test]
    fn training_is_deterministic_given_seed() {
        let pair = load(DatasetName::ZhEn, DatasetScale::Small);
        let model = MTransE::new(TrainConfig::fast());
        let a = model.train(&pair);
        let b = model.train(&pair);
        assert_eq!(
            a.entities(ea_graph::KgSide::Source).data(),
            b.entities(ea_graph::KgSide::Source).data()
        );
        let other = MTransE::new(TrainConfig::fast().with_seed(99));
        let c = other.train(&pair);
        assert_ne!(
            a.entities(ea_graph::KgSide::Source).data(),
            c.entities(ea_graph::KgSide::Source).data()
        );
    }

    #[test]
    fn training_beats_random_alignment() {
        let pair = load(DatasetName::ZhEn, DatasetScale::Small);
        let model = MTransE::new(TrainConfig::fast());
        let trained = model.train(&pair);
        let acc = trained.accuracy(&pair);
        let random_baseline = 1.0 / pair.target.num_entities() as f64;
        assert!(
            acc > random_baseline * 10.0,
            "MTransE accuracy {acc} should clearly beat random {random_baseline}"
        );
    }

    #[test]
    fn artifact_exposes_relation_embeddings() {
        let pair = load(DatasetName::ZhEn, DatasetScale::Small);
        let trained = MTransE::new(TrainConfig::fast()).train(&pair);
        assert!(trained.has_relation_embeddings());
        assert_eq!(trained.model_name(), "MTransE");
        assert_eq!(trained.dim(), TrainConfig::fast().dim);
    }
}
