//! Temporary diagnostic harness (will be replaced by calibrated tests).
use ea_data::datasets::{load, DatasetName, DatasetScale};
use ea_models::{build_model, ModelKind, TrainConfig};

#[test]
#[ignore]
fn diag_accuracy() {
    let pair = load(DatasetName::ZhEn, DatasetScale::Small);
    println!("{}", pair.stats());
    for epochs in [40usize, 150, 250] {
        for kind in ModelKind::all() {
            let config = TrainConfig {
                dim: 32,
                epochs,
                ..TrainConfig::default()
            };
            let start = std::time::Instant::now();
            let trained = build_model(kind, config).train(&pair);
            let acc = trained.accuracy(&pair);
            println!(
                "epochs={epochs:3} {kind:<10} acc={acc:.3} time={:?}",
                start.elapsed()
            );
        }
    }
}
