//! Chaos suite: the daemon under deterministic fault injection.
//!
//! The invariant under test, from every angle: **the daemon always answers
//! or rejects with a typed error — it never hangs, never corrupts a
//! result, never dies.** Faults come from two directions: hostile bytes on
//! the wire (torn frames, garbage, oversized prefixes, mid-request
//! disconnects) and a [`FaultPlan`] injecting failures inside the server
//! itself (failed reads/writes, slow reads, torn response writes, handler
//! panics). Hangs are ruled out structurally: every client call carries a
//! timeout and every test joins its threads, so a wedged daemon fails the
//! suite instead of wedging it.

use exea_serve::protocol::{self, Request, Response, Tier};
use exea_serve::{
    Client, ClientError, ConnFaults, Endpoint, Engine, EngineConfig, FaultPlan, Server,
    ServerConfig, ServerHandle,
};
use std::io::Write;
use std::net::TcpStream;
use std::sync::OnceLock;
use std::time::Duration;

fn engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(|| Engine::build(&EngineConfig::default()).expect("engine builds"))
}

/// A dedicated engine for the mutation storm (the shared one must stay
/// immutable for the other tests' bit-identity probes). Tiny seal/compact
/// thresholds so the storm crosses many seal → compact cycles.
fn lsm_engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        Engine::build(&EngineConfig {
            lsm_seal_rows: 8,
            compact_segments: 2,
            ..EngineConfig::default()
        })
        .expect("lsm engine builds")
    })
}

fn start(config: ServerConfig) -> (ServerHandle, Endpoint, std::net::SocketAddr) {
    let handle = Server::start(
        engine(),
        &[Endpoint::Tcp("127.0.0.1:0".to_string())],
        config,
    )
    .expect("server starts");
    let addr = handle.tcp_addr().expect("tcp endpoint bound");
    (handle, Endpoint::Tcp(addr.to_string()), addr)
}

fn sample_pair() -> (u32, u32) {
    let p = engine().sample_pair().expect("model predicts something");
    (p.source.0, p.target.0)
}

/// The liveness probe every chaos test ends with: after whatever abuse, a
/// clean connection still gets a correct, bit-identical answer.
fn assert_daemon_healthy(endpoint: &Endpoint) {
    assert_daemon_healthy_on(engine(), endpoint);
}

/// [`assert_daemon_healthy`] against an explicit engine (the mutation
/// storm runs its own).
fn assert_daemon_healthy_on(engine: &'static Engine, endpoint: &Endpoint) {
    let mut c = Client::connect(endpoint, Duration::from_secs(10)).expect("daemon still accepts");
    let p = engine.sample_pair().expect("model predicts something");
    let (source, target) = (p.source.0, p.target.0);
    match c
        .call(Request::Explain { source, target }, 10_000)
        .expect("daemon still serves")
    {
        Response::Explain { confidence, .. } => {
            let direct = &engine.explain_batch(&[engine.pair_of(source, target)])[0];
            assert_eq!(
                confidence.to_bits(),
                direct.confidence().to_bits(),
                "post-chaos answers stay bit-identical"
            );
        }
        other => panic!("expected Explain, got {other:?}"),
    }
}

#[test]
fn torn_request_frames_and_disconnects_leave_the_daemon_serving() {
    let (handle, endpoint, addr) = start(ServerConfig::default());

    // A frame that promises 100 bytes and delivers 3, then vanishes.
    {
        let mut raw = TcpStream::connect(addr).expect("connect");
        raw.write_all(&100u32.to_le_bytes()).expect("len prefix");
        raw.write_all(&[1, 2, 3]).expect("partial payload");
        // Dropped here: mid-request disconnect.
    }
    // A connection that sends only half a length prefix.
    {
        let mut raw = TcpStream::connect(addr).expect("connect");
        raw.write_all(&[7u8, 0]).expect("half a prefix");
    }
    // An instant disconnect with no bytes at all.
    drop(TcpStream::connect(addr).expect("connect"));

    // Give the connection threads a moment to classify the carnage.
    std::thread::sleep(Duration::from_millis(100));
    assert_daemon_healthy(&endpoint);
    let stats = handle.stats();
    assert!(
        stats.transport_faults >= 1,
        "torn frames are counted: {stats:?}"
    );
    assert_eq!(stats.panics, 0);
    handle.shutdown();
}

#[test]
fn garbage_and_oversized_frames_get_typed_rejections() {
    let (handle, endpoint, addr) = start(ServerConfig::default());

    // Well-framed garbage: correct length prefix, meaningless payload.
    {
        let mut raw = TcpStream::connect(addr).expect("connect");
        raw.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let garbage = [0xAAu8; 32];
        protocol::write_frame(&mut raw, &garbage).expect("framed garbage");
        let reply = protocol::read_frame(&mut raw, protocol::MAX_FRAME, Duration::from_secs(5))
            .expect("server answers")
            .expect("a frame, not EOF");
        let frame = protocol::decode_response(&reply).expect("typed response");
        assert!(
            matches!(frame.response, Response::BadRequest { .. }),
            "garbage is a BadRequest, got {:?}",
            frame.response
        );
    }

    // An oversized length prefix: typed rejection, then the connection is
    // closed (the stream position is unrecoverable).
    {
        let mut raw = TcpStream::connect(addr).expect("connect");
        raw.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        raw.write_all(&(protocol::MAX_FRAME + 1).to_le_bytes())
            .expect("huge prefix");
        let reply = protocol::read_frame(&mut raw, protocol::MAX_FRAME, Duration::from_secs(5))
            .expect("server answers before closing")
            .expect("a frame, not EOF");
        let frame = protocol::decode_response(&reply).expect("typed response");
        assert!(matches!(frame.response, Response::BadRequest { .. }));
        // And then EOF — not a hang, not garbage.
        match protocol::read_frame(&mut raw, protocol::MAX_FRAME, Duration::from_secs(5)) {
            Err(protocol::FrameError::Closed) => {}
            other => panic!("expected a clean close after the rejection, got {other:?}"),
        }
    }

    assert_daemon_healthy(&endpoint);
    let stats = handle.stats();
    assert!(stats.bad_requests >= 2);
    assert_eq!(stats.panics, 0);
    handle.shutdown();
}

#[test]
fn fault_plan_matrix_every_injected_fault_yields_a_typed_outcome() {
    // Connections 0..4 get, in accept order: a failed read, a slow read
    // (under the stall budget), a failed response write, a torn response
    // write, and a handler panic. Connection 5+ run clean.
    let plan = FaultPlan {
        connections: vec![
            ConnFaults {
                fail_read_at: Some(0),
                ..ConnFaults::default()
            },
            ConnFaults {
                read_delay: Some(Duration::from_millis(30)),
                ..ConnFaults::default()
            },
            ConnFaults {
                fail_write_at: Some(0),
                ..ConnFaults::default()
            },
            ConnFaults {
                tear_write_after: Some(5),
                ..ConnFaults::default()
            },
            ConnFaults {
                panic_in_handler: true,
                ..ConnFaults::default()
            },
        ],
        batch_delay: None,
    };
    let config = ServerConfig {
        fault: plan,
        stall_budget: Duration::from_secs(2),
        ..ServerConfig::default()
    };
    let (handle, endpoint, _) = start(config);
    let (source, target) = sample_pair();

    // Conn 0: the server's first read fails -> server drops the
    // connection; the client sees a typed transport error, never a hang.
    {
        let mut c = Client::connect(&endpoint, Duration::from_secs(5)).expect("connect");
        match c.call(Request::Explain { source, target }, 5_000) {
            Err(ClientError::NoReply | ClientError::Transport(_)) => {}
            other => panic!("conn 0 (failed read): expected a typed client error, got {other:?}"),
        }
    }
    // Conn 1: slow reads under the stall budget — served correctly anyway.
    {
        let mut c = Client::connect(&endpoint, Duration::from_secs(10)).expect("connect");
        match c.call(Request::Explain { source, target }, 10_000) {
            Ok(Response::Explain { confidence, .. }) => {
                let direct = &engine().explain_batch(&[engine().pair_of(source, target)])[0];
                assert_eq!(confidence.to_bits(), direct.confidence().to_bits());
            }
            other => panic!("conn 1 (slow read): expected Explain, got {other:?}"),
        }
    }
    // Conn 2: the response write fails server-side -> client sees EOF.
    {
        let mut c = Client::connect(&endpoint, Duration::from_secs(5)).expect("connect");
        match c.call(Request::Health, 0) {
            Err(ClientError::NoReply | ClientError::Transport(_)) => {}
            other => panic!("conn 2 (failed write): expected a typed client error, got {other:?}"),
        }
    }
    // Conn 3: the response is torn after 5 bytes -> typed torn frame.
    {
        let mut c = Client::connect(&endpoint, Duration::from_secs(5)).expect("connect");
        match c.call(Request::Health, 0) {
            Err(ClientError::Transport(_) | ClientError::NoReply) => {}
            other => panic!("conn 3 (torn write): expected a typed client error, got {other:?}"),
        }
    }
    // Conn 4: the handler panics -> panic isolation turns it into a typed
    // Internal response on a live connection.
    {
        let mut c = Client::connect(&endpoint, Duration::from_secs(5)).expect("connect");
        match c.call(Request::Health, 0) {
            Ok(Response::Internal { message }) => {
                assert!(message.contains("panicked"), "got: {message}")
            }
            other => panic!("conn 4 (handler panic): expected Internal, got {other:?}"),
        }
    }

    // After the whole matrix, the daemon is intact and correct.
    assert_daemon_healthy(&endpoint);
    let stats = handle.stats();
    assert!(stats.panics >= 1, "the injected panic was counted");
    assert!(
        stats.transport_faults >= 2,
        "injected I/O faults were counted"
    );
    handle.shutdown();
}

#[test]
fn saturation_every_request_gets_a_typed_outcome() {
    let config = ServerConfig {
        queue_capacity: 2,
        max_batch: 2,
        batch_workers: 1,
        retry_after_ms: 5,
        fault: FaultPlan {
            batch_delay: Some(Duration::from_millis(30)),
            ..FaultPlan::default()
        },
        ..ServerConfig::default()
    };
    let (handle, endpoint, _) = start(config);
    let (source, target) = sample_pair();

    // 24 concurrent clients against a 2-slot queue with a slow worker.
    // Joining every thread bounds wall-time: a single hang fails the test.
    let mut threads = Vec::new();
    for _ in 0..24 {
        let endpoint = endpoint.clone();
        threads.push(std::thread::spawn(move || {
            let mut c =
                Client::connect(&endpoint, Duration::from_secs(15)).expect("client connects");
            c.call(Request::Explain { source, target }, 10_000)
        }));
    }
    let mut served = 0usize;
    let mut rejected = 0usize;
    for t in threads {
        match t.join().expect("client thread survives") {
            Ok(Response::Explain { confidence, .. }) => {
                let direct = &engine().explain_batch(&[engine().pair_of(source, target)])[0];
                assert_eq!(
                    confidence.to_bits(),
                    direct.confidence().to_bits(),
                    "served answers stay bit-identical under saturation"
                );
                served += 1;
            }
            Ok(Response::Overloaded { retry_after_ms }) => {
                assert_eq!(retry_after_ms, 5);
                rejected += 1;
            }
            Ok(Response::DeadlineExceeded) => rejected += 1,
            other => panic!("expected a typed outcome, got {other:?}"),
        }
    }
    assert_eq!(served + rejected, 24, "every request accounted for");
    assert!(served >= 1, "someone was served");
    assert!(rejected >= 1, "backpressure engaged");
    let stats = handle.stats();
    assert_eq!(stats.panics, 0);
    handle.shutdown();
}

#[test]
fn shutdown_under_load_never_hangs_and_types_every_outcome() {
    let config = ServerConfig {
        fault: FaultPlan {
            batch_delay: Some(Duration::from_millis(50)),
            ..FaultPlan::default()
        },
        drain_deadline: Duration::from_secs(5),
        ..ServerConfig::default()
    };
    let (handle, endpoint, _) = start(config);
    let (source, target) = sample_pair();

    let mut threads = Vec::new();
    for _ in 0..8 {
        let endpoint = endpoint.clone();
        threads.push(std::thread::spawn(move || {
            let mut c = match Client::connect(&endpoint, Duration::from_secs(10)) {
                Ok(c) => c,
                // Connecting after the listener died is a typed outcome too.
                Err(ClientError::Connect(_)) => return None,
                Err(e) => panic!("unexpected connect failure: {e}"),
            };
            Some(c.call(Request::Explain { source, target }, 5_000))
        }));
    }
    std::thread::sleep(Duration::from_millis(30));
    let report = handle.shutdown();

    for t in threads {
        match t.join().expect("client thread survives") {
            None => {}
            Some(Ok(
                Response::Explain { .. }
                | Response::ShuttingDown
                | Response::Overloaded { .. }
                | Response::DeadlineExceeded,
            )) => {}
            Some(Err(ClientError::NoReply | ClientError::Transport(_))) => {}
            Some(other) => panic!("expected a typed outcome across shutdown, got {other:?}"),
        }
    }
    // The drain itself is bounded: either it finished or the deadline
    // kicked in and queued work was answered ShuttingDown — both are fine,
    // the test completing at all proves no hang.
    let _ = report;
}

#[test]
fn mutation_storm_during_seals_and_compactions_loses_no_requests() {
    // Concurrent inserts, removes, and full-tier predicts against tiny
    // seal/compact thresholds, with slow-read faults on some connections:
    // the storm crosses many seal → compact cycles while queries are in
    // flight, and the invariant is total accounting — every single request
    // gets a typed response (zero lost, zero hangs, zero panics).
    let engine = lsm_engine();
    let plan = FaultPlan {
        connections: vec![
            ConnFaults {
                read_delay: Some(Duration::from_millis(2)),
                ..ConnFaults::default()
            },
            ConnFaults::default(),
        ],
        batch_delay: None,
    };
    let handle = Server::start(
        engine,
        &[Endpoint::Tcp("127.0.0.1:0".to_string())],
        ServerConfig {
            fault: plan,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = handle.tcp_addr().expect("tcp endpoint bound");
    let endpoint = Endpoint::Tcp(addr.to_string());
    let baseline_rows = engine.live_rows() as u64;
    let dim = engine.dim();

    // 4 writer threads × 24 mutations each, interleaved with 2 reader
    // threads hammering full-tier predicts. Writers insert into disjoint
    // entity ranges and remove half of what they insert, so the final
    // corpus state is exactly predictable.
    let mut threads = Vec::new();
    for w in 0..4u32 {
        let endpoint = endpoint.clone();
        threads.push(std::thread::spawn(move || {
            let mut c =
                Client::connect(&endpoint, Duration::from_secs(15)).expect("writer connects");
            let base = 1_000_000 + w * 1_000;
            let mut answered = 0usize;
            for i in 0..24u32 {
                let entity = base + i;
                let vector: Vec<f32> = (0..dim)
                    .map(|d| ((u64::from(entity) * 31 + d as u64) % 17) as f32 - 8.0)
                    .collect();
                match c
                    .call(Request::Insert { entity, vector }, 10_000)
                    .expect("insert gets a typed response")
                {
                    Response::Insert { .. } => answered += 1,
                    other => panic!("expected Insert, got {other:?}"),
                }
                if i % 2 == 1 {
                    match c
                        .call(Request::Remove { entity }, 10_000)
                        .expect("remove gets a typed response")
                    {
                        Response::Remove { existed, .. } => {
                            assert!(existed, "the row just inserted was live");
                            answered += 1;
                        }
                        other => panic!("expected Remove, got {other:?}"),
                    }
                }
            }
            answered
        }));
    }
    for _ in 0..2 {
        let endpoint = endpoint.clone();
        threads.push(std::thread::spawn(move || {
            let mut c =
                Client::connect(&endpoint, Duration::from_secs(15)).expect("reader connects");
            let mut answered = 0usize;
            for i in 0..48u32 {
                match c
                    .call(
                        Request::Predict {
                            source: i % 4,
                            k: 10,
                            tier: Some(Tier::Full),
                        },
                        10_000,
                    )
                    .expect("predict gets a typed response")
                {
                    Response::Predict { candidates, .. } => {
                        assert!(!candidates.is_empty(), "the corpus is never empty");
                        answered += 1;
                    }
                    other => panic!("expected Predict, got {other:?}"),
                }
            }
            answered
        }));
    }
    let answered: usize = threads
        .into_iter()
        .map(|t| t.join().expect("storm thread survives"))
        .sum();
    assert_eq!(
        answered,
        4 * (24 + 12) + 2 * 48,
        "every storm request was answered"
    );

    // Writers inserted 24 each and removed the odd half: 12 survivors per
    // writer remain live, on top of the startup corpus.
    assert_eq!(engine.live_rows() as u64, baseline_rows + 4 * 12);
    // The storm genuinely crossed seal/compact cycles (96 inserts against
    // an 8-row seal budget), and nothing panicked on the way.
    let stats = handle.stats();
    assert_eq!(stats.panics, 0);
    assert_eq!(stats.bad_requests, 0);
    assert_daemon_healthy_on(engine, &endpoint);
    handle.shutdown();
}

#[test]
fn fault_plans_are_deterministic_across_runs() {
    // The same plan against two fresh daemons injects the same faults into
    // the same connections — the property that makes chaos failures
    // replayable.
    for _ in 0..2 {
        let plan = FaultPlan {
            connections: vec![ConnFaults {
                panic_in_handler: true,
                ..ConnFaults::default()
            }],
            batch_delay: None,
        };
        let config = ServerConfig {
            fault: plan,
            ..ServerConfig::default()
        };
        let (handle, endpoint, _) = start(config);
        let mut c = Client::connect(&endpoint, Duration::from_secs(5)).expect("connect");
        match c.call(Request::Health, 0) {
            Ok(Response::Internal { .. }) => {}
            other => panic!("expected the injected panic every run, got {other:?}"),
        }
        assert_daemon_healthy(&endpoint);
        assert_eq!(handle.stats().panics, 1);
        handle.shutdown();
    }
}
