//! End-to-end daemon tests over real sockets.
//!
//! One warm engine is shared process-wide (training happens once); every
//! test starts its own daemon on an ephemeral port so tests run in
//! parallel without interfering.

use exea_serve::protocol::{Request, Response, Tier};
use exea_serve::{
    Client, Endpoint, Engine, EngineConfig, FaultPlan, RetryClient, RetryPolicy, Server,
    ServerConfig, ServerHandle,
};
use std::sync::OnceLock;
use std::time::Duration;

fn engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(|| Engine::build(&EngineConfig::default()).expect("engine builds"))
}

/// A second engine reserved for mutation tests: the shared one must stay
/// immutable or the predict-parity tests above would race its live corpus.
/// Tiny seal/compact thresholds so a handful of wire inserts exercises the
/// full seal → compact cycle.
fn lsm_engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        Engine::build(&EngineConfig {
            lsm_seal_rows: 4,
            compact_segments: 2,
            ..EngineConfig::default()
        })
        .expect("lsm engine builds")
    })
}

fn start(config: ServerConfig) -> (ServerHandle, Endpoint) {
    let handle = Server::start(
        engine(),
        &[Endpoint::Tcp("127.0.0.1:0".to_string())],
        config,
    )
    .expect("server starts");
    let addr = handle.tcp_addr().expect("tcp endpoint bound");
    (handle, Endpoint::Tcp(addr.to_string()))
}

fn client(endpoint: &Endpoint) -> Client {
    Client::connect(endpoint, Duration::from_secs(10)).expect("client connects")
}

/// A few known-good pairs (model predictions) to explain/verify.
fn sample_pairs(n: usize) -> Vec<(u32, u32)> {
    engine()
        .exea()
        .predictions()
        .iter()
        .take(n)
        .map(|p| (p.source.0, p.target.0))
        .collect()
}

#[test]
fn health_and_stats_answer_with_typed_replies() {
    let (handle, endpoint) = start(ServerConfig::default());
    let mut c = client(&endpoint);
    match c.call(Request::Health, 0).expect("health answers") {
        Response::Health {
            draining,
            tier,
            queue_depth,
            ..
        } => {
            assert!(!draining);
            assert_eq!(tier, Tier::Full, "idle daemon serves at the top tier");
            assert_eq!(queue_depth, 0);
        }
        other => panic!("expected Health, got {other:?}"),
    }
    match c.call(Request::Stats, 0).expect("stats answers") {
        Response::Stats(stats) => assert_eq!(stats.connections, 1),
        other => panic!("expected Stats, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn predict_is_bit_identical_to_the_engine_and_tier_tagged() {
    let (handle, endpoint) = start(ServerConfig::default());
    let mut c = client(&endpoint);
    for source in [0u32, 1, 7] {
        let served = match c
            .call(
                Request::Predict {
                    source,
                    k: 10,
                    tier: None,
                },
                0,
            )
            .expect("predict answers")
        {
            Response::Predict { tier, candidates } => {
                assert_eq!(tier, Tier::Full, "idle load serves full tier");
                candidates
            }
            other => panic!("expected Predict, got {other:?}"),
        };
        let direct = engine().predict(source, 10, Tier::Full);
        assert_eq!(served.len(), direct.len());
        for (s, d) in served.iter().zip(&direct) {
            assert_eq!(s.target, d.target);
            assert_eq!(
                s.score.to_bits(),
                d.score.to_bits(),
                "served score must be bit-identical to the engine's"
            );
        }
    }
    // Explicit tier overrides are honoured and tagged.
    for tier in [Tier::Partial, Tier::Sq8] {
        match c
            .call(
                Request::Predict {
                    source: 0,
                    k: 5,
                    tier: Some(tier),
                },
                0,
            )
            .expect("tiered predict answers")
        {
            Response::Predict { tier: got, .. } => assert_eq!(got, tier),
            other => panic!("expected Predict, got {other:?}"),
        }
    }
    handle.shutdown();
}

#[test]
fn explain_and_verify_are_bit_identical_to_the_pipeline() {
    let (handle, endpoint) = start(ServerConfig::default());
    let mut c = client(&endpoint);
    let pairs = sample_pairs(4);
    assert!(!pairs.is_empty(), "the model predicts at least one pair");

    for &(source, target) in &pairs {
        let (confidence, strong, triples) = match c
            .call(Request::Explain { source, target }, 0)
            .expect("explain")
        {
            Response::Explain {
                confidence,
                has_strong_edges,
                num_triples,
            } => (confidence, has_strong_edges, num_triples),
            other => panic!("expected Explain, got {other:?}"),
        };
        let direct = &engine().explain_batch(&[engine().pair_of(source, target)])[0];
        assert_eq!(
            confidence.to_bits(),
            direct.confidence().to_bits(),
            "served confidence must be bit-identical to the pipeline's"
        );
        assert_eq!(strong, direct.adg.has_strong_edges());
        assert_eq!(triples as usize, direct.explanation.num_triples());
    }

    let verdicts = match c
        .call(
            Request::Verify {
                pairs: pairs.clone(),
            },
            0,
        )
        .expect("verify")
    {
        Response::Verify { verdicts } => verdicts,
        other => panic!("expected Verify, got {other:?}"),
    };
    let direct_pairs: Vec<_> = pairs.iter().map(|&(s, t)| engine().pair_of(s, t)).collect();
    let direct = engine().score_batch(&direct_pairs);
    let beta = engine().beta();
    assert_eq!(verdicts.len(), direct.len());
    for ((accepted, confidence), d) in verdicts.iter().zip(&direct) {
        assert_eq!(confidence.to_bits(), d.confidence.to_bits());
        assert_eq!(*accepted, d.has_strong_edges && d.confidence >= beta);
    }
    handle.shutdown();
}

#[test]
fn concurrent_batched_serving_matches_sequential_bit_for_bit() {
    let config = ServerConfig {
        max_batch: 8,
        batch_workers: 2,
        ..ServerConfig::default()
    };
    let (handle, endpoint) = start(config);
    let pairs = sample_pairs(8);
    assert!(pairs.len() >= 2, "need a few predictions to batch");

    // Hammer the daemon from many threads so requests genuinely coalesce
    // into admission batches, then compare every reply to the sequential
    // pipeline result for the same pair.
    let mut threads = Vec::new();
    for round in 0..4 {
        for &(source, target) in &pairs {
            let endpoint = endpoint.clone();
            threads.push(std::thread::spawn(move || {
                let mut c =
                    Client::connect(&endpoint, Duration::from_secs(10)).expect("client connects");
                let _ = round;
                match c
                    .call(Request::Explain { source, target }, 0)
                    .expect("explain answers")
                {
                    Response::Explain { confidence, .. } => (source, target, confidence),
                    other => panic!("expected Explain, got {other:?}"),
                }
            }));
        }
    }
    let results: Vec<(u32, u32, f64)> = threads
        .into_iter()
        .map(|t| t.join().expect("no worker panics"))
        .collect();

    for (source, target, confidence) in results {
        let direct = &engine().explain_batch(&[engine().pair_of(source, target)])[0];
        assert_eq!(
            confidence.to_bits(),
            direct.confidence().to_bits(),
            "batched serving must be bit-identical to sequential for ({source},{target})"
        );
    }
    let stats = handle.stats();
    assert!(stats.batches >= 1, "requests went through the batch path");
    assert_eq!(stats.panics, 0);
    handle.shutdown();
}

#[test]
fn expired_deadlines_get_a_typed_rejection_not_a_late_answer() {
    let config = ServerConfig {
        // Every batch takes 150ms; a 30ms deadline can never be met.
        fault: FaultPlan {
            batch_delay: Some(Duration::from_millis(150)),
            ..FaultPlan::default()
        },
        ..ServerConfig::default()
    };
    let (handle, endpoint) = start(config);
    let mut c = client(&endpoint);
    let (source, target) = sample_pairs(1)[0];
    match c
        .call(Request::Explain { source, target }, 30)
        .expect("deadline expiry still answers")
    {
        Response::DeadlineExceeded => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    let stats = handle.stats();
    assert!(stats.deadline_expired >= 1);
    // The daemon is healthy afterwards: a generous deadline succeeds.
    match c
        .call(Request::Explain { source, target }, 10_000)
        .expect("follow-up answers")
    {
        Response::Explain { .. } => {}
        other => panic!("expected Explain, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn overload_rejects_with_retry_hint_and_retry_client_recovers() {
    let config = ServerConfig {
        queue_capacity: 1,
        max_batch: 1,
        batch_workers: 1,
        retry_after_ms: 10,
        // Slow batches keep the single queue slot occupied.
        fault: FaultPlan {
            batch_delay: Some(Duration::from_millis(100)),
            ..FaultPlan::default()
        },
        ..ServerConfig::default()
    };
    let (handle, endpoint) = start(config);
    let (source, target) = sample_pairs(1)[0];

    // Flood from several threads; with one queue slot and slow batches at
    // least one must be turned away with the typed rejection.
    let mut threads = Vec::new();
    for _ in 0..6 {
        let endpoint = endpoint.clone();
        threads.push(std::thread::spawn(move || {
            let mut c =
                Client::connect(&endpoint, Duration::from_secs(10)).expect("client connects");
            c.call(Request::Explain { source, target }, 5_000)
                .expect("typed answer")
        }));
    }
    let outcomes: Vec<Response> = threads
        .into_iter()
        .map(|t| t.join().expect("no panics"))
        .collect();
    let overloaded = outcomes
        .iter()
        .filter(|r| matches!(r, Response::Overloaded { .. }))
        .count();
    let served = outcomes
        .iter()
        .filter(|r| matches!(r, Response::Explain { .. }))
        .count();
    assert!(
        overloaded >= 1,
        "the bounded queue rejected someone: {outcomes:?}"
    );
    assert!(served >= 1, "someone was served: {outcomes:?}");
    for r in &outcomes {
        if let Response::Overloaded { retry_after_ms } = r {
            assert_eq!(*retry_after_ms, 10, "the configured hint travels");
        }
    }
    let stats = handle.stats();
    assert!(stats.overloaded >= 1);

    // The retrying client honours retry_after and eventually gets through.
    let mut retry = RetryClient::new(
        endpoint,
        Duration::from_secs(10),
        RetryPolicy {
            max_attempts: 10,
            ..RetryPolicy::default()
        },
    );
    match retry
        .call(Request::Explain { source, target }, 5_000)
        .expect("retry client gets a typed answer")
    {
        Response::Explain { .. } => {}
        other => panic!("retry client should eventually be served, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn inserts_and_removes_flow_through_full_predict_immediately() {
    let engine = lsm_engine();
    let handle = Server::start(
        engine,
        &[Endpoint::Tcp("127.0.0.1:0".to_string())],
        ServerConfig::default(),
    )
    .expect("server starts");
    let endpoint = Endpoint::Tcp(handle.tcp_addr().expect("tcp endpoint bound").to_string());
    let mut c = client(&endpoint);
    let full = Some(Tier::Full);
    let predict = |c: &mut Client, source: u32| -> Vec<(u32, u32)> {
        match c
            .call(
                Request::Predict {
                    source,
                    k: 10,
                    tier: full,
                },
                0,
            )
            .expect("predict answers")
        {
            Response::Predict { candidates, .. } => candidates
                .iter()
                .map(|cand| (cand.target, cand.score.to_bits()))
                .collect(),
            other => panic!("expected Predict, got {other:?}"),
        }
    };
    let baseline = predict(&mut c, 0);
    let baseline_rows = engine.live_rows() as u64;

    // Insert the query vector of source 0 as a brand-new target row: its
    // dot with the query is ≈1, every real score is ≤1, so the new row
    // must surface as the top candidate on the very next request.
    let planted = 9_000_000u32;
    match c
        .call(
            Request::Insert {
                entity: planted,
                vector: engine.source_vector(0),
            },
            0,
        )
        .expect("insert answers")
    {
        Response::Insert { live_rows, .. } => assert_eq!(live_rows, baseline_rows + 1),
        other => panic!("expected Insert, got {other:?}"),
    }
    let with_planted = predict(&mut c, 0);
    assert_eq!(
        with_planted[0].0, planted,
        "a freshly inserted row is queryable immediately"
    );

    // Push enough rows through the wire to seal segments and trigger the
    // count-driven compaction, then tombstone everything we added.
    let mut sealed_count = 0u32;
    for i in 0..12u32 {
        match c
            .call(
                Request::Insert {
                    entity: planted + 1 + i,
                    vector: engine.source_vector(0),
                },
                0,
            )
            .expect("insert answers")
        {
            Response::Insert { sealed, .. } => sealed_count += u32::from(sealed),
            other => panic!("expected Insert, got {other:?}"),
        }
    }
    assert!(
        sealed_count >= 2,
        "a 4-row seal budget must seal several times over 12 inserts"
    );
    for i in 0..13u32 {
        match c
            .call(
                Request::Remove {
                    entity: planted + i,
                },
                0,
            )
            .expect("remove answers")
        {
            Response::Remove { existed, .. } => assert!(existed, "row {i} was live"),
            other => panic!("expected Remove, got {other:?}"),
        }
    }
    // Removing a tombstoned entity is acknowledged, not an error.
    match c
        .call(Request::Remove { entity: planted }, 0)
        .expect("idempotent remove answers")
    {
        Response::Remove { existed, live_rows } => {
            assert!(!existed);
            assert_eq!(live_rows, baseline_rows);
        }
        other => panic!("expected Remove, got {other:?}"),
    }

    // Insert-then-remove leaves no trace: the post-cycle prediction is
    // bit-identical to the pre-cycle one, across the seals and compactions
    // the cycle caused.
    assert_eq!(
        predict(&mut c, 0),
        baseline,
        "full predict is bit-identical to the pre-mutation baseline"
    );

    // A wrong-width vector is a typed BadRequest, not a panic.
    match c
        .call(
            Request::Insert {
                entity: planted,
                vector: vec![1.0; engine.dim() + 1],
            },
            0,
        )
        .expect("bad insert answers")
    {
        Response::BadRequest { message } => {
            assert!(message.contains("dimension"), "got: {message}")
        }
        other => panic!("expected BadRequest, got {other:?}"),
    }
    assert_eq!(handle.stats().panics, 0);
    handle.shutdown();
}

#[test]
fn unknown_entities_are_bad_requests_not_panics() {
    let (handle, endpoint) = start(ServerConfig::default());
    let mut c = client(&endpoint);
    let bogus = u32::MAX - 1;
    for request in [
        Request::Predict {
            source: bogus,
            k: 5,
            tier: None,
        },
        Request::Explain {
            source: bogus,
            target: 0,
        },
        Request::Verify {
            pairs: vec![(0, 0), (bogus, 0)],
        },
    ] {
        match c.call(request, 0).expect("typed answer") {
            Response::BadRequest { message } => {
                assert!(message.contains("unknown"), "got: {message}")
            }
            other => panic!("expected BadRequest, got {other:?}"),
        }
    }
    let stats = handle.stats();
    assert!(stats.bad_requests >= 3);
    assert_eq!(stats.panics, 0);
    handle.shutdown();
}

#[cfg(unix)]
#[test]
fn unix_socket_serves_the_same_protocol() {
    let dir = std::env::temp_dir().join(format!("exea-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("e2e.sock");
    let handle = Server::start(
        engine(),
        &[Endpoint::Unix(path.clone())],
        ServerConfig::default(),
    )
    .expect("unix server starts");
    let endpoint = Endpoint::Unix(path.clone());
    let mut c = client(&endpoint);
    match c.call(Request::Health, 0).expect("health over unix") {
        Response::Health { .. } => {}
        other => panic!("expected Health, got {other:?}"),
    }
    let served = match c
        .call(
            Request::Predict {
                source: 0,
                k: 5,
                tier: None,
            },
            0,
        )
        .expect("predict over unix")
    {
        Response::Predict { candidates, .. } => candidates,
        other => panic!("expected Predict, got {other:?}"),
    };
    let direct = engine().predict(0, 5, Tier::Full);
    assert_eq!(served.len(), direct.len());
    for (s, d) in served.iter().zip(&direct) {
        assert_eq!(s.score.to_bits(), d.score.to_bits());
    }
    handle.shutdown();
    assert!(!path.exists(), "graceful shutdown unlinks the socket file");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_shutdown_drains_inflight_work() {
    let config = ServerConfig {
        fault: FaultPlan {
            batch_delay: Some(Duration::from_millis(80)),
            ..FaultPlan::default()
        },
        drain_deadline: Duration::from_secs(5),
        ..ServerConfig::default()
    };
    let (handle, endpoint) = start(config);
    let (source, target) = sample_pairs(1)[0];

    // A request that will still be in flight when shutdown starts.
    let inflight = {
        let endpoint = endpoint.clone();
        std::thread::spawn(move || {
            let mut c =
                Client::connect(&endpoint, Duration::from_secs(10)).expect("client connects");
            c.call(Request::Explain { source, target }, 5_000)
        })
    };
    std::thread::sleep(Duration::from_millis(20));
    let report = handle.shutdown();
    assert!(report.drained, "drain finished inside the deadline");

    // The in-flight request was answered with a typed response — drained
    // work completes, it is never dropped on the floor.
    match inflight.join().expect("client thread survives") {
        Ok(Response::Explain { confidence, .. }) => {
            let direct = &engine().explain_batch(&[engine().pair_of(source, target)])[0];
            assert_eq!(confidence.to_bits(), direct.confidence().to_bits());
        }
        Ok(Response::ShuttingDown) => {
            panic!("a request admitted before shutdown must drain, not be rejected")
        }
        other => panic!("expected a drained Explain, got {other:?}"),
    }

    // New connections after shutdown are refused or reset — never a hang.
    assert!(
        Client::connect(&endpoint, Duration::from_secs(1)).is_err(),
        "the listener is gone after shutdown"
    );
}
