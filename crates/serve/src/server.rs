//! The daemon: accept loops, per-connection threads, admission batching,
//! deadlines, degradation, panic isolation, and graceful shutdown.
//!
//! # Threading model
//!
//! One accept thread per endpoint, one thread per accepted connection
//! (pruned as connections close), and a fixed pool of batch workers behind
//! the bounded [`Admission`] queue. Everything is std threads over blocking
//! sockets with short read timeouts — the poll tick doubles as the
//! shutdown-latency bound, so no thread is ever more than one tick away
//! from observing the shutdown flag.
//!
//! # Request lifecycle
//!
//! Cheap requests (predict, insert, remove, health, stats) are answered
//! inline on the connection thread. Pipeline requests (explain, verify,
//! repair) are
//! enqueued as jobs; batch workers drain the queue in admission order,
//! concatenate the jobs' pairs into one order-preserving
//! `explain_and_score_batch` / `score_batch` call, and slice the results
//! back per job — which is why batched serving is bit-identical to
//! sequential: the pipeline maps each pair independently and order is
//! preserved end to end.
//!
//! # Robustness invariants
//!
//! - **Bounded admission**: a full queue is an immediate typed
//!   [`Response::Overloaded`] with a retry hint — never unbounded
//!   buffering, never a blocked producer.
//! - **Deadlines with cooperative checkpoints**: every request carries a
//!   deadline; workers re-check it after dequeue (before compute) and
//!   after compute (before encode), so expired work is abandoned at stage
//!   boundaries instead of holding the pipeline.
//! - **Panic isolation**: request handling and batch compute run under
//!   `catch_unwind`; a poisoned request becomes a typed
//!   [`Response::Internal`] and a counter increment, and the daemon keeps
//!   serving.
//! - **No hangs**: reads poll with a stall budget ([`protocol::read_frame`]),
//!   writes carry a write timeout, job waits are bounded by the deadline
//!   plus a margin, and shutdown self-connects to unblock accept loops. A
//!   peer can always distinguish "rejected" (typed response) from "dead"
//!   (closed connection); it can never observe silence forever.

use crate::engine::{Engine, MutateError};
use crate::fault::{ConnFaults, FaultPlan, FaultyStream};
use crate::protocol::{
    self, FrameError, Request, Response, ResponseFrame, StatsReply, Tier, MAX_FRAME,
};
use crate::queue::{Admission, PushError};
use crate::ServeError;
use ea_graph::AlignmentPair;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A wall-clock point a request must be answered by.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Deadline {
        Deadline {
            at: Instant::now() + budget,
        }
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Time left (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }
}

/// Where the daemon listens.
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// A TCP address, e.g. `127.0.0.1:7878` (port `0` = ephemeral).
    Tcp(String),
    /// A unix-domain socket path (stale files are replaced on bind).
    #[cfg(unix)]
    Unix(PathBuf),
}

/// Server tuning knobs. The defaults favour test determinism and low
/// shutdown latency; a production deployment would raise the queue and
/// batch sizes.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bound on queued pipeline jobs; beyond it requests are rejected with
    /// [`Response::Overloaded`].
    pub queue_capacity: usize,
    /// Most jobs one pipeline batch concatenates.
    pub max_batch: usize,
    /// Batch worker threads.
    pub batch_workers: usize,
    /// Poll tick for idle reads and queue waits — also the bound on how
    /// long any thread takes to observe shutdown.
    pub read_poll: Duration,
    /// How long a peer may stall mid-frame before the connection is
    /// declared torn.
    pub stall_budget: Duration,
    /// Deadline applied when a request carries `deadline_ms == 0`.
    pub default_deadline: Duration,
    /// Retry hint returned with [`Response::Overloaded`].
    pub retry_after_ms: u32,
    /// How long [`ServerHandle::shutdown`] waits for in-flight work.
    pub drain_deadline: Duration,
    /// Load (queued + executing requests) at which load-routed predicts
    /// degrade to [`Tier::Partial`].
    pub degrade_partial_at: usize,
    /// Load at which load-routed predicts degrade to [`Tier::Sq8`].
    pub degrade_sq8_at: usize,
    /// Deterministic fault schedule (empty in production).
    pub fault: FaultPlan,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_capacity: 64,
            max_batch: 16,
            batch_workers: 2,
            read_poll: Duration::from_millis(20),
            stall_budget: Duration::from_secs(2),
            default_deadline: Duration::from_secs(5),
            retry_after_ms: 50,
            drain_deadline: Duration::from_secs(2),
            degrade_partial_at: 8,
            degrade_sq8_at: 16,
            fault: FaultPlan::default(),
        }
    }
}

/// Serving counters (atomics; read via [`Counters::snapshot`]).
#[derive(Debug, Default)]
struct Counters {
    served: AtomicU64,
    overloaded: AtomicU64,
    deadline_expired: AtomicU64,
    shutting_down: AtomicU64,
    bad_requests: AtomicU64,
    panics: AtomicU64,
    transport_faults: AtomicU64,
    batches: AtomicU64,
    batched_pairs: AtomicU64,
    degraded_partial: AtomicU64,
    degraded_sq8: AtomicU64,
    connections: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> StatsReply {
        StatsReply {
            served: self.served.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            shutting_down: self.shutting_down.load(Ordering::Relaxed),
            bad_requests: self.bad_requests.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            transport_faults: self.transport_faults.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_pairs: self.batched_pairs.load(Ordering::Relaxed),
            degraded_partial: self.degraded_partial.load(Ordering::Relaxed),
            degraded_sq8: self.degraded_sq8.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
        }
    }

    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// A pipeline job queued for the batch workers.
struct Job {
    work: Work,
    deadline: Deadline,
    reply: SyncSender<Response>,
}

enum Work {
    Explain(AlignmentPair),
    Verify(Vec<AlignmentPair>),
    Repair,
}

struct Shared {
    engine: &'static Engine,
    config: ServerConfig,
    shutdown: AtomicBool,
    queue: Admission<Job>,
    inflight: AtomicUsize,
    counters: Counters,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// The tier a load-routed predict would be served at right now.
    fn current_tier(&self) -> Tier {
        let load = self.queue.depth() + self.inflight.load(Ordering::Relaxed);
        if load >= self.config.degrade_sq8_at {
            Tier::Sq8
        } else if load >= self.config.degrade_partial_at {
            Tier::Partial
        } else {
            Tier::Full
        }
    }
}

/// Decrements the inflight gauge on every exit path, including unwinds.
struct InflightGuard<'a>(&'a AtomicUsize);

impl<'a> InflightGuard<'a> {
    fn enter(gauge: &'a AtomicUsize) -> Self {
        gauge.fetch_add(1, Ordering::Relaxed);
        InflightGuard(gauge)
    }
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Transports
// ---------------------------------------------------------------------------

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Transport> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Transport::Tcp(s)),
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Transport::Unix(s)),
        }
    }
}

/// A connected byte stream over either endpoint kind.
enum Transport {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Transport {
    fn set_timeouts(&self, read: Duration, write: Duration) -> io::Result<()> {
        match self {
            Transport::Tcp(s) => {
                // Frames are a tiny prefix write followed by the payload;
                // with Nagle on, the pair collides with delayed ACKs and
                // quantizes every round trip to ~40ms on loopback.
                s.set_nodelay(true)?;
                s.set_read_timeout(Some(read))?;
                s.set_write_timeout(Some(write))
            }
            #[cfg(unix)]
            Transport::Unix(s) => {
                s.set_read_timeout(Some(read))?;
                s.set_write_timeout(Some(write))
            }
        }
    }
}

impl Read for Transport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Transport::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Transport {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Transport::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Transport::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Transport::Unix(s) => s.flush(),
        }
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// A running daemon; dropping it without [`ServerHandle::shutdown`] leaves
/// the threads serving until process exit (the binary's normal mode).
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept_threads: Vec<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    tcp_addrs: Vec<SocketAddr>,
    #[cfg(unix)]
    unix_paths: Vec<PathBuf>,
}

/// What [`ServerHandle::shutdown`] observed while draining.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Queued jobs answered [`Response::ShuttingDown`] because the drain
    /// deadline expired before a worker reached them.
    pub aborted_jobs: usize,
    /// Whether the drain finished inside the deadline (`false` means the
    /// deadline expired with work still in flight).
    pub drained: bool,
}

/// Builder entry point: binds endpoints and spawns the serving threads.
pub struct Server;

impl Server {
    /// Starts the daemon on the given endpoints.
    pub fn start(
        engine: &'static Engine,
        endpoints: &[Endpoint],
        config: ServerConfig,
    ) -> Result<ServerHandle, ServeError> {
        if endpoints.is_empty() {
            return Err(ServeError::Config(
                "at least one endpoint is required".to_string(),
            ));
        }
        let mut listeners = Vec::with_capacity(endpoints.len());
        let mut tcp_addrs = Vec::new();
        #[cfg(unix)]
        let mut unix_paths = Vec::new();
        for endpoint in endpoints {
            match endpoint {
                Endpoint::Tcp(addr) => {
                    let listener =
                        TcpListener::bind(addr.as_str()).map_err(|e| ServeError::Bind {
                            endpoint: addr.clone(),
                            source: e,
                        })?;
                    if let Ok(local) = listener.local_addr() {
                        tcp_addrs.push(local);
                    }
                    listeners.push(Listener::Tcp(listener));
                }
                #[cfg(unix)]
                Endpoint::Unix(path) => {
                    // A stale socket file from a previous run would fail the
                    // bind; replace it. (A *live* daemon on the same path is
                    // indistinguishable from a stale file here — deployments
                    // own path uniqueness.)
                    let _ = std::fs::remove_file(path);
                    let listener = UnixListener::bind(path).map_err(|e| ServeError::Bind {
                        endpoint: path.display().to_string(),
                        source: e,
                    })?;
                    unix_paths.push(path.clone());
                    listeners.push(Listener::Unix(listener));
                }
            }
        }

        let shared = Arc::new(Shared {
            engine,
            queue: Admission::new(config.queue_capacity),
            config,
            shutdown: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            counters: Counters::default(),
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let mut worker_threads = Vec::new();
        for w in 0..shared.config.batch_workers.max(1) {
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("exea-serve-worker-{w}"))
                .spawn(move || worker_loop(&shared))
                .map_err(|e| ServeError::Config(format!("cannot spawn worker thread: {e}")))?;
            worker_threads.push(handle);
        }

        let mut accept_threads = Vec::new();
        for (i, listener) in listeners.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            let handle = std::thread::Builder::new()
                .name(format!("exea-serve-accept-{i}"))
                .spawn(move || accept_loop(&shared, listener, &conns))
                .map_err(|e| ServeError::Config(format!("cannot spawn accept thread: {e}")))?;
            accept_threads.push(handle);
        }

        Ok(ServerHandle {
            shared,
            accept_threads,
            worker_threads,
            conns,
            tcp_addrs,
            #[cfg(unix)]
            unix_paths,
        })
    }
}

impl ServerHandle {
    /// The bound TCP address (useful with ephemeral ports), if any.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addrs.first().copied()
    }

    /// Current serving counters.
    pub fn stats(&self) -> StatsReply {
        self.shared.counters.snapshot()
    }

    /// Graceful shutdown: stop accepting, drain in-flight and queued work
    /// under the drain deadline, answer whatever remains with
    /// [`Response::ShuttingDown`], and join every thread.
    pub fn shutdown(self) -> DrainReport {
        self.shared.shutdown.store(true, Ordering::SeqCst);

        // Unblock the accept loops: each is parked in a blocking accept and
        // needs one connection attempt to wake and observe the flag.
        for addr in &self.tcp_addrs {
            let _ = TcpStream::connect_timeout(addr, Duration::from_millis(200));
        }
        #[cfg(unix)]
        for path in &self.unix_paths {
            let _ = UnixStream::connect(path);
        }
        for handle in self.accept_threads {
            let _ = handle.join();
        }

        // Drain: let the workers finish queued + executing jobs within the
        // deadline.
        let drain_until = Instant::now() + self.shared.config.drain_deadline;
        while (self.shared.queue.depth() > 0 || self.shared.inflight.load(Ordering::Relaxed) > 0)
            && Instant::now() < drain_until
        {
            std::thread::sleep(Duration::from_millis(2));
        }
        let drained =
            self.shared.queue.depth() == 0 && self.shared.inflight.load(Ordering::Relaxed) == 0;

        // Whatever survived the deadline gets a typed rejection, and the
        // closed queue is the workers' exit signal.
        let leftovers = self.shared.queue.close();
        let aborted_jobs = leftovers.len();
        for job in leftovers {
            Counters::bump(&self.shared.counters.shutting_down);
            let _ = job.reply.try_send(Response::ShuttingDown);
        }
        for handle in self.worker_threads {
            let _ = handle.join();
        }

        // Connection threads observe the flag within one poll tick.
        let handles: Vec<JoinHandle<()>> = {
            let mut guard = self.conns.lock().unwrap_or_else(PoisonError::into_inner);
            guard.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }

        #[cfg(unix)]
        for path in &self.unix_paths {
            let _ = std::fs::remove_file(path);
        }

        DrainReport {
            aborted_jobs,
            drained,
        }
    }
}

// ---------------------------------------------------------------------------
// Accept + connection loops
// ---------------------------------------------------------------------------

fn accept_loop(shared: &Arc<Shared>, listener: Listener, conns: &Arc<Mutex<Vec<JoinHandle<()>>>>) {
    loop {
        if shared.shutting_down() {
            return;
        }
        let transport = match listener.accept() {
            Ok(t) => t,
            Err(_) => continue,
        };
        if shared.shutting_down() {
            // Accepted during shutdown (possibly our own wake-up probe):
            // drop it; the client sees a clean EOF, not silence.
            return;
        }
        let seq = shared.counters.connections.fetch_add(1, Ordering::Relaxed);
        let faults = shared.config.fault.for_connection(seq);
        let shared_conn = Arc::clone(shared);
        let spawn = std::thread::Builder::new()
            .name(format!("exea-serve-conn-{seq}"))
            .spawn(move || connection_loop(&shared_conn, transport, faults));
        if let Ok(handle) = spawn {
            let mut guard = conns.lock().unwrap_or_else(PoisonError::into_inner);
            guard.retain(|h| !h.is_finished());
            guard.push(handle);
        }
    }
}

/// Best-effort request id from an undecodable payload (the first 8 bytes),
/// so even a `BadRequest` can be correlated when the prefix survived.
fn request_id_of(payload: &[u8]) -> u64 {
    if payload.len() >= 8 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&payload[..8]);
        u64::from_le_bytes(raw)
    } else {
        0
    }
}

fn connection_loop(shared: &Arc<Shared>, transport: Transport, faults: ConnFaults) {
    if transport
        .set_timeouts(shared.config.read_poll, shared.config.stall_budget)
        .is_err()
    {
        return;
    }
    let inject_panic = faults.panic_in_handler;
    let mut stream = FaultyStream::new(transport, faults);
    loop {
        if shared.shutting_down() {
            return;
        }
        let payload = match protocol::read_frame(&mut stream, MAX_FRAME, shared.config.stall_budget)
        {
            Ok(Some(payload)) => payload,
            Ok(None) => continue, // idle tick; re-check shutdown
            Err(FrameError::Closed) => return,
            Err(FrameError::TooLarge { len }) => {
                Counters::bump(&shared.counters.bad_requests);
                // The stream position is unrecoverable past an
                // oversized prefix: answer, then close.
                let frame = ResponseFrame {
                    id: 0,
                    response: Response::BadRequest {
                        message: format!("frame of {len} bytes exceeds the cap"),
                    },
                };
                let _ = protocol::write_frame(&mut stream, &protocol::encode_response(&frame));
                return;
            }
            Err(FrameError::Torn { .. } | FrameError::Stalled { .. } | FrameError::Io(_)) => {
                Counters::bump(&shared.counters.transport_faults);
                return;
            }
        };

        // Panic isolation: anything that unwinds out of decoding or
        // handling becomes a typed Internal response; the daemon survives.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            handle_payload(shared, &payload, inject_panic)
        }));
        let frame = match outcome {
            Ok(frame) => frame,
            Err(_) => {
                Counters::bump(&shared.counters.panics);
                ResponseFrame {
                    id: request_id_of(&payload),
                    response: Response::Internal {
                        message: "request handler panicked; request isolated".to_string(),
                    },
                }
            }
        };
        if protocol::write_frame(&mut stream, &protocol::encode_response(&frame)).is_err() {
            Counters::bump(&shared.counters.transport_faults);
            return;
        }
    }
}

fn handle_payload(shared: &Shared, payload: &[u8], inject_panic: bool) -> ResponseFrame {
    let frame = match protocol::decode_request(payload) {
        Ok(frame) => frame,
        Err(e) => {
            Counters::bump(&shared.counters.bad_requests);
            return ResponseFrame {
                id: request_id_of(payload),
                response: Response::BadRequest {
                    message: e.to_string(),
                },
            };
        }
    };
    if inject_panic {
        // exea-lint: allow(panic-in-library-path) -- deterministic fault injection: the chaos suite asserts this unwinds into a typed Internal response, not a dead daemon
        panic!("injected handler panic");
    }
    let budget = if frame.deadline_ms == 0 {
        shared.config.default_deadline
    } else {
        Duration::from_millis(u64::from(frame.deadline_ms))
    };
    let deadline = Deadline::after(budget);
    let response = dispatch(shared, frame.request, deadline);
    ResponseFrame {
        id: frame.id,
        response,
    }
}

fn dispatch(shared: &Shared, request: Request, deadline: Deadline) -> Response {
    match request {
        // Health and stats are always answered — even while draining —
        // so orchestrators can watch the drain.
        Request::Health => Response::Health {
            draining: shared.shutting_down(),
            queue_depth: shared.queue.depth() as u32,
            inflight: shared.inflight.load(Ordering::Relaxed) as u32,
            tier: shared.current_tier(),
        },
        Request::Stats => Response::Stats(shared.counters.snapshot()),
        _ if shared.shutting_down() => {
            Counters::bump(&shared.counters.shutting_down);
            Response::ShuttingDown
        }
        Request::Predict { source, k, tier } => {
            let _guard = InflightGuard::enter(&shared.inflight);
            if !shared.engine.valid_source(source) {
                Counters::bump(&shared.counters.bad_requests);
                return Response::BadRequest {
                    message: format!("unknown source entity {source}"),
                };
            }
            let tier = tier.unwrap_or_else(|| shared.current_tier());
            match tier {
                Tier::Partial => Counters::bump(&shared.counters.degraded_partial),
                Tier::Sq8 => Counters::bump(&shared.counters.degraded_sq8),
                Tier::Full => {}
            }
            let candidates = shared.engine.predict(source, usize::from(k), tier);
            // Deadline checkpoint before encoding the (possibly large)
            // reply.
            if deadline.expired() {
                Counters::bump(&shared.counters.deadline_expired);
                return Response::DeadlineExceeded;
            }
            Counters::bump(&shared.counters.served);
            Response::Predict { tier, candidates }
        }
        // Live mutations are answered inline like predicts: one short write
        // section on the LSM corpus (occasionally a seal or a count-driven
        // compaction), never queued behind the pipeline batches.
        Request::Insert { entity, vector } => {
            let _guard = InflightGuard::enter(&shared.inflight);
            match shared.engine.insert(entity, &vector) {
                Ok(ack) => {
                    if deadline.expired() {
                        // The row is in — the ack is merely late. Tell the
                        // caller the deadline verdict, not a lie about the
                        // corpus state.
                        Counters::bump(&shared.counters.deadline_expired);
                        return Response::DeadlineExceeded;
                    }
                    Counters::bump(&shared.counters.served);
                    Response::Insert {
                        sealed: ack.sealed,
                        live_rows: ack.live_rows,
                        segments: ack.segments,
                    }
                }
                Err(e @ MutateError::Dim { .. }) => {
                    Counters::bump(&shared.counters.bad_requests);
                    Response::BadRequest {
                        message: e.to_string(),
                    }
                }
                Err(e @ MutateError::Storage(_)) => {
                    Counters::bump(&shared.counters.panics);
                    Response::Internal {
                        message: e.to_string(),
                    }
                }
            }
        }
        Request::Remove { entity } => {
            let _guard = InflightGuard::enter(&shared.inflight);
            let ack = shared.engine.remove(entity);
            if deadline.expired() {
                Counters::bump(&shared.counters.deadline_expired);
                return Response::DeadlineExceeded;
            }
            Counters::bump(&shared.counters.served);
            Response::Remove {
                existed: ack.existed,
                live_rows: ack.live_rows,
            }
        }
        Request::Explain { source, target } => {
            if !shared.engine.valid_source(source) || !shared.engine.valid_target(target) {
                Counters::bump(&shared.counters.bad_requests);
                return Response::BadRequest {
                    message: format!("unknown pair ({source}, {target})"),
                };
            }
            let pair = shared.engine.pair_of(source, target);
            enqueue_and_wait(shared, Work::Explain(pair), deadline)
        }
        Request::Verify { pairs } => {
            for (i, &(source, target)) in pairs.iter().enumerate() {
                if !shared.engine.valid_source(source) || !shared.engine.valid_target(target) {
                    Counters::bump(&shared.counters.bad_requests);
                    return Response::BadRequest {
                        message: format!("unknown pair ({source}, {target}) at index {i}"),
                    };
                }
            }
            let pairs: Vec<AlignmentPair> = pairs
                .iter()
                .map(|&(s, t)| shared.engine.pair_of(s, t))
                .collect();
            enqueue_and_wait(shared, Work::Verify(pairs), deadline)
        }
        Request::Repair => enqueue_and_wait(shared, Work::Repair, deadline),
    }
}

/// Admission: try to queue the job, then wait for the worker's reply under
/// the deadline plus a scheduling margin (the worker's own deadline
/// checkpoints normally answer first; the margin only guards against a
/// wedged worker, so the connection thread can never hang).
fn enqueue_and_wait(shared: &Shared, work: Work, deadline: Deadline) -> Response {
    let _guard = InflightGuard::enter(&shared.inflight);
    let (reply, result) = sync_channel::<Response>(1);
    let job = Job {
        work,
        deadline,
        reply,
    };
    match shared.queue.try_push(job) {
        Ok(_) => {}
        Err(PushError::Full(_)) => {
            Counters::bump(&shared.counters.overloaded);
            return Response::Overloaded {
                retry_after_ms: shared.config.retry_after_ms,
            };
        }
        Err(PushError::Closed(_)) => {
            Counters::bump(&shared.counters.shutting_down);
            return Response::ShuttingDown;
        }
    }
    let wait = deadline.remaining() + shared.config.drain_deadline + Duration::from_millis(250);
    match result.recv_timeout(wait) {
        Ok(response) => response,
        Err(_) => {
            Counters::bump(&shared.counters.deadline_expired);
            Response::DeadlineExceeded
        }
    }
}

// ---------------------------------------------------------------------------
// Batch workers
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Shared) {
    loop {
        let batch = shared
            .queue
            .pop_batch(shared.config.max_batch, shared.config.read_poll);
        if batch.jobs.is_empty() {
            if batch.finished {
                return;
            }
            continue;
        }
        if let Some(delay) = shared.config.fault.batch_delay {
            std::thread::sleep(delay);
        }
        process_batch(shared, batch.jobs);
    }
}

/// Runs one admission batch through the pipeline.
///
/// Deadline checkpoints bracket the compute: jobs already expired are
/// answered before the pipeline runs (stage boundary 1), and results whose
/// job expired during compute are discarded in favour of a typed
/// [`Response::DeadlineExceeded`] (stage boundary 2). Compute runs under
/// `catch_unwind`: a panicking pipeline answers every job in the batch with
/// [`Response::Internal`] and the worker thread survives.
fn process_batch(shared: &Shared, jobs: Vec<Job>) {
    Counters::bump(&shared.counters.batches);

    // Checkpoint 1: drop work that is already dead.
    struct Pending {
        deadline: Deadline,
        reply: SyncSender<Response>,
    }
    let mut explain_jobs: Vec<(Pending, AlignmentPair)> = Vec::new();
    let mut verify_jobs: Vec<(Pending, Vec<AlignmentPair>)> = Vec::new();
    let mut repair_jobs: Vec<Pending> = Vec::new();
    for job in jobs {
        if job.deadline.expired() {
            Counters::bump(&shared.counters.deadline_expired);
            let _ = job.reply.try_send(Response::DeadlineExceeded);
            continue;
        }
        let pending = Pending {
            deadline: job.deadline,
            reply: job.reply,
        };
        match job.work {
            Work::Explain(pair) => explain_jobs.push((pending, pair)),
            Work::Verify(pairs) => verify_jobs.push((pending, pairs)),
            Work::Repair => repair_jobs.push(pending),
        }
    }

    // One order-preserving pipeline call over the concatenation of every
    // explain job in admission order; slicing the results back per job is
    // bit-identical to running each job alone because the batch pipeline
    // maps pairs independently and preserves input order.
    if !explain_jobs.is_empty() {
        let pairs: Vec<AlignmentPair> = explain_jobs.iter().map(|(_, p)| *p).collect();
        shared
            .counters
            .batched_pairs
            .fetch_add(pairs.len() as u64, Ordering::Relaxed);
        let computed = catch_unwind(AssertUnwindSafe(|| shared.engine.explain_batch(&pairs)));
        match computed {
            Ok(scored) => {
                for ((job, _), s) in explain_jobs.into_iter().zip(scored) {
                    // Checkpoint 2: the result of an expired job is
                    // discarded, not returned late.
                    if job.deadline.expired() {
                        Counters::bump(&shared.counters.deadline_expired);
                        let _ = job.reply.try_send(Response::DeadlineExceeded);
                        continue;
                    }
                    Counters::bump(&shared.counters.served);
                    let _ = job.reply.try_send(Response::Explain {
                        confidence: s.confidence(),
                        has_strong_edges: s.adg.has_strong_edges(),
                        num_triples: s.explanation.num_triples() as u32,
                    });
                }
            }
            Err(_) => {
                Counters::bump(&shared.counters.panics);
                for (job, _) in explain_jobs {
                    let _ = job.reply.try_send(Response::Internal {
                        message: "explain pipeline panicked".to_string(),
                    });
                }
            }
        }
    }

    if !verify_jobs.is_empty() {
        let mut pairs: Vec<AlignmentPair> = Vec::new();
        let mut spans: Vec<usize> = Vec::with_capacity(verify_jobs.len());
        for (_, job_pairs) in &verify_jobs {
            spans.push(job_pairs.len());
            pairs.extend_from_slice(job_pairs);
        }
        shared
            .counters
            .batched_pairs
            .fetch_add(pairs.len() as u64, Ordering::Relaxed);
        let beta = shared.engine.beta();
        let computed = catch_unwind(AssertUnwindSafe(|| shared.engine.score_batch(&pairs)));
        match computed {
            Ok(scores) => {
                let mut offset = 0usize;
                for ((job, _), span) in verify_jobs.into_iter().zip(spans) {
                    let slice = &scores[offset..offset + span];
                    offset += span;
                    if job.deadline.expired() {
                        Counters::bump(&shared.counters.deadline_expired);
                        let _ = job.reply.try_send(Response::DeadlineExceeded);
                        continue;
                    }
                    Counters::bump(&shared.counters.served);
                    let verdicts: Vec<(bool, f64)> = slice
                        .iter()
                        .map(|s| (s.has_strong_edges && s.confidence >= beta, s.confidence))
                        .collect();
                    let _ = job.reply.try_send(Response::Verify { verdicts });
                }
            }
            Err(_) => {
                Counters::bump(&shared.counters.panics);
                for (job, _) in verify_jobs {
                    let _ = job.reply.try_send(Response::Internal {
                        message: "verify pipeline panicked".to_string(),
                    });
                }
            }
        }
    }

    for job in repair_jobs {
        let computed = catch_unwind(AssertUnwindSafe(|| shared.engine.repair()));
        match computed {
            Ok(outcome) => {
                if job.deadline.expired() {
                    Counters::bump(&shared.counters.deadline_expired);
                    let _ = job.reply.try_send(Response::DeadlineExceeded);
                    continue;
                }
                Counters::bump(&shared.counters.served);
                let _ = job.reply.try_send(Response::Repair {
                    changed_pairs: outcome.stats.changed_pairs as u64,
                    one_to_many_conflicts: outcome.stats.one_to_many_conflicts as u64,
                    low_confidence_pairs: outcome.stats.low_confidence_pairs as u64,
                    greedy_fallback: outcome.stats.greedy_fallback as u64,
                    repaired_len: outcome.repaired.len() as u64,
                });
            }
            Err(_) => {
                Counters::bump(&shared.counters.panics);
                let _ = job.reply.try_send(Response::Internal {
                    message: "repair pipeline panicked".to_string(),
                });
            }
        }
    }
}
