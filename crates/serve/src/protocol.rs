//! The wire protocol of `exea-serve`: length-prefixed binary frames carrying
//! a typed request/response pair, in the shape of a typed client/server
//! function-dispatch protocol — every operation the daemon offers is one
//! [`Request`] variant, every outcome (including every failure) one typed
//! [`Response`] variant. There is no stringly-typed escape hatch: a client
//! can always `match` on what came back.
//!
//! # Framing
//!
//! ```text
//! [u32 len (LE)] [len payload bytes]
//! ```
//!
//! Payloads are hand-rolled little-endian scalars (the daemon has no serde
//! wire format on purpose: the protocol is small enough to read, and every
//! decode failure maps to a typed [`WireError`]). Frames larger than the
//! negotiated maximum are rejected *before* allocation, so a hostile or
//! corrupted length prefix cannot balloon memory.
//!
//! # Failure taxonomy
//!
//! Transport-level failures surface as [`FrameError`] (torn frame, stalled
//! peer, oversized frame, clean close); payload-level failures as
//! [`WireError`]; application-level rejections as first-class [`Response`]
//! variants ([`Response::Overloaded`], [`Response::DeadlineExceeded`],
//! [`Response::ShuttingDown`], [`Response::BadRequest`],
//! [`Response::Internal`]). The chaos suite asserts this taxonomy is total:
//! under every injected fault the daemon answers with exactly one of these,
//! never a hang and never a half-frame followed by silence.

use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

/// Largest frame either side will read or write (1 MiB). Large enough for
/// a [`Request::Verify`] batch at [`MAX_VERIFY_PAIRS`], small enough that a
/// corrupt length prefix cannot balloon allocation.
pub const MAX_FRAME: u32 = 1 << 20;

/// Upper bound on pairs in one [`Request::Verify`] — beyond this the
/// request decodes to a typed [`WireError::Malformed`] and the server
/// answers [`Response::BadRequest`].
pub const MAX_VERIFY_PAIRS: usize = 4096;

/// Upper bound on the embedding dimension of one [`Request::Insert`] —
/// beyond this the request decodes to a typed [`WireError::Malformed`]
/// (the real dimension check against the engine happens server-side and
/// answers [`Response::BadRequest`]).
pub const MAX_INSERT_DIM: usize = 4096;

/// Serving tier a reply was computed at — the degradation ladder, most
/// exact first. Tagged on every predict response so clients always know
/// what quality they got.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Sharded engine, every shard routed: bit-identical to the exact scan.
    Full,
    /// Sharded engine, partial routing: subset-only recall, lower fan-out.
    Partial,
    /// SQ8 quantized scan + exact re-rank: cheapest, subset-only.
    Sq8,
}

impl Tier {
    /// Stable wire code.
    pub fn code(self) -> u8 {
        match self {
            Tier::Full => 0,
            Tier::Partial => 1,
            Tier::Sq8 => 2,
        }
    }

    /// Decodes a wire code.
    pub fn from_code(code: u8) -> Option<Tier> {
        match code {
            0 => Some(Tier::Full),
            1 => Some(Tier::Partial),
            2 => Some(Tier::Sq8),
            _ => None,
        }
    }

    /// Human-readable name (used in `health`/bench output).
    pub fn name(self) -> &'static str {
        match self {
            Tier::Full => "full",
            Tier::Partial => "partial",
            Tier::Sq8 => "sq8",
        }
    }
}

/// One operation of the daemon, as a typed enum — the function-dispatch
/// shape: one variant per remote procedure.
/// (`PartialEq` only: [`Request::Insert`] carries floats.)
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Top-`k` candidate targets for one source entity, served from the
    /// degradation ladder (`tier` pins a tier, `None` lets load decide).
    Predict {
        /// Source entity id (row in the source embedding table).
        source: u32,
        /// How many candidates to return.
        k: u16,
        /// Pin a serving tier; `None` = the load-chosen tier.
        tier: Option<Tier>,
    },
    /// Explanation confidence for one (source, target) pair through the
    /// full batched pipeline.
    Explain {
        /// Source entity id.
        source: u32,
        /// Target entity id.
        target: u32,
    },
    /// Accept/reject verdicts for a batch of candidate pairs (strong-edges
    /// + β rule).
    Verify {
        /// The `(source, target)` pairs to verify.
        pairs: Vec<(u32, u32)>,
    },
    /// Run the full repair pipeline over the model's predictions.
    Repair,
    /// Insert (or replace) one live target row in the LSM mutable corpus.
    /// The vector is the *raw* embedding; the engine normalises it once,
    /// exactly like the offline build.
    Insert {
        /// Target entity id the row answers for.
        entity: u32,
        /// Raw embedding row (`engine dim` values; bit-exact f32s).
        vector: Vec<f32>,
    },
    /// Delete one live target row (tombstone; shadows every older
    /// generation of the entity).
    Remove {
        /// Target entity id to tombstone.
        entity: u32,
    },
    /// Liveness + load probe; never queued, never rejected for load.
    Health,
    /// Serving counters since startup.
    Stats,
}

/// A framed request: client-chosen correlation id, per-request deadline
/// budget, and the operation.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestFrame {
    /// Echoed verbatim in the response frame.
    pub id: u64,
    /// Deadline budget in milliseconds; `0` means "use the server default".
    pub deadline_ms: u32,
    /// The operation.
    pub request: Request,
}

/// One predict candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Target entity id.
    pub target: u32,
    /// Bit-exact f32 similarity score.
    pub score: f32,
}

/// Serving counters reported by [`Response::Stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsReply {
    /// Requests answered successfully.
    pub served: u64,
    /// Requests rejected with [`Response::Overloaded`].
    pub overloaded: u64,
    /// Requests rejected with [`Response::DeadlineExceeded`].
    pub deadline_expired: u64,
    /// Requests rejected with [`Response::ShuttingDown`].
    pub shutting_down: u64,
    /// Undecodable or invalid requests ([`Response::BadRequest`]).
    pub bad_requests: u64,
    /// Handler panics isolated to [`Response::Internal`].
    pub panics: u64,
    /// Transport-level faults observed (torn frames, I/O errors, stalls).
    pub transport_faults: u64,
    /// Pipeline batches executed by the admission layer.
    pub batches: u64,
    /// Pairs served through those batches.
    pub batched_pairs: u64,
    /// Predict requests served degraded (partial routing).
    pub degraded_partial: u64,
    /// Predict requests served degraded (SQ8).
    pub degraded_sq8: u64,
    /// Connections accepted since startup.
    pub connections: u64,
}

/// Every outcome the daemon can produce — success payloads and typed
/// rejections in one closed enum.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Predict result, tagged with the tier that served it.
    Predict {
        /// Tier the candidates were computed at.
        tier: Tier,
        /// Best-first candidates.
        candidates: Vec<Candidate>,
    },
    /// Explain result.
    Explain {
        /// Explanation confidence (Eq. 9), bit-identical to the offline
        /// pipeline.
        confidence: f64,
        /// Whether the ADG has a strongly-influential edge.
        has_strong_edges: bool,
        /// Triples in the matching subgraph.
        num_triples: u32,
    },
    /// Verify verdicts, one per requested pair, in request order.
    Verify {
        /// `(accepted, confidence)` per pair.
        verdicts: Vec<(bool, f64)>,
    },
    /// Repair outcome summary.
    Repair {
        /// Pairs whose target changed.
        changed_pairs: u64,
        /// One-to-many conflicts found.
        one_to_many_conflicts: u64,
        /// Low-confidence pairs dissolved.
        low_confidence_pairs: u64,
        /// Source entities re-aligned by the greedy fallback.
        greedy_fallback: u64,
        /// Size of the repaired alignment.
        repaired_len: u64,
    },
    /// Insert acknowledged: the row is live and queryable.
    Insert {
        /// Whether this insert sealed the mutable segment.
        sealed: bool,
        /// Live rows in the mutable corpus after the insert.
        live_rows: u64,
        /// Sealed segments after the insert (and any triggered compaction).
        segments: u32,
    },
    /// Remove acknowledged.
    Remove {
        /// Whether a live row existed (and was tombstoned).
        existed: bool,
        /// Live rows in the mutable corpus after the remove.
        live_rows: u64,
    },
    /// Liveness + load snapshot.
    Health {
        /// Whether the daemon is draining for shutdown.
        draining: bool,
        /// Jobs waiting in the admission queue.
        queue_depth: u32,
        /// Requests currently executing.
        inflight: u32,
        /// Tier a load-routed predict would be served at right now.
        tier: Tier,
    },
    /// Serving counters.
    Stats(StatsReply),
    /// Admission queue full — back off and retry after the given delay.
    Overloaded {
        /// Suggested client back-off in milliseconds.
        retry_after_ms: u32,
    },
    /// The request's deadline expired before a result was produced.
    DeadlineExceeded,
    /// The daemon is shutting down and will not take new work.
    ShuttingDown,
    /// The request was undecodable or referenced unknown entities.
    BadRequest {
        /// What was wrong.
        message: String,
    },
    /// An isolated internal failure (e.g. a panicking handler).
    Internal {
        /// What failed.
        message: String,
    },
}

/// A framed response: the request's correlation id plus the outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseFrame {
    /// The id of the request this answers (`0` when the request id itself
    /// was undecodable).
    pub id: u64,
    /// The outcome.
    pub response: Response,
}

// ---------------------------------------------------------------------------
// Payload encode/decode
// ---------------------------------------------------------------------------

/// A payload-level decode failure — always typed, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the announced structure did.
    Truncated,
    /// An unknown request/response tag.
    UnknownTag(u8),
    /// Structurally invalid payload (bounds, counts, encodings).
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Little-endian payload reader with typed exhaustion.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_le_bytes(raw))
    }

    fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed("non-utf8 string"))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes"))
        }
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = bytes.len().min(u16::MAX as usize);
    out.extend_from_slice(&(len as u16).to_le_bytes());
    out.extend_from_slice(&bytes[..len]);
}

const TAG_PREDICT: u8 = 1;
const TAG_EXPLAIN: u8 = 2;
const TAG_VERIFY: u8 = 3;
const TAG_REPAIR: u8 = 4;
const TAG_HEALTH: u8 = 5;
const TAG_STATS: u8 = 6;
const TAG_INSERT: u8 = 7;
const TAG_REMOVE: u8 = 8;
const TAG_OVERLOADED: u8 = 100;
const TAG_DEADLINE: u8 = 101;
const TAG_SHUTDOWN: u8 = 102;
const TAG_BAD_REQUEST: u8 = 103;
const TAG_INTERNAL: u8 = 104;

/// Wire code for "no tier pinned" in [`Request::Predict`].
const TIER_AUTO: u8 = 0xFF;

/// Encodes one request frame to a payload (framing is added separately by
/// [`write_frame`]).
pub fn encode_request(frame: &RequestFrame) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    out.extend_from_slice(&frame.id.to_le_bytes());
    out.extend_from_slice(&frame.deadline_ms.to_le_bytes());
    match &frame.request {
        Request::Predict { source, k, tier } => {
            out.push(TAG_PREDICT);
            out.extend_from_slice(&source.to_le_bytes());
            out.extend_from_slice(&k.to_le_bytes());
            out.push(tier.map_or(TIER_AUTO, Tier::code));
        }
        Request::Explain { source, target } => {
            out.push(TAG_EXPLAIN);
            out.extend_from_slice(&source.to_le_bytes());
            out.extend_from_slice(&target.to_le_bytes());
        }
        Request::Verify { pairs } => {
            out.push(TAG_VERIFY);
            out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
            for (s, t) in pairs {
                out.extend_from_slice(&s.to_le_bytes());
                out.extend_from_slice(&t.to_le_bytes());
            }
        }
        Request::Repair => out.push(TAG_REPAIR),
        Request::Insert { entity, vector } => {
            out.push(TAG_INSERT);
            out.extend_from_slice(&entity.to_le_bytes());
            out.extend_from_slice(&(vector.len() as u16).to_le_bytes());
            for v in vector {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        Request::Remove { entity } => {
            out.push(TAG_REMOVE);
            out.extend_from_slice(&entity.to_le_bytes());
        }
        Request::Health => out.push(TAG_HEALTH),
        Request::Stats => out.push(TAG_STATS),
    }
    out
}

/// Decodes one request payload.
pub fn decode_request(payload: &[u8]) -> Result<RequestFrame, WireError> {
    let mut c = Cursor::new(payload);
    let id = c.u64()?;
    let deadline_ms = c.u32()?;
    let tag = c.u8()?;
    let request = match tag {
        TAG_PREDICT => {
            let source = c.u32()?;
            let k = c.u16()?;
            let tier = match c.u8()? {
                TIER_AUTO => None,
                code => {
                    Some(Tier::from_code(code).ok_or(WireError::Malformed("unknown tier code"))?)
                }
            };
            Request::Predict { source, k, tier }
        }
        TAG_EXPLAIN => Request::Explain {
            source: c.u32()?,
            target: c.u32()?,
        },
        TAG_VERIFY => {
            let count = c.u32()? as usize;
            if count > MAX_VERIFY_PAIRS {
                return Err(WireError::Malformed("too many verify pairs"));
            }
            let mut pairs = Vec::with_capacity(count);
            for _ in 0..count {
                pairs.push((c.u32()?, c.u32()?));
            }
            Request::Verify { pairs }
        }
        TAG_REPAIR => Request::Repair,
        TAG_INSERT => {
            let entity = c.u32()?;
            let dim = c.u16()? as usize;
            if dim > MAX_INSERT_DIM {
                return Err(WireError::Malformed("insert vector too wide"));
            }
            let mut vector = Vec::with_capacity(dim);
            for _ in 0..dim {
                vector.push(c.f32()?);
            }
            Request::Insert { entity, vector }
        }
        TAG_REMOVE => Request::Remove { entity: c.u32()? },
        TAG_HEALTH => Request::Health,
        TAG_STATS => Request::Stats,
        other => return Err(WireError::UnknownTag(other)),
    };
    c.finish()?;
    Ok(RequestFrame {
        id,
        deadline_ms,
        request,
    })
}

/// Encodes one response frame to a payload.
pub fn encode_response(frame: &ResponseFrame) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    out.extend_from_slice(&frame.id.to_le_bytes());
    match &frame.response {
        Response::Predict { tier, candidates } => {
            out.push(TAG_PREDICT);
            out.push(tier.code());
            out.extend_from_slice(&(candidates.len() as u16).to_le_bytes());
            for c in candidates {
                out.extend_from_slice(&c.target.to_le_bytes());
                out.extend_from_slice(&c.score.to_bits().to_le_bytes());
            }
        }
        Response::Explain {
            confidence,
            has_strong_edges,
            num_triples,
        } => {
            out.push(TAG_EXPLAIN);
            out.extend_from_slice(&confidence.to_bits().to_le_bytes());
            out.push(u8::from(*has_strong_edges));
            out.extend_from_slice(&num_triples.to_le_bytes());
        }
        Response::Verify { verdicts } => {
            out.push(TAG_VERIFY);
            out.extend_from_slice(&(verdicts.len() as u32).to_le_bytes());
            for (accepted, confidence) in verdicts {
                out.push(u8::from(*accepted));
                out.extend_from_slice(&confidence.to_bits().to_le_bytes());
            }
        }
        Response::Repair {
            changed_pairs,
            one_to_many_conflicts,
            low_confidence_pairs,
            greedy_fallback,
            repaired_len,
        } => {
            out.push(TAG_REPAIR);
            for v in [
                changed_pairs,
                one_to_many_conflicts,
                low_confidence_pairs,
                greedy_fallback,
                repaired_len,
            ] {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        Response::Insert {
            sealed,
            live_rows,
            segments,
        } => {
            out.push(TAG_INSERT);
            out.push(u8::from(*sealed));
            out.extend_from_slice(&live_rows.to_le_bytes());
            out.extend_from_slice(&segments.to_le_bytes());
        }
        Response::Remove { existed, live_rows } => {
            out.push(TAG_REMOVE);
            out.push(u8::from(*existed));
            out.extend_from_slice(&live_rows.to_le_bytes());
        }
        Response::Health {
            draining,
            queue_depth,
            inflight,
            tier,
        } => {
            out.push(TAG_HEALTH);
            out.push(u8::from(*draining));
            out.extend_from_slice(&queue_depth.to_le_bytes());
            out.extend_from_slice(&inflight.to_le_bytes());
            out.push(tier.code());
        }
        Response::Stats(s) => {
            out.push(TAG_STATS);
            for v in [
                s.served,
                s.overloaded,
                s.deadline_expired,
                s.shutting_down,
                s.bad_requests,
                s.panics,
                s.transport_faults,
                s.batches,
                s.batched_pairs,
                s.degraded_partial,
                s.degraded_sq8,
                s.connections,
            ] {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        Response::Overloaded { retry_after_ms } => {
            out.push(TAG_OVERLOADED);
            out.extend_from_slice(&retry_after_ms.to_le_bytes());
        }
        Response::DeadlineExceeded => out.push(TAG_DEADLINE),
        Response::ShuttingDown => out.push(TAG_SHUTDOWN),
        Response::BadRequest { message } => {
            out.push(TAG_BAD_REQUEST);
            put_string(&mut out, message);
        }
        Response::Internal { message } => {
            out.push(TAG_INTERNAL);
            put_string(&mut out, message);
        }
    }
    out
}

/// Decodes one response payload.
pub fn decode_response(payload: &[u8]) -> Result<ResponseFrame, WireError> {
    let mut c = Cursor::new(payload);
    let id = c.u64()?;
    let tag = c.u8()?;
    let response = match tag {
        TAG_PREDICT => {
            let tier = Tier::from_code(c.u8()?).ok_or(WireError::Malformed("unknown tier code"))?;
            let count = c.u16()? as usize;
            let mut candidates = Vec::with_capacity(count);
            for _ in 0..count {
                candidates.push(Candidate {
                    target: c.u32()?,
                    score: c.f32()?,
                });
            }
            Response::Predict { tier, candidates }
        }
        TAG_EXPLAIN => Response::Explain {
            confidence: c.f64()?,
            has_strong_edges: c.u8()? != 0,
            num_triples: c.u32()?,
        },
        TAG_VERIFY => {
            let count = c.u32()? as usize;
            if count > MAX_VERIFY_PAIRS {
                return Err(WireError::Malformed("too many verify verdicts"));
            }
            let mut verdicts = Vec::with_capacity(count);
            for _ in 0..count {
                verdicts.push((c.u8()? != 0, c.f64()?));
            }
            Response::Verify { verdicts }
        }
        TAG_REPAIR => Response::Repair {
            changed_pairs: c.u64()?,
            one_to_many_conflicts: c.u64()?,
            low_confidence_pairs: c.u64()?,
            greedy_fallback: c.u64()?,
            repaired_len: c.u64()?,
        },
        TAG_INSERT => Response::Insert {
            sealed: c.u8()? != 0,
            live_rows: c.u64()?,
            segments: c.u32()?,
        },
        TAG_REMOVE => Response::Remove {
            existed: c.u8()? != 0,
            live_rows: c.u64()?,
        },
        TAG_HEALTH => Response::Health {
            draining: c.u8()? != 0,
            queue_depth: c.u32()?,
            inflight: c.u32()?,
            tier: Tier::from_code(c.u8()?).ok_or(WireError::Malformed("unknown tier code"))?,
        },
        TAG_STATS => Response::Stats(StatsReply {
            served: c.u64()?,
            overloaded: c.u64()?,
            deadline_expired: c.u64()?,
            shutting_down: c.u64()?,
            bad_requests: c.u64()?,
            panics: c.u64()?,
            transport_faults: c.u64()?,
            batches: c.u64()?,
            batched_pairs: c.u64()?,
            degraded_partial: c.u64()?,
            degraded_sq8: c.u64()?,
            connections: c.u64()?,
        }),
        TAG_OVERLOADED => Response::Overloaded {
            retry_after_ms: c.u32()?,
        },
        TAG_DEADLINE => Response::DeadlineExceeded,
        TAG_SHUTDOWN => Response::ShuttingDown,
        TAG_BAD_REQUEST => Response::BadRequest {
            message: c.string()?,
        },
        TAG_INTERNAL => Response::Internal {
            message: c.string()?,
        },
        other => return Err(WireError::UnknownTag(other)),
    };
    c.finish()?;
    Ok(ResponseFrame { id, response })
}

// ---------------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------------

/// A transport-level framing failure.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed cleanly at a frame boundary.
    Closed,
    /// The stream ended mid-frame: `got` of `want` bytes arrived.
    Torn {
        /// Bytes received before the stream ended.
        got: usize,
        /// Bytes the frame announced.
        want: usize,
    },
    /// The length prefix exceeds the negotiated maximum.
    TooLarge {
        /// The announced length.
        len: u32,
    },
    /// The peer stopped making progress mid-frame for longer than the
    /// stall budget.
    Stalled {
        /// Bytes received before the stall.
        got: usize,
        /// Bytes the frame announced.
        want: usize,
    },
    /// Any other I/O failure.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "peer closed the connection"),
            FrameError::Torn { got, want } => {
                write!(f, "torn frame: stream ended after {got} of {want} bytes")
            }
            FrameError::TooLarge { len } => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            FrameError::Stalled { got, want } => {
                write!(f, "peer stalled after {got} of {want} bytes")
            }
            FrameError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Whether an I/O error is a read-timeout tick (both kinds occur in the
/// wild: unix sockets report `WouldBlock`, windows `TimedOut`).
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = payload.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame from a stream whose read timeout is the
/// caller's poll interval.
///
/// Returns `Ok(None)` when a timeout fires before *any* byte of the frame
/// arrived — the idle case, letting servers poll their shutdown flag
/// between requests. Once the first byte is in, the peer owes the rest of
/// the frame within `stall`: timeouts past that budget become
/// [`FrameError::Stalled`], so a half-written frame can never wedge a
/// connection thread. EINTR retries; EOF mid-frame is typed
/// [`FrameError::Torn`]; an oversized prefix is rejected before any
/// payload allocation.
pub fn read_frame(
    r: &mut impl Read,
    max_len: u32,
    stall: Duration,
) -> Result<Option<Vec<u8>>, FrameError> {
    let mut len_buf = [0u8; 4];
    let mut got = 0usize;
    let mut first_byte_at: Option<Instant> = None;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) => {
                return Err(if got == 0 {
                    FrameError::Closed
                } else {
                    FrameError::Torn { got, want: 4 }
                })
            }
            Ok(n) => {
                got += n;
                first_byte_at.get_or_insert_with(Instant::now);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => match first_byte_at {
                None => return Ok(None),
                Some(start) if start.elapsed() >= stall => {
                    return Err(FrameError::Stalled { got, want: 4 })
                }
                Some(_) => {}
            },
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > max_len {
        return Err(FrameError::TooLarge { len });
    }
    let want = 4 + len as usize;
    let mut payload = vec![0u8; len as usize];
    let mut have = 0usize;
    let start = first_byte_at.unwrap_or_else(Instant::now);
    while have < payload.len() {
        match r.read(&mut payload[have..]) {
            Ok(0) => {
                return Err(FrameError::Torn {
                    got: 4 + have,
                    want,
                })
            }
            Ok(n) => have += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                if start.elapsed() >= stall {
                    return Err(FrameError::Stalled {
                        got: 4 + have,
                        want,
                    });
                }
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(frame: RequestFrame) {
        let bytes = encode_request(&frame);
        assert_eq!(decode_request(&bytes).unwrap(), frame);
    }

    fn roundtrip_response(frame: ResponseFrame) {
        let bytes = encode_response(&frame);
        assert_eq!(decode_response(&bytes).unwrap(), frame);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(RequestFrame {
            id: 7,
            deadline_ms: 250,
            request: Request::Predict {
                source: 42,
                k: 10,
                tier: None,
            },
        });
        roundtrip_request(RequestFrame {
            id: 8,
            deadline_ms: 0,
            request: Request::Predict {
                source: 1,
                k: 1,
                tier: Some(Tier::Sq8),
            },
        });
        roundtrip_request(RequestFrame {
            id: u64::MAX,
            deadline_ms: u32::MAX,
            request: Request::Explain {
                source: 3,
                target: 9,
            },
        });
        roundtrip_request(RequestFrame {
            id: 1,
            deadline_ms: 5,
            request: Request::Verify {
                pairs: vec![(0, 1), (2, 3), (u32::MAX, 0)],
            },
        });
        roundtrip_request(RequestFrame {
            id: 13,
            deadline_ms: 40,
            request: Request::Insert {
                entity: 77,
                vector: vec![0.5, -1.25, 3.0, 0.0],
            },
        });
        roundtrip_request(RequestFrame {
            id: 14,
            deadline_ms: 40,
            request: Request::Insert {
                entity: 0,
                vector: vec![],
            },
        });
        roundtrip_request(RequestFrame {
            id: 15,
            deadline_ms: 0,
            request: Request::Remove { entity: u32::MAX },
        });
        for request in [Request::Repair, Request::Health, Request::Stats] {
            roundtrip_request(RequestFrame {
                id: 2,
                deadline_ms: 0,
                request,
            });
        }
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(ResponseFrame {
            id: 3,
            response: Response::Predict {
                tier: Tier::Partial,
                candidates: vec![
                    Candidate {
                        target: 5,
                        score: 0.25,
                    },
                    Candidate {
                        target: 6,
                        score: -1.5,
                    },
                ],
            },
        });
        roundtrip_response(ResponseFrame {
            id: 4,
            response: Response::Explain {
                confidence: 0.123456789,
                has_strong_edges: true,
                num_triples: 17,
            },
        });
        roundtrip_response(ResponseFrame {
            id: 5,
            response: Response::Verify {
                verdicts: vec![(true, 0.9), (false, 0.1)],
            },
        });
        roundtrip_response(ResponseFrame {
            id: 6,
            response: Response::Repair {
                changed_pairs: 1,
                one_to_many_conflicts: 2,
                low_confidence_pairs: 3,
                greedy_fallback: 4,
                repaired_len: 300,
            },
        });
        roundtrip_response(ResponseFrame {
            id: 7,
            response: Response::Health {
                draining: false,
                queue_depth: 2,
                inflight: 5,
                tier: Tier::Full,
            },
        });
        roundtrip_response(ResponseFrame {
            id: 8,
            response: Response::Stats(StatsReply {
                served: 100,
                overloaded: 1,
                deadline_expired: 2,
                shutting_down: 3,
                bad_requests: 4,
                panics: 5,
                transport_faults: 6,
                batches: 7,
                batched_pairs: 8,
                degraded_partial: 9,
                degraded_sq8: 10,
                connections: 11,
            }),
        });
        roundtrip_response(ResponseFrame {
            id: 13,
            response: Response::Insert {
                sealed: true,
                live_rows: 1 << 40,
                segments: 3,
            },
        });
        roundtrip_response(ResponseFrame {
            id: 14,
            response: Response::Remove {
                existed: false,
                live_rows: 0,
            },
        });
        roundtrip_response(ResponseFrame {
            id: 9,
            response: Response::Overloaded { retry_after_ms: 50 },
        });
        for response in [Response::DeadlineExceeded, Response::ShuttingDown] {
            roundtrip_response(ResponseFrame { id: 10, response });
        }
        roundtrip_response(ResponseFrame {
            id: 11,
            response: Response::BadRequest {
                message: "unknown entity".to_string(),
            },
        });
        roundtrip_response(ResponseFrame {
            id: 12,
            response: Response::Internal {
                message: "handler panicked".to_string(),
            },
        });
    }

    #[test]
    fn float_payloads_are_bit_exact() {
        // NaN and signed zero survive the wire unchanged: scores travel as
        // raw bits, not through any float formatting.
        let frame = ResponseFrame {
            id: 1,
            response: Response::Predict {
                tier: Tier::Full,
                candidates: vec![
                    Candidate {
                        target: 0,
                        score: f32::NAN,
                    },
                    Candidate {
                        target: 1,
                        score: -0.0,
                    },
                ],
            },
        };
        let bytes = encode_response(&frame);
        let back = decode_response(&bytes).unwrap();
        match back.response {
            Response::Predict { candidates, .. } => {
                assert_eq!(candidates[0].score.to_bits(), f32::NAN.to_bits());
                assert_eq!(candidates[1].score.to_bits(), (-0.0f32).to_bits());
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn decode_failures_are_typed() {
        // Truncated at every prefix of a valid request.
        let bytes = encode_request(&RequestFrame {
            id: 1,
            deadline_ms: 2,
            request: Request::Explain {
                source: 3,
                target: 4,
            },
        });
        for cut in 0..bytes.len() {
            assert!(
                decode_request(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        // Unknown tag.
        let mut unknown = bytes.clone();
        unknown[12] = 99;
        assert_eq!(
            decode_request(&unknown).unwrap_err(),
            WireError::UnknownTag(99)
        );
        // Trailing garbage.
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            decode_request(&trailing).unwrap_err(),
            WireError::Malformed("trailing bytes")
        );
        // Oversized verify count.
        let mut huge = encode_request(&RequestFrame {
            id: 1,
            deadline_ms: 0,
            request: Request::Verify { pairs: vec![] },
        });
        let count_at = huge.len() - 4;
        huge[count_at..].copy_from_slice(&(MAX_VERIFY_PAIRS as u32 + 1).to_le_bytes());
        assert_eq!(
            decode_request(&huge).unwrap_err(),
            WireError::Malformed("too many verify pairs")
        );
        // Oversized insert dimension rejected before allocation, and an
        // insert truncated mid-vector is typed at every prefix.
        let insert = encode_request(&RequestFrame {
            id: 1,
            deadline_ms: 0,
            request: Request::Insert {
                entity: 5,
                vector: vec![1.0, 2.0],
            },
        });
        for cut in 0..insert.len() {
            assert!(
                decode_request(&insert[..cut]).is_err(),
                "insert prefix of {cut} bytes decoded"
            );
        }
        let mut wide = encode_request(&RequestFrame {
            id: 1,
            deadline_ms: 0,
            request: Request::Insert {
                entity: 5,
                vector: vec![],
            },
        });
        let dim_at = wide.len() - 2;
        wide[dim_at..].copy_from_slice(&(MAX_INSERT_DIM as u16 + 1).to_le_bytes());
        assert_eq!(
            decode_request(&wide).unwrap_err(),
            WireError::Malformed("insert vector too wide")
        );
        // Insert vectors travel as raw bits: NaN survives the wire.
        let nan = encode_request(&RequestFrame {
            id: 1,
            deadline_ms: 0,
            request: Request::Insert {
                entity: 5,
                vector: vec![f32::NAN, -0.0],
            },
        });
        match decode_request(&nan).unwrap().request {
            Request::Insert { vector, .. } => {
                assert_eq!(vector[0].to_bits(), f32::NAN.to_bits());
                assert_eq!(vector[1].to_bits(), (-0.0f32).to_bits());
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = std::io::Cursor::new(wire);
        assert_eq!(
            read_frame(&mut r, MAX_FRAME, Duration::from_secs(1))
                .unwrap()
                .unwrap(),
            b"hello"
        );
        assert_eq!(
            read_frame(&mut r, MAX_FRAME, Duration::from_secs(1))
                .unwrap()
                .unwrap(),
            b""
        );
        assert!(matches!(
            read_frame(&mut r, MAX_FRAME, Duration::from_secs(1)),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn torn_and_oversized_frames_are_typed() {
        // EOF mid-length-prefix.
        let mut r = std::io::Cursor::new(vec![5u8, 0]);
        assert!(matches!(
            read_frame(&mut r, MAX_FRAME, Duration::from_secs(1)),
            Err(FrameError::Torn { got: 2, want: 4 })
        ));
        // EOF mid-payload.
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        wire.truncate(6);
        let mut r = std::io::Cursor::new(wire);
        assert!(matches!(
            read_frame(&mut r, MAX_FRAME, Duration::from_secs(1)),
            Err(FrameError::Torn { got: 6, want: 9 })
        ));
        // Oversized prefix rejected before allocation.
        let mut r = std::io::Cursor::new(u32::MAX.to_le_bytes().to_vec());
        assert!(matches!(
            read_frame(&mut r, MAX_FRAME, Duration::from_secs(1)),
            Err(FrameError::TooLarge { len: u32::MAX })
        ));
    }
}
