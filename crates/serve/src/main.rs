//! `exea-serve` — the alignment serving daemon.
//!
//! ```text
//! exea-serve [--tcp ADDR] [--unix PATH] [--dataset NAME] [--scale SCALE]
//!            [--model MODEL] [--queue N] [--batch N] [--workers N]
//!            [--smoke]
//! ```
//!
//! Binds the requested endpoints (default `--tcp 127.0.0.1:7878`), builds
//! the warm engine once, then serves until SIGINT/SIGTERM kills the
//! process. `--smoke` instead runs one self-test round-trip over an
//! ephemeral TCP port and exits — CI uses it as the daemon's liveness
//! check.
//!
//! All startup failures — bad flags, bad `EXEA_*` environment overrides,
//! unbindable endpoints — exit with code 2 and a one-line message; the
//! daemon never starts half-configured.

use ea_data::datasets::{DatasetName, DatasetScale};
use ea_models::ModelKind;
use exea_serve::protocol::Request;
use exea_serve::{
    Client, Endpoint, Engine, EngineConfig, Response, ServeError, Server, ServerConfig,
};
use std::path::PathBuf;
use std::time::Duration;

struct Args {
    endpoints: Vec<Endpoint>,
    engine: EngineConfig,
    server: ServerConfig,
    smoke: bool,
}

fn usage() -> &'static str {
    "usage: exea-serve [--tcp ADDR] [--unix PATH] \
     [--dataset zh-en|ja-en|fr-en|dbp-wd|dbp-yago] \
     [--scale small|bench|paper] [--model mtranse|aligne|gcn-align|dual-amn] \
     [--queue N] [--batch N] [--workers N] [--smoke]"
}

fn fail(message: &str) -> ! {
    eprintln!("exea-serve: {message}");
    eprintln!("{}", usage());
    std::process::exit(2);
}

fn parse_dataset(v: &str) -> Option<DatasetName> {
    match v.to_ascii_lowercase().as_str() {
        "zh-en" | "zhen" => Some(DatasetName::ZhEn),
        "ja-en" | "jaen" => Some(DatasetName::JaEn),
        "fr-en" | "fren" => Some(DatasetName::FrEn),
        "dbp-wd" | "dbpwd" => Some(DatasetName::DbpWd),
        "dbp-yago" | "dbpyago" => Some(DatasetName::DbpYago),
        _ => None,
    }
}

fn parse_scale(v: &str) -> Option<DatasetScale> {
    match v.to_ascii_lowercase().as_str() {
        "small" => Some(DatasetScale::Small),
        "bench" => Some(DatasetScale::Bench),
        "paper" => Some(DatasetScale::Paper),
        _ => None,
    }
}

fn parse_model(v: &str) -> Option<ModelKind> {
    match v.to_ascii_lowercase().as_str() {
        "mtranse" => Some(ModelKind::MTransE),
        "aligne" => Some(ModelKind::AlignE),
        "gcn-align" | "gcnalign" => Some(ModelKind::GcnAlign),
        "dual-amn" | "dualamn" => Some(ModelKind::DualAmn),
        _ => None,
    }
}

fn parse_args() -> Args {
    let mut endpoints = Vec::new();
    let mut engine = EngineConfig::default();
    let mut server = ServerConfig::default();
    let mut smoke = false;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> String {
            match args.next() {
                Some(v) => v,
                None => fail(&format!("{name} needs a value")),
            }
        };
        match flag.as_str() {
            "--tcp" => endpoints.push(Endpoint::Tcp(value("--tcp"))),
            #[cfg(unix)]
            "--unix" => endpoints.push(Endpoint::Unix(PathBuf::from(value("--unix")))),
            "--dataset" => {
                let v = value("--dataset");
                engine.dataset = match parse_dataset(&v) {
                    Some(d) => d,
                    None => fail(&format!("unknown dataset {v:?}")),
                };
            }
            "--scale" => {
                let v = value("--scale");
                engine.scale = match parse_scale(&v) {
                    Some(s) => s,
                    None => fail(&format!("unknown scale {v:?}")),
                };
            }
            "--model" => {
                let v = value("--model");
                engine.model = match parse_model(&v) {
                    Some(m) => m,
                    None => fail(&format!("unknown model {v:?}")),
                };
            }
            "--queue" => {
                let v = value("--queue");
                server.queue_capacity = match v.parse() {
                    Ok(n) => n,
                    Err(_) => fail(&format!("--queue needs a number, got {v:?}")),
                };
            }
            "--batch" => {
                let v = value("--batch");
                server.max_batch = match v.parse() {
                    Ok(n) => n,
                    Err(_) => fail(&format!("--batch needs a number, got {v:?}")),
                };
            }
            "--workers" => {
                let v = value("--workers");
                server.batch_workers = match v.parse() {
                    Ok(n) => n,
                    Err(_) => fail(&format!("--workers needs a number, got {v:?}")),
                };
            }
            "--smoke" => smoke = true,
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => fail(&format!("unknown flag {other:?}")),
        }
    }
    if endpoints.is_empty() {
        if smoke {
            endpoints.push(Endpoint::Tcp("127.0.0.1:0".to_string()));
        } else {
            endpoints.push(Endpoint::Tcp("127.0.0.1:7878".to_string()));
        }
    }
    Args {
        endpoints,
        engine,
        server,
        smoke,
    }
}

fn main() {
    // Surface typed environment-override errors as a clean startup failure
    // instead of a panic deep inside the first query.
    if let Err(e) = ea_embed::CandidateSearch::from_env() {
        eprintln!("exea-serve: {e}");
        std::process::exit(2);
    }
    if let Err(e) = ea_embed::mapped_backend_from_env() {
        eprintln!("exea-serve: {e}");
        std::process::exit(2);
    }

    let args = parse_args();

    eprintln!(
        "exea-serve: loading {:?}/{:?} and training {:?} (once, at startup)…",
        args.engine.dataset, args.engine.scale, args.engine.model
    );
    let engine = match Engine::build(&args.engine) {
        Ok(engine) => engine,
        Err(e) => {
            eprintln!("exea-serve: {e}");
            std::process::exit(2);
        }
    };
    // The daemon serves until process exit; the engine is process-lived by
    // design (see `engine` module docs), so hand the threads a &'static.
    let engine: &'static Engine = Box::leak(Box::new(engine));

    let handle = match Server::start(engine, &args.endpoints, args.server.clone()) {
        Ok(handle) => handle,
        Err(e @ (ServeError::Config(_) | ServeError::Bind { .. })) => {
            eprintln!("exea-serve: {e}");
            std::process::exit(2);
        }
    };
    for endpoint in &args.endpoints {
        match endpoint {
            Endpoint::Tcp(_) => {
                if let Some(addr) = handle.tcp_addr() {
                    eprintln!("exea-serve: listening on tcp {addr}");
                }
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                eprintln!("exea-serve: listening on unix {}", path.display());
            }
        }
    }

    if args.smoke {
        run_smoke(engine, handle);
        return;
    }

    eprintln!("exea-serve: ready");
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// One self-test round-trip over the bound TCP endpoint, then a graceful
/// shutdown: health, stats, one predict, one explain. Exit 0 only if every
/// reply is the expected typed variant.
fn run_smoke(engine: &'static Engine, handle: exea_serve::ServerHandle) {
    let addr = match handle.tcp_addr() {
        Some(addr) => addr,
        None => {
            eprintln!("exea-serve: --smoke needs a TCP endpoint");
            std::process::exit(2);
        }
    };
    let endpoint = Endpoint::Tcp(addr.to_string());
    let mut client = match Client::connect(&endpoint, Duration::from_secs(10)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("exea-serve: smoke connect failed: {e}");
            std::process::exit(1);
        }
    };
    let mut check = |name: &str, request: Request| match client.call(request, 0) {
        Ok(response) => {
            eprintln!("exea-serve: smoke {name}: ok");
            response
        }
        Err(e) => {
            eprintln!("exea-serve: smoke {name} failed: {e}");
            std::process::exit(1);
        }
    };
    match check("health", Request::Health) {
        Response::Health { .. } => {}
        other => {
            eprintln!("exea-serve: smoke health: unexpected reply {other:?}");
            std::process::exit(1);
        }
    }
    match check(
        "predict",
        Request::Predict {
            source: 0,
            k: 5,
            tier: None,
        },
    ) {
        Response::Predict { candidates, .. } if !candidates.is_empty() => {}
        other => {
            eprintln!("exea-serve: smoke predict: unexpected reply {other:?}");
            std::process::exit(1);
        }
    }
    if let Some(pair) = engine.sample_pair() {
        match check(
            "explain",
            Request::Explain {
                source: pair.source.0,
                target: pair.target.0,
            },
        ) {
            Response::Explain { .. } => {}
            other => {
                eprintln!("exea-serve: smoke explain: unexpected reply {other:?}");
                std::process::exit(1);
            }
        }
    }
    match check("stats", Request::Stats) {
        Response::Stats(stats) if stats.served >= 2 => {}
        other => {
            eprintln!("exea-serve: smoke stats: unexpected reply {other:?}");
            std::process::exit(1);
        }
    }
    let report = handle.shutdown();
    eprintln!(
        "exea-serve: smoke shutdown: drained={} aborted={}",
        report.drained, report.aborted_jobs
    );
    if !report.drained {
        std::process::exit(1);
    }
    eprintln!("exea-serve: smoke ok");
}
