//! Deterministic fault injection for the chaos suite.
//!
//! A [`FaultPlan`] is plain data handed to the server at startup: per
//! accepted connection (keyed by accept order, so a given plan always
//! injects the same faults into the same connections) it can fail or delay
//! reads, tear writes mid-frame, sever the connection after a number of
//! requests, or panic inside the request handler; globally it can slow the
//! batch workers down to make overload and deadline windows reproducible.
//! Everything is deterministic — no randomness, no wall-clock conditions —
//! so a failing chaos test replays exactly.
//!
//! The injection point is [`FaultyStream`], a `Read + Write` wrapper the
//! server threads its accepted transports through. The daemon under test
//! cannot tell an injected `EIO` from a real one, which is the point: the
//! chaos suite asserts the *response* to the fault (typed error, counter,
//! intact daemon), not the fault's provenance.

use std::io::{self, Read, Write};
use std::time::Duration;

/// Faults to inject into one accepted connection.
#[derive(Debug, Clone, Default)]
pub struct ConnFaults {
    /// Sleep this long before every read (a slow client / slow network).
    pub read_delay: Option<Duration>,
    /// Fail the nth read call (0-based) with an injected I/O error.
    pub fail_read_at: Option<u32>,
    /// Fail the nth write call (0-based) with an injected I/O error.
    pub fail_write_at: Option<u32>,
    /// Allow only this many response bytes through, then sever the stream
    /// (a torn write from the client's perspective).
    pub tear_write_after: Option<usize>,
    /// Panic inside the request handler (exercises panic isolation).
    pub panic_in_handler: bool,
}

impl ConnFaults {
    /// Whether this connection has any fault to inject.
    pub fn is_clean(&self) -> bool {
        self.read_delay.is_none()
            && self.fail_read_at.is_none()
            && self.fail_write_at.is_none()
            && self.tear_write_after.is_none()
            && !self.panic_in_handler
    }
}

/// The full deterministic fault schedule for one server run.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Per-connection faults, indexed by accept order; connections past the
    /// end of the list run clean.
    pub connections: Vec<ConnFaults>,
    /// Slow every admission batch down by this much (makes overload and
    /// deadline-expiry windows deterministic in tests).
    pub batch_delay: Option<Duration>,
}

impl FaultPlan {
    /// A plan injecting nothing (the production default).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// The faults for the `seq`-th accepted connection.
    pub fn for_connection(&self, seq: u64) -> ConnFaults {
        usize::try_from(seq)
            .ok()
            .and_then(|i| self.connections.get(i).cloned())
            .unwrap_or_default()
    }
}

/// A transport with deterministic faults layered over it.
#[derive(Debug)]
pub struct FaultyStream<S> {
    inner: S,
    faults: ConnFaults,
    reads: u32,
    writes: u32,
    written: usize,
}

impl<S> FaultyStream<S> {
    /// Wraps a transport with the given connection faults.
    pub fn new(inner: S, faults: ConnFaults) -> FaultyStream<S> {
        FaultyStream {
            inner,
            faults,
            reads: 0,
            writes: 0,
            written: 0,
        }
    }

    /// The faults this stream injects.
    pub fn faults(&self) -> &ConnFaults {
        &self.faults
    }

    /// The wrapped transport.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if let Some(delay) = self.faults.read_delay {
            std::thread::sleep(delay);
        }
        let seq = self.reads;
        self.reads = self.reads.saturating_add(1);
        if self.faults.fail_read_at == Some(seq) {
            return Err(io::Error::other("injected read fault"));
        }
        self.inner.read(buf)
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let seq = self.writes;
        self.writes = self.writes.saturating_add(1);
        if self.faults.fail_write_at == Some(seq) {
            return Err(io::Error::other("injected write fault"));
        }
        if let Some(cap) = self.faults.tear_write_after {
            if self.written >= cap {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "injected torn write",
                ));
            }
            let allowed = (cap - self.written).min(buf.len());
            let n = self.inner.write(&buf[..allowed])?;
            self.written += n;
            return Ok(n);
        }
        let n = self.inner.write(buf)?;
        self.written += n;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_key_faults_by_accept_order() {
        let plan = FaultPlan {
            connections: vec![
                ConnFaults::default(),
                ConnFaults {
                    fail_read_at: Some(0),
                    ..ConnFaults::default()
                },
            ],
            batch_delay: None,
        };
        assert!(plan.for_connection(0).is_clean());
        assert_eq!(plan.for_connection(1).fail_read_at, Some(0));
        assert!(plan.for_connection(2).is_clean(), "past the end runs clean");
        assert!(plan.for_connection(u64::MAX).is_clean());
    }

    #[test]
    fn injected_read_fault_fires_on_the_scheduled_call() {
        let data = vec![1u8, 2, 3, 4];
        let mut s = FaultyStream::new(
            std::io::Cursor::new(data),
            ConnFaults {
                fail_read_at: Some(1),
                ..ConnFaults::default()
            },
        );
        let mut buf = [0u8; 2];
        assert_eq!(s.read(&mut buf).unwrap(), 2);
        let err = s.read(&mut buf).unwrap_err();
        assert_eq!(err.to_string(), "injected read fault");
        // Later reads proceed (the fault fires exactly once).
        assert_eq!(s.read(&mut buf).unwrap(), 2);
    }

    #[test]
    fn torn_write_caps_bytes_then_severs() {
        let mut s = FaultyStream::new(
            Vec::new(),
            ConnFaults {
                tear_write_after: Some(3),
                ..ConnFaults::default()
            },
        );
        assert_eq!(s.write(b"ab").unwrap(), 2);
        assert_eq!(s.write(b"cd").unwrap(), 1, "only one byte fits the cap");
        let err = s.write(b"e").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(s.get_ref(), b"abc");
    }
}
