//! Bounded admission queue: the backpressure boundary of the daemon.
//!
//! Connection threads `try_push` — a full queue is an *immediate* typed
//! rejection (the server turns it into [`Overloaded`]), never an unbounded
//! buffer and never a blocking producer. Batch workers `pop_batch`, taking
//! up to a batch's worth of jobs in strict admission order, which is what
//! lets the server concatenate them into one order-preserving pipeline
//! call and slice the results back per job.
//!
//! The queue is a plain `Mutex<VecDeque> + Condvar`; a poisoned mutex
//! (possible only if a pusher panicked mid-push, which the panic-isolation
//! layer already converts into a typed response) is recovered by taking the
//! inner value — the queue's state is a `VecDeque` of owned jobs and stays
//! structurally valid across an unwind.
//!
//! [`Overloaded`]: crate::protocol::Response::Overloaded

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// A bounded multi-producer multi-consumer admission queue.
#[derive(Debug)]
pub struct Admission<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct Inner<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// Outcome of a [`Admission::try_push`].
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity; the job is handed back for a typed
    /// rejection.
    Full(T),
    /// The queue is closed (shutdown); the job is handed back.
    Closed(T),
}

/// Outcome of a [`Admission::pop_batch`].
#[derive(Debug)]
pub struct Batch<T> {
    /// Jobs in strict admission order (possibly empty on a poll timeout).
    pub jobs: Vec<T>,
    /// Whether the queue is closed *and* drained — the worker's exit
    /// signal.
    pub finished: bool,
}

impl<T> Admission<T> {
    /// A queue admitting at most `capacity` queued jobs.
    pub fn new(capacity: usize) -> Admission<T> {
        Admission {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admits one job, or rejects immediately — never blocks.
    pub fn try_push(&self, job: T) -> Result<usize, PushError<T>> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed(job));
        }
        if inner.queue.len() >= self.capacity {
            return Err(PushError::Full(job));
        }
        inner.queue.push_back(job);
        let depth = inner.queue.len();
        drop(inner);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Takes up to `max` jobs in admission order, waiting up to `poll` for
    /// the first one. An empty batch with `finished: false` is a poll tick
    /// (workers use it to re-check faults/config); `finished: true` means
    /// closed and drained.
    pub fn pop_batch(&self, max: usize, poll: Duration) -> Batch<T> {
        let mut inner = self.lock();
        if inner.queue.is_empty() && !inner.closed {
            let (guard, _timeout) = self
                .ready
                .wait_timeout(inner, poll)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
        }
        let take = inner.queue.len().min(max.max(1));
        let jobs: Vec<T> = inner.queue.drain(..take).collect();
        let finished = inner.closed && inner.queue.is_empty();
        drop(inner);
        if !jobs.is_empty() {
            // More work may remain; wake a sibling worker.
            self.ready.notify_one();
        }
        Batch { jobs, finished }
    }

    /// Closes the queue and returns everything still queued (the server
    /// answers each with `ShuttingDown`). Idempotent.
    pub fn close(&self) -> Vec<T> {
        let mut inner = self.lock();
        inner.closed = true;
        let leftovers: Vec<T> = inner.queue.drain(..).collect();
        drop(inner);
        self.ready.notify_all();
        leftovers
    }

    /// Jobs currently queued.
    pub fn depth(&self) -> usize {
        self.lock().queue.len()
    }

    /// Whether [`Admission::close`] has run.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_rejects_immediately_with_the_job() {
        let q = Admission::new(2);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        match q.try_push(3) {
            Err(PushError::Full(job)) => assert_eq!(job, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn batches_preserve_admission_order() {
        let q = Admission::new(16);
        for i in 0..6 {
            q.try_push(i).unwrap();
        }
        let b = q.pop_batch(4, Duration::from_millis(1));
        assert_eq!(b.jobs, vec![0, 1, 2, 3]);
        assert!(!b.finished);
        let b = q.pop_batch(4, Duration::from_millis(1));
        assert_eq!(b.jobs, vec![4, 5]);
    }

    #[test]
    fn close_returns_leftovers_and_finishes_workers() {
        let q = Admission::new(8);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        assert_eq!(q.close(), vec!["a", "b"]);
        match q.try_push("c") {
            Err(PushError::Closed(job)) => assert_eq!(job, "c"),
            other => panic!("expected Closed, got {other:?}"),
        }
        let b = q.pop_batch(4, Duration::from_millis(1));
        assert!(b.jobs.is_empty());
        assert!(b.finished);
    }

    #[test]
    fn pop_wakes_on_push_across_threads() {
        let q = Arc::new(Admission::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || loop {
                let b = q.pop_batch(1, Duration::from_millis(50));
                if let Some(&job) = b.jobs.first() {
                    return job;
                }
                if b.finished {
                    return -1;
                }
            })
        };
        std::thread::sleep(Duration::from_millis(10));
        q.try_push(42).unwrap();
        assert_eq!(consumer.join().unwrap(), 42);
    }
}
