//! Client library: blocking protocol client plus a retrying wrapper.
//!
//! [`Client`] is the thin layer — one connection, one request/response at a
//! time, read timeouts so a dead daemon surfaces as a typed
//! [`ClientError`] instead of a hang. [`RetryClient`] layers the retry
//! contract on top:
//!
//! - transport faults (connection refused / reset / torn frame) →
//!   reconnect and retry with exponential backoff,
//! - [`Response::Overloaded`] → wait at least the server's `retry_after`
//!   hint (backoff if larger), then retry,
//! - [`Response::ShuttingDown`] and [`Response::DeadlineExceeded`] →
//!   terminal, surfaced to the caller (retrying a deadline locally would
//!   just miss it again; a draining daemon wants the client to go away),
//! - every wait gets deterministic seeded jitter so a thundering herd of
//!   clients de-synchronises reproducibly.
//!
//! Retrying a *mutation* after an ambiguous transport fault (the request
//! may or may not have been applied before the connection died) is safe:
//! [`Request::Insert`] replaces the entity's row and [`Request::Remove`]
//! tombstones it, both idempotent, so replaying converges to the same
//! corpus state the first attempt aimed for.

use crate::protocol::{
    self, FrameError, Request, RequestFrame, Response, ResponseFrame, WireError, MAX_FRAME,
};
use crate::server::Endpoint;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::io;
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Client-side failures (server-side rejections arrive as typed
/// [`Response`] variants, not errors).
#[derive(Debug)]
pub enum ClientError {
    /// Could not connect to the endpoint.
    Connect(io::Error),
    /// The connection died mid-exchange (torn frame, reset, timeout).
    Transport(FrameError),
    /// The server closed the connection without answering.
    NoReply,
    /// The reply did not parse.
    Malformed(WireError),
    /// The reply's id does not match the request (protocol violation).
    IdMismatch {
        /// Id the request carried.
        sent: u64,
        /// Id the reply carried.
        got: u64,
    },
    /// Retries exhausted; the last failure is carried inside.
    RetriesExhausted(Box<ClientError>),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "cannot connect: {e}"),
            ClientError::Transport(e) => write!(f, "transport failure: {e}"),
            ClientError::NoReply => write!(f, "server closed the connection without a reply"),
            ClientError::Malformed(e) => write!(f, "malformed reply: {e}"),
            ClientError::IdMismatch { sent, got } => {
                write!(f, "reply id {got} does not match request id {sent}")
            }
            ClientError::RetriesExhausted(last) => {
                write!(f, "retries exhausted; last failure: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// A blocking, single-connection protocol client.
pub struct Client {
    stream: Stream,
    next_id: u64,
    read_timeout: Duration,
}

enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl io::Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => io::Read::read(s, buf),
            #[cfg(unix)]
            Stream::Unix(s) => io::Read::read(s, buf),
        }
    }
}

impl io::Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => io::Write::write(s, buf),
            #[cfg(unix)]
            Stream::Unix(s) => io::Write::write(s, buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => io::Write::flush(s),
            #[cfg(unix)]
            Stream::Unix(s) => io::Write::flush(s),
        }
    }
}

impl Client {
    /// Connects with a bound on how long any later read may stall.
    pub fn connect(endpoint: &Endpoint, read_timeout: Duration) -> Result<Client, ClientError> {
        let stream = match endpoint {
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr.as_str()).map_err(ClientError::Connect)?;
                // Same reasoning as the server side: length-prefixed frames
                // are two small writes, which Nagle turns into ~40ms stalls.
                s.set_nodelay(true).map_err(ClientError::Connect)?;
                s.set_read_timeout(Some(read_timeout))
                    .map_err(ClientError::Connect)?;
                s.set_write_timeout(Some(read_timeout))
                    .map_err(ClientError::Connect)?;
                Stream::Tcp(s)
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let s = UnixStream::connect(path).map_err(ClientError::Connect)?;
                s.set_read_timeout(Some(read_timeout))
                    .map_err(ClientError::Connect)?;
                s.set_write_timeout(Some(read_timeout))
                    .map_err(ClientError::Connect)?;
                Stream::Unix(s)
            }
        };
        Ok(Client {
            stream,
            next_id: 1,
            read_timeout,
        })
    }

    /// Sends one request and waits for its reply. `deadline_ms == 0` asks
    /// for the server's default deadline.
    pub fn call(&mut self, request: Request, deadline_ms: u32) -> Result<Response, ClientError> {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        let frame = RequestFrame {
            id,
            deadline_ms,
            request,
        };
        protocol::write_frame(&mut self.stream, &protocol::encode_request(&frame))
            .map_err(|e| ClientError::Transport(FrameError::Io(e)))?;
        // The server may need the whole deadline before answering; poll in
        // read_timeout ticks until a frame lands or the stream dies.
        let payload = loop {
            match protocol::read_frame(&mut self.stream, MAX_FRAME, self.read_timeout) {
                Ok(Some(payload)) => break payload,
                Ok(None) => continue,
                Err(FrameError::Closed) => return Err(ClientError::NoReply),
                Err(e) => return Err(ClientError::Transport(e)),
            }
        };
        let reply: ResponseFrame =
            protocol::decode_response(&payload).map_err(ClientError::Malformed)?;
        if reply.id != id {
            return Err(ClientError::IdMismatch {
                sent: id,
                got: reply.id,
            });
        }
        Ok(reply.response)
    }
}

/// Retry/backoff parameters for [`RetryClient`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Attempts before giving up (including the first).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per attempt.
    pub base_backoff: Duration,
    /// Cap on any single backoff wait.
    pub max_backoff: Duration,
    /// Seed for the jitter stream (deterministic per client).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_millis(500),
            seed: 0x5eed_c11e,
        }
    }
}

/// A client that reconnects and retries per the retry contract (module
/// docs), with deterministic seeded jitter.
pub struct RetryClient {
    endpoint: Endpoint,
    read_timeout: Duration,
    policy: RetryPolicy,
    rng: ChaCha8Rng,
    conn: Option<Client>,
}

impl RetryClient {
    /// A retrying client for `endpoint`; connections are opened lazily and
    /// re-opened after transport faults.
    pub fn new(endpoint: Endpoint, read_timeout: Duration, policy: RetryPolicy) -> RetryClient {
        let rng = ChaCha8Rng::seed_from_u64(policy.seed);
        RetryClient {
            endpoint,
            read_timeout,
            policy,
            rng,
            conn: None,
        }
    }

    /// The exponential backoff for `attempt` (0-based), jittered by up to
    /// +50% from the seeded stream, floored at `min_wait` (the server's
    /// `retry_after` hint, if any).
    fn backoff(&mut self, attempt: u32, min_wait: Duration) -> Duration {
        let base = self
            .policy
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.policy.max_backoff);
        let base = base.max(min_wait);
        let jitter_ns = self
            .rng
            .gen_range(0..=base.as_nanos().min(u128::from(u64::MAX)) as u64 / 2);
        base + Duration::from_nanos(jitter_ns)
    }

    /// Sends `request`, retrying per the policy. Typed server rejections
    /// other than `Overloaded` are returned as `Ok` — they are answers,
    /// not failures.
    pub fn call(&mut self, request: Request, deadline_ms: u32) -> Result<Response, ClientError> {
        let mut last: Option<ClientError> = None;
        for attempt in 0..self.policy.max_attempts.max(1) {
            if attempt > 0 {
                // Transport faults carry no server hint; plain backoff.
                let wait = self.backoff(attempt - 1, Duration::ZERO);
                std::thread::sleep(wait);
            }
            let client = match self.conn.take() {
                Some(c) => c,
                None => match Client::connect(&self.endpoint, self.read_timeout) {
                    Ok(c) => c,
                    Err(e) => {
                        last = Some(e);
                        continue;
                    }
                },
            };
            let mut client = client;
            match client.call(request.clone(), deadline_ms) {
                Ok(Response::Overloaded { retry_after_ms }) => {
                    // The connection is fine — keep it — but honour the
                    // server's retry hint before the next attempt.
                    self.conn = Some(client);
                    let hint = Duration::from_millis(u64::from(retry_after_ms));
                    if attempt + 1 < self.policy.max_attempts {
                        std::thread::sleep(self.backoff(attempt, hint));
                        continue;
                    }
                    return Ok(Response::Overloaded { retry_after_ms });
                }
                Ok(response) => {
                    self.conn = Some(client);
                    return Ok(response);
                }
                Err(e @ (ClientError::Transport(_) | ClientError::NoReply)) => {
                    // Connection is dead; drop it and retry on a fresh one.
                    last = Some(e);
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
        Err(ClientError::RetriesExhausted(Box::new(
            last.unwrap_or(ClientError::NoReply),
        )))
    }
}
