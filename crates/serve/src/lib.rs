//! `exea-serve`: a fault-tolerant alignment serving daemon.
//!
//! The offline pipeline (train → explain → verify → repair) answers "is
//! this alignment right, and why" in bulk. This crate puts the same
//! pipeline behind a long-lived daemon: models and candidate indexes are
//! loaded once ([`Engine`]), concurrent queries arrive over unix sockets or
//! TCP in a small length-prefixed binary protocol ([`protocol`]), and an
//! admission-batching layer ([`queue`]) funnels them through the
//! order-preserving batch pipeline so batched serving stays bit-identical
//! to sequential.
//!
//! The interesting part is what happens when things go wrong:
//!
//! - **Deadlines** — every request carries one; cooperative checkpoints
//!   between pipeline stages abandon expired work with a typed
//!   [`protocol::Response::DeadlineExceeded`].
//! - **Backpressure** — the admission queue is bounded; past capacity the
//!   daemon answers [`protocol::Response::Overloaded`] with a retry hint
//!   instead of buffering without bound.
//! - **Graceful degradation** — under load, predict requests step down a
//!   configured ladder (sharded full routing → partial routing → SQ8
//!   quantized scan), and every response is tagged with the tier that
//!   served it.
//! - **Panic isolation** — a panicking request becomes a typed
//!   [`protocol::Response::Internal`]; the daemon keeps serving.
//! - **Graceful shutdown** — in-flight work drains under a deadline;
//!   whatever remains is answered [`protocol::Response::ShuttingDown`].
//! - **Deterministic chaos** — [`fault::FaultPlan`] injects I/O errors,
//!   slow reads, torn frames and handler panics on a fixed schedule, so
//!   the chaos suite can assert the daemon *always* answers or rejects
//!   with a typed error — never hangs, never corrupts, never panics.
//!
//! The client side ([`client`]) speaks the same protocol and layers retry
//! with exponential backoff and deterministic jitter over it, honouring
//! the server's `retry_after` hints.

#![forbid(unsafe_code)]

pub mod client;
pub mod engine;
pub mod fault;
pub mod protocol;
pub mod queue;
pub mod server;

pub use client::{Client, ClientError, RetryClient, RetryPolicy};
pub use engine::{Engine, EngineConfig, InsertAck, MutateError, RemoveAck};
pub use fault::{ConnFaults, FaultPlan, FaultyStream};
pub use protocol::{Request, RequestFrame, Response, ResponseFrame, StatsReply, Tier};
pub use queue::{Admission, Batch, PushError};
pub use server::{Deadline, DrainReport, Endpoint, Server, ServerConfig, ServerHandle};

/// Startup-time failures of the daemon (serving-time failures are typed
/// protocol responses instead — the daemon does not die on request errors).
#[derive(Debug)]
pub enum ServeError {
    /// Invalid configuration (bad endpoint list, empty corpus, thread
    /// spawn failure, …).
    Config(String),
    /// An endpoint could not be bound.
    Bind {
        /// The address or socket path that failed.
        endpoint: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config(message) => write!(f, "invalid serve configuration: {message}"),
            ServeError::Bind { endpoint, source } => {
                write!(f, "cannot bind {endpoint}: {source}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Config(_) => None,
            ServeError::Bind { source, .. } => Some(source),
        }
    }
}
