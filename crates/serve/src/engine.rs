//! The warm serving engine: everything expensive happens once, at startup.
//!
//! [`Engine::build`] loads the dataset, trains (or in a real deployment,
//! loads) the alignment model, constructs the [`ExEa`] framework — path
//! enumeration, rule mining, candidate index — and pre-builds one candidate
//! engine per serving tier over the normalized target corpus:
//!
//! | tier | engine | quality |
//! |------|--------|---------|
//! | [`Tier::Full`] | [`MutableIndex`] LSM gather-merge, exhaustive segments | bit-identical to the exact scan over the *live* corpus |
//! | [`Tier::Partial`] | [`ShardedIndex`], partial routing | subset-only, lower fan-out |
//! | [`Tier::Sq8`] | [`QuantizedTable`] ADC scan + exact re-rank | subset-only, cheapest |
//!
//! Request handlers mostly *read*: the engine is `Sync` and shared across
//! every connection and worker thread. The one mutable piece is the live
//! LSM corpus behind [`Engine::insert`] / [`Engine::remove`] — an
//! `RwLock<MutableIndex>` whose write sections (append one row, tombstone
//! one entity, occasionally seal or compact) are short and caller-driven,
//! so concurrent predicts keep flowing between mutations.
//!
//! # Live mutations and bounded staleness
//!
//! Inserts and removes only affect [`Tier::Full`] predictions: the full
//! tier searches the live LSM corpus, so a freshly inserted row is
//! queryable the moment its insert is acknowledged. The degraded tiers
//! ([`Tier::Partial`], [`Tier::Sq8`]) and the explain/verify/repair
//! pipeline keep serving the *offline* corpus snapshot — under load or for
//! explanations the daemon intentionally answers from the (bounded-stale)
//! startup state rather than paying the rebuild.
//!
//! # The `'static` borrow
//!
//! [`ExEa`] borrows its [`KgPair`] and [`TrainedAlignment`]. A daemon's
//! engine lives until process exit, so `build` leaks both (one bounded
//! allocation each per engine, not per request) to obtain `&'static`
//! references. Tests share a single process-wide engine for the same
//! reason.

use crate::protocol::{Candidate, Tier};
use crate::ServeError;
use ea_data::datasets::{load, DatasetName, DatasetScale};
use ea_embed::{
    EmbeddingTable, IvfParams, LsmParams, MutableIndex, QuantizedTable, ShardParams, ShardedIndex,
    Sq8Params,
};
use ea_graph::{AlignmentPair, AlignmentSet, EntityId, KgPair, KgSide};
use ea_models::{build_model, ModelKind, TrainConfig, TrainedAlignment};
use exea_core::{ExEa, ExeaConfig, PairScore, RepairConfig, RepairOutcome, ScoredExplanation};
use std::sync::{PoisonError, RwLock};

/// What to load and how to shard it.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Dataset to serve.
    pub dataset: DatasetName,
    /// Dataset scale.
    pub scale: DatasetScale,
    /// Alignment model to train at startup.
    pub model: ModelKind,
    /// Candidate depth cap per predict request.
    pub max_k: usize,
    /// Shard count for the tiered candidate engines (`0` = automatic).
    pub nshards: usize,
    /// Shards routed at [`Tier::Partial`] (`0` = half of them, at least 1).
    pub partial_route: usize,
    /// Sealed-segment count at which an insert triggers a synchronous
    /// compaction of the live LSM corpus (`0` = default of 8). Compaction
    /// is count-driven — never scheduled by wall clock — so a fixed request
    /// sequence always compacts at the same points.
    pub compact_segments: usize,
    /// Mutable-segment row budget of the live LSM corpus — inserts past it
    /// seal a segment (`0` = the [`LsmParams`] default). Tests lower this
    /// to force seal/compact cycles with few requests.
    pub lsm_seal_rows: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            dataset: DatasetName::ZhEn,
            scale: DatasetScale::Small,
            model: ModelKind::GcnAlign,
            max_k: 50,
            nshards: 4,
            partial_route: 0,
            compact_segments: 0,
            lsm_seal_rows: 0,
        }
    }
}

/// Acknowledgement of one [`Engine::insert`], mirrored on the wire by
/// [`crate::protocol::Response::Insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertAck {
    /// Whether this insert sealed the mutable segment.
    pub sealed: bool,
    /// Live rows in the mutable corpus after the insert.
    pub live_rows: u64,
    /// Sealed segments after the insert (and any triggered compaction).
    pub segments: u32,
}

/// Acknowledgement of one [`Engine::remove`], mirrored on the wire by
/// [`crate::protocol::Response::Remove`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoveAck {
    /// Whether a live row existed (and was tombstoned).
    pub existed: bool,
    /// Live rows in the mutable corpus after the remove.
    pub live_rows: u64,
}

/// Serving-time failure of a live mutation. The daemon never dies on
/// these — the server maps them to typed wire responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutateError {
    /// Caller sent a vector of the wrong width — becomes
    /// [`crate::protocol::Response::BadRequest`].
    Dim {
        /// Dimension the caller sent.
        got: usize,
        /// Dimension the engine serves.
        want: usize,
    },
    /// A seal or compaction failed inside the engine — becomes
    /// [`crate::protocol::Response::Internal`]. The pre-mutation segment
    /// set is still intact and answering (see the LSM crash-consistency
    /// tests).
    Storage(String),
}

impl std::fmt::Display for MutateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MutateError::Dim { got, want } => {
                write!(f, "vector has {got} values, engine dimension is {want}")
            }
            MutateError::Storage(message) => write!(f, "live corpus mutation failed: {message}"),
        }
    }
}

/// The warm serving state shared by every server thread. Read-only except
/// for the live LSM corpus (see the module docs).
pub struct Engine {
    exea: ExEa<'static>,
    state: AlignmentSet,
    source_norm: EmbeddingTable,
    target_norm: EmbeddingTable,
    live: RwLock<MutableIndex>,
    compact_segments: usize,
    sharded: ShardedIndex,
    partial_route: usize,
    quant: QuantizedTable,
    sq8: Sq8Params,
    max_k: usize,
}

impl Engine {
    /// Builds the full serving state: dataset, model, framework, and the
    /// three tier engines. Everything here is the slow path — call once.
    pub fn build(config: &EngineConfig) -> Result<Engine, ServeError> {
        let pair = load(config.dataset, config.scale);
        let trained = build_model(config.model, TrainConfig::fast()).train(&pair);
        Self::from_trained(pair, trained, config)
    }

    /// [`Engine::build`] over an already loaded pair + trained model (the
    /// hook tests and benches use to avoid re-training).
    pub fn from_trained(
        pair: KgPair,
        trained: TrainedAlignment,
        config: &EngineConfig,
    ) -> Result<Engine, ServeError> {
        // One bounded leak per engine: the framework borrows the pair and
        // model for the life of the process (see module docs).
        let pair: &'static KgPair = Box::leak(Box::new(pair));
        let trained: &'static TrainedAlignment = Box::leak(Box::new(trained));

        let exea_config = ExeaConfig::default();
        let exea = ExEa::new(pair, trained, exea_config);
        let state = exea.default_alignment_state();

        let source_table = trained.entities(KgSide::Source);
        let target_table = trained.entities(KgSide::Target);
        if target_table.rows() == 0 {
            return Err(ServeError::Config(
                "cannot serve an empty target corpus".to_string(),
            ));
        }
        let all_sources: Vec<usize> = (0..source_table.rows()).collect();
        let all_targets: Vec<usize> = (0..target_table.rows()).collect();
        let source_norm = source_table.gather_normalized(&all_sources);
        let target_norm = target_table.gather_normalized(&all_targets);

        // Full tier: exhaustive IVF parameters + full routing keeps the
        // sharded engine bit-identical to the exact scan, so the top tier
        // serves exactly what the offline pipeline would.
        let shard_params = ShardParams {
            nshards: config.nshards,
            route_shards: usize::MAX,
            ivf: IvfParams::exhaustive(),
            ..ShardParams::default()
        };
        let sharded = ShardedIndex::build(&target_norm, &shard_params);
        let nshards = sharded.nshards().max(1);
        let partial_route = if config.partial_route == 0 {
            (nshards / 2).max(1)
        } else {
            config.partial_route.clamp(1, nshards)
        };
        let quant = QuantizedTable::build(&target_norm);

        // The live LSM corpus starts as the offline target corpus, inserted
        // in row order so canonical live positions equal target ids and the
        // full tier stays bit-identical to the exact scan. Rows go in *raw*
        // — the index normalises exactly once on insert, like the offline
        // gather above.
        let compact_segments = if config.compact_segments == 0 {
            8
        } else {
            config.compact_segments
        };
        let mut lsm_params = LsmParams::default();
        if config.lsm_seal_rows > 0 {
            lsm_params.seal_rows = config.lsm_seal_rows;
        }
        let mut live = MutableIndex::new(target_table.dim(), lsm_params);
        for row in 0..target_table.rows() {
            live.insert(row as u32, target_table.row(row))
                .map_err(|e| ServeError::Config(format!("live corpus build failed: {e}")))?;
        }
        // Fold the startup segments once so serving begins from the same
        // compacted shape regardless of how the seal budget divided the
        // corpus load.
        if live.segments() >= compact_segments {
            live.compact()
                .map_err(|e| ServeError::Config(format!("live corpus build failed: {e}")))?;
        }

        Ok(Engine {
            exea,
            state,
            source_norm,
            target_norm,
            live: RwLock::new(live),
            compact_segments,
            sharded,
            partial_route,
            quant,
            sq8: Sq8Params::default(),
            max_k: config.max_k.max(1),
        })
    }

    /// The framework (read-only; used by tests for parity checks).
    pub fn exea(&self) -> &ExEa<'static> {
        &self.exea
    }

    /// The shared default alignment state (predictions + seed).
    pub fn state(&self) -> &AlignmentSet {
        &self.state
    }

    /// Acceptance threshold β = sigmoid(θ) of the verification rule.
    pub fn beta(&self) -> f64 {
        self.exea.config().beta()
    }

    /// Number of source entities predict accepts ids below.
    pub fn num_sources(&self) -> usize {
        self.source_norm.rows()
    }

    /// Whether `id` is a known source entity.
    pub fn valid_source(&self, id: u32) -> bool {
        (id as usize) < self.source_norm.rows()
    }

    /// Whether `id` is a known target entity.
    pub fn valid_target(&self, id: u32) -> bool {
        (id as usize) < self.target_norm.rows()
    }

    /// Candidate depth cap per predict request.
    pub fn max_k(&self) -> usize {
        self.max_k
    }

    /// Top-`k` candidate targets for one source entity at an explicit
    /// serving tier. [`Tier::Full`] searches the live LSM corpus and is
    /// bit-identical to the exact scan over it (which, before any
    /// insert/remove, *is* the offline corpus); the degraded tiers are
    /// subset-only approximations over the offline snapshot.
    pub fn predict(&self, source: u32, k: usize, tier: Tier) -> Vec<Candidate> {
        let k = k.clamp(1, self.max_k);
        let mut query = EmbeddingTable::zeros(1, self.source_norm.dim());
        query
            .row_mut(0)
            .copy_from_slice(self.source_norm.row(source as usize));
        let row: Vec<(u32, f32)> = match tier {
            Tier::Full => {
                let live = self.live.read().unwrap_or_else(PoisonError::into_inner);
                live.search(&query, k)
                    .into_iter()
                    .map(|r| (r.index, r.score))
                    .collect()
            }
            Tier::Partial => {
                let mut results = self.sharded.search_routed(&query, k, self.partial_route);
                if results.is_empty() {
                    Vec::new()
                } else {
                    results.swap_remove(0)
                }
            }
            Tier::Sq8 => {
                let mut results = self.quant.search(&query, &self.target_norm, k, &self.sq8);
                if results.is_empty() {
                    Vec::new()
                } else {
                    results.swap_remove(0)
                }
            }
        };
        row.into_iter()
            .map(|(target, score)| Candidate { target, score })
            .collect()
    }

    /// Inserts (or replaces) one live target row. The vector is raw — the
    /// engine normalises it exactly once, like the offline build — and the
    /// row is queryable at [`Tier::Full`] the moment this returns. When the
    /// insert seals a segment and the sealed count reaches the configured
    /// threshold, the same call synchronously compacts the corpus
    /// (count-driven scheduling; see [`EngineConfig::compact_segments`]).
    pub fn insert(&self, entity: u32, vector: &[f32]) -> Result<InsertAck, MutateError> {
        let mut live = self.live.write().unwrap_or_else(PoisonError::into_inner);
        if vector.len() != live.dim() {
            return Err(MutateError::Dim {
                got: vector.len(),
                want: live.dim(),
            });
        }
        let sealed = live
            .insert(entity, vector)
            .map_err(|e| MutateError::Storage(e.to_string()))?;
        if sealed && live.segments() >= self.compact_segments {
            live.compact()
                .map_err(|e| MutateError::Storage(e.to_string()))?;
        }
        Ok(InsertAck {
            sealed,
            live_rows: live.len() as u64,
            segments: live.segments() as u32,
        })
    }

    /// Tombstones one live target row; the entity stops appearing in
    /// [`Tier::Full`] predictions the moment this returns.
    pub fn remove(&self, entity: u32) -> RemoveAck {
        let mut live = self.live.write().unwrap_or_else(PoisonError::into_inner);
        let existed = live.remove(entity);
        RemoveAck {
            existed,
            live_rows: live.len() as u64,
        }
    }

    /// Live rows currently served at [`Tier::Full`].
    pub fn live_rows(&self) -> usize {
        self.live
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Embedding dimension of the served corpus (what [`Engine::insert`]
    /// expects a vector to have).
    pub fn dim(&self) -> usize {
        self.target_norm.dim()
    }

    /// The normalised query vector [`Engine::predict`] uses for `source`
    /// (a test hook: inserting it as a target row makes that row the
    /// guaranteed top candidate for `source`, score ≈ 1).
    pub fn source_vector(&self, source: u32) -> Vec<f32> {
        self.source_norm.row(source as usize).to_vec()
    }

    /// Explains and scores a batch of pairs through the order-preserving
    /// pipeline — bit-identical to sequential per-pair calls regardless of
    /// how requests were batched together.
    pub fn explain_batch(&self, pairs: &[AlignmentPair]) -> Vec<ScoredExplanation> {
        self.exea
            .explain_and_score_batch(pairs, &self.state, true, self.exea.batch_options())
    }

    /// Scores a batch of pairs (confidence + strong-edge flag only) — the
    /// verification entry point, order-preserving like
    /// [`Engine::explain_batch`].
    pub fn score_batch(&self, pairs: &[AlignmentPair]) -> Vec<PairScore> {
        self.exea
            .score_batch(pairs, &self.state, true, self.exea.batch_options())
    }

    /// Runs the full repair pipeline over the model's predictions.
    pub fn repair(&self) -> RepairOutcome {
        self.exea.repair(&RepairConfig::default())
    }

    /// A known-good (source, target) pair for smoke tests: the first model
    /// prediction.
    pub fn sample_pair(&self) -> Option<AlignmentPair> {
        self.exea.predictions().iter().next()
    }

    /// Builds an [`AlignmentPair`] from raw wire ids.
    pub fn pair_of(&self, source: u32, target: u32) -> AlignmentPair {
        AlignmentPair::new(EntityId(source), EntityId(target))
    }
}
