//! The warm serving engine: everything expensive happens once, at startup.
//!
//! [`Engine::build`] loads the dataset, trains (or in a real deployment,
//! loads) the alignment model, constructs the [`ExEa`] framework — path
//! enumeration, rule mining, candidate index — and pre-builds one candidate
//! engine per serving tier over the normalized target corpus:
//!
//! | tier | engine | quality |
//! |------|--------|---------|
//! | [`Tier::Full`] | [`ShardedIndex`], every shard routed, exhaustive IVF | bit-identical to the exact scan |
//! | [`Tier::Partial`] | same shards, partial routing | subset-only, lower fan-out |
//! | [`Tier::Sq8`] | [`QuantizedTable`] ADC scan + exact re-rank | subset-only, cheapest |
//!
//! Request handlers then only *read*: the engine is `Sync` and shared
//! across every connection and worker thread without locks.
//!
//! # The `'static` borrow
//!
//! [`ExEa`] borrows its [`KgPair`] and [`TrainedAlignment`]. A daemon's
//! engine lives until process exit, so `build` leaks both (one bounded
//! allocation each per engine, not per request) to obtain `&'static`
//! references. Tests share a single process-wide engine for the same
//! reason.

use crate::protocol::{Candidate, Tier};
use crate::ServeError;
use ea_data::datasets::{load, DatasetName, DatasetScale};
use ea_embed::{EmbeddingTable, IvfParams, QuantizedTable, ShardParams, ShardedIndex, Sq8Params};
use ea_graph::{AlignmentPair, AlignmentSet, EntityId, KgPair, KgSide};
use ea_models::{build_model, ModelKind, TrainConfig, TrainedAlignment};
use exea_core::{ExEa, ExeaConfig, PairScore, RepairConfig, RepairOutcome, ScoredExplanation};

/// What to load and how to shard it.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Dataset to serve.
    pub dataset: DatasetName,
    /// Dataset scale.
    pub scale: DatasetScale,
    /// Alignment model to train at startup.
    pub model: ModelKind,
    /// Candidate depth cap per predict request.
    pub max_k: usize,
    /// Shard count for the tiered candidate engines (`0` = automatic).
    pub nshards: usize,
    /// Shards routed at [`Tier::Partial`] (`0` = half of them, at least 1).
    pub partial_route: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            dataset: DatasetName::ZhEn,
            scale: DatasetScale::Small,
            model: ModelKind::GcnAlign,
            max_k: 50,
            nshards: 4,
            partial_route: 0,
        }
    }
}

/// The warm, read-only serving state shared by every server thread.
pub struct Engine {
    exea: ExEa<'static>,
    state: AlignmentSet,
    source_norm: EmbeddingTable,
    target_norm: EmbeddingTable,
    sharded: ShardedIndex,
    partial_route: usize,
    quant: QuantizedTable,
    sq8: Sq8Params,
    max_k: usize,
}

impl Engine {
    /// Builds the full serving state: dataset, model, framework, and the
    /// three tier engines. Everything here is the slow path — call once.
    pub fn build(config: &EngineConfig) -> Result<Engine, ServeError> {
        let pair = load(config.dataset, config.scale);
        let trained = build_model(config.model, TrainConfig::fast()).train(&pair);
        Self::from_trained(pair, trained, config)
    }

    /// [`Engine::build`] over an already loaded pair + trained model (the
    /// hook tests and benches use to avoid re-training).
    pub fn from_trained(
        pair: KgPair,
        trained: TrainedAlignment,
        config: &EngineConfig,
    ) -> Result<Engine, ServeError> {
        // One bounded leak per engine: the framework borrows the pair and
        // model for the life of the process (see module docs).
        let pair: &'static KgPair = Box::leak(Box::new(pair));
        let trained: &'static TrainedAlignment = Box::leak(Box::new(trained));

        let exea_config = ExeaConfig::default();
        let exea = ExEa::new(pair, trained, exea_config);
        let state = exea.default_alignment_state();

        let source_table = trained.entities(KgSide::Source);
        let target_table = trained.entities(KgSide::Target);
        if target_table.rows() == 0 {
            return Err(ServeError::Config(
                "cannot serve an empty target corpus".to_string(),
            ));
        }
        let all_sources: Vec<usize> = (0..source_table.rows()).collect();
        let all_targets: Vec<usize> = (0..target_table.rows()).collect();
        let source_norm = source_table.gather_normalized(&all_sources);
        let target_norm = target_table.gather_normalized(&all_targets);

        // Full tier: exhaustive IVF parameters + full routing keeps the
        // sharded engine bit-identical to the exact scan, so the top tier
        // serves exactly what the offline pipeline would.
        let shard_params = ShardParams {
            nshards: config.nshards,
            route_shards: usize::MAX,
            ivf: IvfParams::exhaustive(),
            ..ShardParams::default()
        };
        let sharded = ShardedIndex::build(&target_norm, &shard_params);
        let nshards = sharded.nshards().max(1);
        let partial_route = if config.partial_route == 0 {
            (nshards / 2).max(1)
        } else {
            config.partial_route.clamp(1, nshards)
        };
        let quant = QuantizedTable::build(&target_norm);

        Ok(Engine {
            exea,
            state,
            source_norm,
            target_norm,
            sharded,
            partial_route,
            quant,
            sq8: Sq8Params::default(),
            max_k: config.max_k.max(1),
        })
    }

    /// The framework (read-only; used by tests for parity checks).
    pub fn exea(&self) -> &ExEa<'static> {
        &self.exea
    }

    /// The shared default alignment state (predictions + seed).
    pub fn state(&self) -> &AlignmentSet {
        &self.state
    }

    /// Acceptance threshold β = sigmoid(θ) of the verification rule.
    pub fn beta(&self) -> f64 {
        self.exea.config().beta()
    }

    /// Number of source entities predict accepts ids below.
    pub fn num_sources(&self) -> usize {
        self.source_norm.rows()
    }

    /// Whether `id` is a known source entity.
    pub fn valid_source(&self, id: u32) -> bool {
        (id as usize) < self.source_norm.rows()
    }

    /// Whether `id` is a known target entity.
    pub fn valid_target(&self, id: u32) -> bool {
        (id as usize) < self.target_norm.rows()
    }

    /// Candidate depth cap per predict request.
    pub fn max_k(&self) -> usize {
        self.max_k
    }

    /// Top-`k` candidate targets for one source entity at an explicit
    /// serving tier. [`Tier::Full`] is bit-identical to the exact scan;
    /// the degraded tiers are subset-only approximations of it.
    pub fn predict(&self, source: u32, k: usize, tier: Tier) -> Vec<Candidate> {
        let k = k.clamp(1, self.max_k);
        let mut query = EmbeddingTable::zeros(1, self.source_norm.dim());
        query
            .row_mut(0)
            .copy_from_slice(self.source_norm.row(source as usize));
        let mut results = match tier {
            Tier::Full => self
                .sharded
                .search_routed(&query, k, self.sharded.nshards()),
            Tier::Partial => self.sharded.search_routed(&query, k, self.partial_route),
            Tier::Sq8 => self.quant.search(&query, &self.target_norm, k, &self.sq8),
        };
        let row = if results.is_empty() {
            Vec::new()
        } else {
            results.swap_remove(0)
        };
        row.into_iter()
            .map(|(target, score)| Candidate { target, score })
            .collect()
    }

    /// Explains and scores a batch of pairs through the order-preserving
    /// pipeline — bit-identical to sequential per-pair calls regardless of
    /// how requests were batched together.
    pub fn explain_batch(&self, pairs: &[AlignmentPair]) -> Vec<ScoredExplanation> {
        self.exea
            .explain_and_score_batch(pairs, &self.state, true, self.exea.batch_options())
    }

    /// Scores a batch of pairs (confidence + strong-edge flag only) — the
    /// verification entry point, order-preserving like
    /// [`Engine::explain_batch`].
    pub fn score_batch(&self, pairs: &[AlignmentPair]) -> Vec<PairScore> {
        self.exea
            .score_batch(pairs, &self.state, true, self.exea.batch_options())
    }

    /// Runs the full repair pipeline over the model's predictions.
    pub fn repair(&self) -> RepairOutcome {
        self.exea.repair(&RepairConfig::default())
    }

    /// A known-good (source, target) pair for smoke tests: the first model
    /// prediction.
    pub fn sample_pair(&self) -> Option<AlignmentPair> {
        self.exea.predictions().iter().next()
    }

    /// Builds an [`AlignmentPair`] from raw wire ids.
    pub fn pair_of(&self, source: u32, target: u32) -> AlignmentPair {
        AlignmentPair::new(EntityId(source), EntityId(target))
    }
}
