//! Synthetic KG-pair generator.
//!
//! The generator derives two observable knowledge graphs from one latent
//! "world" graph:
//!
//! 1. A world graph over `world_entities` entities and `world_relations`
//!    relation concepts is grown by preferential attachment (hub-heavy degree
//!    distribution, like real encyclopaedic KGs) plus extra random triples up
//!    to a target density. A subset of relation concepts is marked
//!    *functional* (at most one object per subject), which gives the relation
//!    functionality distribution that ExEA's ADG edge weights rely on.
//! 2. Each side keeps every world triple independently with probability
//!    `source_keep` / `target_keep` (KG incompleteness), adds side-specific
//!    extra entities attached to random world entities, and adds a small rate
//!    of noise triples.
//! 3. Every world entity appears on both sides, giving the gold alignment;
//!    a `seed_ratio` fraction becomes the seed (training) alignment and the
//!    rest the reference (test) alignment.
//!
//! Cross-lingual pairs (DBP15K-style) use the *same* relation concepts on
//! both sides under different surface names; heterogeneous pairs
//! (OpenEA-style) additionally merge groups of relation concepts on the
//! target side so the two schemata genuinely disagree.

use ea_graph::{AlignmentPair, AlignmentSet, KgPair, KnowledgeGraph};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;

/// Configuration of the synthetic KG-pair generator.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Dataset name carried into the produced [`KgPair`].
    pub name: String,
    /// Number of latent world entities (= number of gold alignment pairs).
    pub world_entities: usize,
    /// Number of latent relation concepts.
    pub world_relations: usize,
    /// Target average number of triples per entity in the world graph.
    pub avg_world_degree: f64,
    /// Probability of keeping a world triple in the source graph.
    pub source_keep: f64,
    /// Probability of keeping a world triple in the target graph.
    pub target_keep: f64,
    /// Side-specific entities added to each graph (not aligned to anything).
    pub extra_entities_per_side: usize,
    /// Noise triples per entity added to each side.
    pub extra_triple_rate: f64,
    /// Whether the target side uses a merged (heterogeneous) relation schema.
    pub heterogeneous_schema: bool,
    /// How many world relation concepts are merged into one target relation
    /// when `heterogeneous_schema` is set (1 = no merging).
    pub relation_merge_factor: usize,
    /// Fraction of gold alignment pairs used as seed (training) alignment.
    pub seed_ratio: f64,
    /// Name prefix for source-side entities and relations.
    pub source_prefix: String,
    /// Name prefix for target-side entities and relations.
    pub target_prefix: String,
    /// RNG seed; the generator is fully deterministic given the config.
    pub rng_seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            name: "synthetic".to_owned(),
            world_entities: 500,
            world_relations: 24,
            avg_world_degree: 4.0,
            source_keep: 0.85,
            target_keep: 0.85,
            extra_entities_per_side: 50,
            extra_triple_rate: 0.3,
            heterogeneous_schema: false,
            relation_merge_factor: 1,
            seed_ratio: 0.3,
            source_prefix: "src".to_owned(),
            target_prefix: "tgt".to_owned(),
            rng_seed: 42,
        }
    }
}

impl SyntheticConfig {
    /// Validates the configuration, panicking with a descriptive message on
    /// nonsensical values. Called by [`SyntheticGenerator::new`].
    fn validate(&self) {
        assert!(self.world_entities >= 10, "need at least 10 world entities");
        assert!(self.world_relations >= 2, "need at least 2 relations");
        assert!(
            (0.0..=1.0).contains(&self.source_keep) && (0.0..=1.0).contains(&self.target_keep),
            "keep probabilities must be in [0,1]"
        );
        assert!(
            (0.0..1.0).contains(&self.seed_ratio),
            "seed ratio must be in [0,1)"
        );
        assert!(self.relation_merge_factor >= 1, "merge factor must be >= 1");
        assert!(self.avg_world_degree >= 1.0, "average degree must be >= 1");
    }
}

/// A latent world triple expressed over world entity / relation indexes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct WorldTriple {
    head: usize,
    relation: usize,
    tail: usize,
}

/// Deterministic synthetic KG-pair generator.
#[derive(Debug, Clone)]
pub struct SyntheticGenerator {
    config: SyntheticConfig,
}

impl SyntheticGenerator {
    /// Creates a generator after validating the configuration.
    pub fn new(config: SyntheticConfig) -> Self {
        config.validate();
        Self { config }
    }

    /// Accesses the configuration.
    pub fn config(&self) -> &SyntheticConfig {
        &self.config
    }

    /// Generates the KG pair.
    pub fn generate(&self) -> KgPair {
        let cfg = &self.config;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.rng_seed);

        let world = self.generate_world(&mut rng);

        let (source, source_entity_ids) =
            self.build_side(&world, cfg.source_keep, &cfg.source_prefix, false, &mut rng);
        let (target, target_entity_ids) = self.build_side(
            &world,
            cfg.target_keep,
            &cfg.target_prefix,
            cfg.heterogeneous_schema,
            &mut rng,
        );

        // Gold alignment: world entity i ↔ its incarnation on both sides.
        let mut gold: Vec<AlignmentPair> = (0..cfg.world_entities)
            .map(|i| AlignmentPair::new(source_entity_ids[i], target_entity_ids[i]))
            .collect();
        gold.shuffle(&mut rng);
        let seed_count = (gold.len() as f64 * cfg.seed_ratio).round() as usize;
        let seed: AlignmentSet = gold[..seed_count].iter().copied().collect();
        let reference: AlignmentSet = gold[seed_count..].iter().copied().collect();

        KgPair::new(cfg.name.clone(), source, target, seed, reference)
            .expect("generator produces consistent alignment by construction")
    }

    /// Grows the latent world graph.
    fn generate_world(&self, rng: &mut ChaCha8Rng) -> Vec<WorldTriple> {
        let cfg = &self.config;
        let n = cfg.world_entities;
        let target_triples = (n as f64 * cfg.avg_world_degree / 2.0).ceil() as usize;

        let mut triples: Vec<WorldTriple> = Vec::with_capacity(target_triples);
        let mut triple_set: HashSet<WorldTriple> = HashSet::with_capacity(target_triples);
        let mut degree = vec![0usize; n];
        // Relations with index < functional_count behave functionally: a head
        // entity carries at most one triple of that relation.
        let functional_count = cfg.world_relations / 3;
        let mut functional_used: HashSet<(usize, usize)> = HashSet::new();

        let push = |head: usize,
                    relation: usize,
                    tail: usize,
                    triples: &mut Vec<WorldTriple>,
                    triple_set: &mut HashSet<WorldTriple>,
                    degree: &mut Vec<usize>,
                    functional_used: &mut HashSet<(usize, usize)>|
         -> bool {
            if head == tail {
                return false;
            }
            if relation < functional_count && !functional_used.insert((head, relation)) {
                return false;
            }
            let t = WorldTriple {
                head,
                relation,
                tail,
            };
            if !triple_set.insert(t) {
                if relation < functional_count {
                    // keep the marker, the triple exists anyway
                }
                return false;
            }
            triples.push(t);
            degree[head] += 1;
            degree[tail] += 1;
            true
        };

        // Phase 1: preferential attachment backbone. Entity i (from 2..n)
        // connects to `m` earlier entities chosen proportionally to degree+1.
        let m = 2usize;
        push(
            0,
            self.sample_relation(rng),
            1,
            &mut triples,
            &mut triple_set,
            &mut degree,
            &mut functional_used,
        );
        for i in 2..n {
            for _ in 0..m {
                let other = sample_preferential(&degree[..i], rng);
                let relation = self.sample_relation(rng);
                // Orientation varies so both in- and out-degrees grow.
                if rng.gen_bool(0.5) {
                    push(
                        i,
                        relation,
                        other,
                        &mut triples,
                        &mut triple_set,
                        &mut degree,
                        &mut functional_used,
                    );
                } else {
                    push(
                        other,
                        relation,
                        i,
                        &mut triples,
                        &mut triple_set,
                        &mut degree,
                        &mut functional_used,
                    );
                }
            }
        }

        // Phase 2: densify to the target triple count with preferential
        // endpoints, which creates the hub structure of real KGs.
        let mut attempts = 0usize;
        while triples.len() < target_triples && attempts < target_triples * 20 {
            attempts += 1;
            let head = sample_preferential(&degree, rng);
            let tail = sample_preferential(&degree, rng);
            let relation = self.sample_relation(rng);
            push(
                head,
                relation,
                tail,
                &mut triples,
                &mut triple_set,
                &mut degree,
                &mut functional_used,
            );
        }
        triples
    }

    /// Zipf-like relation sampling: squaring a uniform variate concentrates
    /// mass on low relation indexes, mimicking the skewed relation frequency
    /// of encyclopaedic KGs.
    fn sample_relation(&self, rng: &mut ChaCha8Rng) -> usize {
        let u: f64 = rng.gen::<f64>();
        let skewed = u * u;
        ((skewed * self.config.world_relations as f64) as usize)
            .min(self.config.world_relations - 1)
    }

    /// Materialises one observable side of the pair.
    fn build_side(
        &self,
        world: &[WorldTriple],
        keep: f64,
        prefix: &str,
        heterogeneous: bool,
        rng: &mut ChaCha8Rng,
    ) -> (KnowledgeGraph, Vec<ea_graph::EntityId>) {
        let cfg = &self.config;
        let merge = if heterogeneous {
            cfg.relation_merge_factor.max(1)
        } else {
            1
        };
        let side_relations = cfg.world_relations.div_ceil(merge);

        let mut kg = KnowledgeGraph::with_capacity(
            cfg.world_entities + cfg.extra_entities_per_side,
            side_relations,
            world.len(),
        );

        // World entities first so alignment can be reconstructed by index.
        let entity_ids: Vec<ea_graph::EntityId> = (0..cfg.world_entities)
            .map(|i| kg.add_entity(&format!("{prefix}:ent_{}", entity_token(i))))
            .collect();
        let relation_ids: Vec<ea_graph::RelationId> = (0..side_relations)
            .map(|r| {
                if heterogeneous {
                    kg.add_relation(&format!("{prefix}:P{:03}", r * 7 + 13))
                } else {
                    kg.add_relation(&format!("{prefix}:rel_{r}"))
                }
            })
            .collect();

        // Keep world triples with the side's completeness probability.
        for t in world {
            if rng.gen_bool(keep) {
                let relation = relation_ids[t.relation / merge];
                let triple =
                    ea_graph::Triple::new(entity_ids[t.head], relation, entity_ids[t.tail]);
                let _ = kg.add_triple(triple);
            }
        }

        // Guarantee that every aligned (world) entity is structurally present
        // on this side: an isolated entity could never be aligned from
        // structure alone and would also be lost by the TSV serialisation.
        for (i, &eid) in entity_ids.iter().enumerate() {
            if kg.degree(eid) == 0 {
                let mut other = rng.gen_range(0..cfg.world_entities);
                if other == i {
                    other = (other + 1) % cfg.world_entities;
                }
                let relation = relation_ids[rng.gen_range(0..side_relations)];
                let _ = kg.add_triple(ea_graph::Triple::new(eid, relation, entity_ids[other]));
            }
        }

        // Side-specific entities attached to random world entities.
        for j in 0..cfg.extra_entities_per_side {
            let extra = kg.add_entity(&format!("{prefix}:only_{j}"));
            let links = rng.gen_range(1..=3);
            for _ in 0..links {
                let anchor = entity_ids[rng.gen_range(0..cfg.world_entities)];
                let relation = relation_ids[rng.gen_range(0..side_relations)];
                let triple = if rng.gen_bool(0.5) {
                    ea_graph::Triple::new(extra, relation, anchor)
                } else {
                    ea_graph::Triple::new(anchor, relation, extra)
                };
                let _ = kg.add_triple(triple);
            }
        }

        // Noise triples between random world entities.
        let noise_count = (cfg.world_entities as f64 * cfg.extra_triple_rate) as usize;
        for _ in 0..noise_count {
            let h = entity_ids[rng.gen_range(0..cfg.world_entities)];
            let t = entity_ids[rng.gen_range(0..cfg.world_entities)];
            if h == t {
                continue;
            }
            let r = relation_ids[rng.gen_range(0..side_relations)];
            let _ = kg.add_triple(ea_graph::Triple::new(h, r, t));
        }

        (kg, entity_ids)
    }
}

/// Encodes a world-entity index as a short pseudo-word, so entity names are
/// not purely numeric. A fraction of entities additionally carries a numeric
/// "generation" suffix (like product lines in DBpedia), which is what makes
/// name-only matching genuinely ambiguous for them.
pub fn entity_token(index: usize) -> String {
    let mut n = index;
    let mut word = String::new();
    loop {
        word.push((b'a' + (n % 26) as u8) as char);
        n /= 26;
        if n == 0 {
            break;
        }
    }
    if index % 7 == 3 {
        format!("{word}_{}", index % 10)
    } else {
        word
    }
}

/// Samples an index proportionally to `weights[i] + 1`.
fn sample_preferential<R: Rng>(weights: &[usize], rng: &mut R) -> usize {
    let total: usize = weights.iter().map(|&w| w + 1).sum();
    if total == 0 || weights.is_empty() {
        return 0;
    }
    let mut pick = rng.gen_range(0..total);
    for (i, &w) in weights.iter().enumerate() {
        let w = w + 1;
        if pick < w {
            return i;
        }
        pick -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SyntheticConfig {
        SyntheticConfig {
            name: "test-small".to_owned(),
            world_entities: 120,
            world_relations: 10,
            avg_world_degree: 4.0,
            extra_entities_per_side: 15,
            ..SyntheticConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticGenerator::new(small_config()).generate();
        let b = SyntheticGenerator::new(small_config()).generate();
        assert_eq!(a.source.num_triples(), b.source.num_triples());
        assert_eq!(a.target.num_triples(), b.target.num_triples());
        assert_eq!(a.seed.to_vec(), b.seed.to_vec());
        assert_eq!(a.reference.to_vec(), b.reference.to_vec());
    }

    #[test]
    fn different_seeds_produce_different_graphs() {
        let mut cfg = small_config();
        let a = SyntheticGenerator::new(cfg.clone()).generate();
        cfg.rng_seed = 7;
        let b = SyntheticGenerator::new(cfg).generate();
        assert_ne!(
            (a.source.num_triples(), a.target.num_triples()),
            (b.source.num_triples(), b.target.num_triples())
        );
    }

    #[test]
    fn alignment_counts_match_configuration() {
        let cfg = small_config();
        let pair = SyntheticGenerator::new(cfg.clone()).generate();
        let total = pair.seed.len() + pair.reference.len();
        assert_eq!(total, cfg.world_entities);
        let expected_seed = (cfg.world_entities as f64 * cfg.seed_ratio).round() as usize;
        assert_eq!(pair.seed.len(), expected_seed);
        assert!(pair.seed.is_one_to_one());
        assert!(pair.reference.is_one_to_one());
    }

    #[test]
    fn both_sides_contain_all_world_entities() {
        let cfg = small_config();
        let pair = SyntheticGenerator::new(cfg.clone()).generate();
        assert_eq!(
            pair.source.num_entities(),
            cfg.world_entities + cfg.extra_entities_per_side
        );
        assert_eq!(
            pair.target.num_entities(),
            cfg.world_entities + cfg.extra_entities_per_side
        );
        // Source-prefixed names on the source side only.
        assert!(pair.source.entity_by_name("src:ent_a").is_some());
        assert!(pair.source.entity_by_name("tgt:ent_a").is_none());
        assert!(pair.target.entity_by_name("tgt:ent_a").is_some());
    }

    #[test]
    fn keep_probability_controls_completeness() {
        let mut sparse_cfg = small_config();
        sparse_cfg.source_keep = 0.5;
        sparse_cfg.target_keep = 1.0;
        let pair = SyntheticGenerator::new(sparse_cfg).generate();
        assert!(
            pair.source.num_triples() < pair.target.num_triples(),
            "source with keep=0.5 should be sparser than target with keep=1.0"
        );
    }

    #[test]
    fn heterogeneous_schema_merges_relations() {
        let mut cfg = small_config();
        cfg.heterogeneous_schema = true;
        cfg.relation_merge_factor = 2;
        let pair = SyntheticGenerator::new(cfg.clone()).generate();
        assert_eq!(pair.source.num_relations(), cfg.world_relations);
        assert_eq!(pair.target.num_relations(), cfg.world_relations.div_ceil(2));
        // Heterogeneous relation names follow the P-number scheme.
        assert!(pair.target.relation_by_name("tgt:P013").is_some());
    }

    #[test]
    fn graphs_are_reasonably_dense() {
        let pair = SyntheticGenerator::new(small_config()).generate();
        let stats = pair.stats();
        assert!(stats.source.average_degree > 1.5);
        assert!(stats.target.average_degree > 1.5);
        // Hubs exist thanks to preferential attachment.
        assert!(stats.source.max_degree >= 8);
    }

    #[test]
    #[should_panic(expected = "at least 10 world entities")]
    fn tiny_world_is_rejected() {
        let cfg = SyntheticConfig {
            world_entities: 3,
            ..SyntheticConfig::default()
        };
        let _ = SyntheticGenerator::new(cfg);
    }

    #[test]
    #[should_panic(expected = "seed ratio")]
    fn invalid_seed_ratio_is_rejected() {
        let cfg = SyntheticConfig {
            seed_ratio: 1.5,
            ..SyntheticConfig::default()
        };
        let _ = SyntheticGenerator::new(cfg);
    }

    #[test]
    fn preferential_sampling_prefers_heavy_nodes() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let weights = vec![100usize, 0, 0, 0];
        let mut hits = [0usize; 4];
        for _ in 0..1000 {
            hits[sample_preferential(&weights, &mut rng)] += 1;
        }
        assert!(hits[0] > 900, "heavy node should dominate: {hits:?}");
    }
}
