//! Seed-alignment noise injection for the robustness experiments.
//!
//! Section V-E of the paper corrupts 750 of the 4,500 seed alignment pairs by
//! "randomly disrupting the entities", i.e. replacing the target entity of a
//! corrupted pair with a random different target entity. The corrupted seed is
//! then used to retrain models and re-run explanation generation and repair
//! (Tables VII and VIII).

use ea_graph::{AlignmentPair, AlignmentSet, KgPair};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Returns a copy of `seed` in which `num_corrupted` pairs have their target
/// entity replaced by a random *different* target entity drawn from the
/// target graph of `pair`.
///
/// If `num_corrupted` exceeds the seed size, every pair is corrupted. The
/// corruption is deterministic for a given `rng_seed`.
pub fn corrupt_seed_alignment(
    pair: &KgPair,
    seed: &AlignmentSet,
    num_corrupted: usize,
    rng_seed: u64,
) -> AlignmentSet {
    let mut rng = ChaCha8Rng::seed_from_u64(rng_seed);
    let mut pairs = seed.to_vec();
    pairs.shuffle(&mut rng);
    let num_corrupted = num_corrupted.min(pairs.len());
    let n_targets = pair.target.num_entities();

    let mut corrupted = AlignmentSet::new();
    for (i, p) in pairs.iter().enumerate() {
        if i < num_corrupted && n_targets > 1 {
            let mut wrong = p.target;
            while wrong == p.target {
                wrong = ea_graph::EntityId(rng.gen_range(0..n_targets as u32));
            }
            corrupted.insert(AlignmentPair::new(p.source, wrong));
        } else {
            corrupted.insert(*p);
        }
    }
    corrupted
}

/// Convenience wrapper: returns a new [`KgPair`] whose seed alignment has
/// `fraction` of its pairs corrupted (rounded to the nearest integer).
pub fn with_noisy_seed(pair: &KgPair, fraction: f64, rng_seed: u64) -> KgPair {
    let num = (pair.seed.len() as f64 * fraction.clamp(0.0, 1.0)).round() as usize;
    let noisy = corrupt_seed_alignment(pair, &pair.seed, num, rng_seed);
    pair.with_seed(noisy)
        .expect("corrupted seed only references existing entities")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{load, DatasetName, DatasetScale};

    #[test]
    fn corruption_changes_requested_number_of_pairs() {
        let pair = load(DatasetName::ZhEn, DatasetScale::Small);
        let corrupted = corrupt_seed_alignment(&pair, &pair.seed, 20, 7);
        assert_eq!(corrupted.len(), pair.seed.len());
        let changed = pair
            .seed
            .iter()
            .filter(|p| corrupted.target_of(p.source) != Some(p.target))
            .count();
        assert_eq!(changed, 20);
    }

    #[test]
    fn zero_corruption_is_identity() {
        let pair = load(DatasetName::ZhEn, DatasetScale::Small);
        let corrupted = corrupt_seed_alignment(&pair, &pair.seed, 0, 7);
        assert_eq!(corrupted.to_vec(), pair.seed.to_vec());
    }

    #[test]
    fn corruption_is_deterministic() {
        let pair = load(DatasetName::ZhEn, DatasetScale::Small);
        let a = corrupt_seed_alignment(&pair, &pair.seed, 15, 3);
        let b = corrupt_seed_alignment(&pair, &pair.seed, 15, 3);
        assert_eq!(a.to_vec(), b.to_vec());
        let c = corrupt_seed_alignment(&pair, &pair.seed, 15, 4);
        assert_ne!(a.to_vec(), c.to_vec());
    }

    #[test]
    fn oversized_corruption_is_clamped() {
        let pair = load(DatasetName::ZhEn, DatasetScale::Small);
        let corrupted = corrupt_seed_alignment(&pair, &pair.seed, 10_000, 1);
        assert_eq!(corrupted.len(), pair.seed.len());
        let unchanged = pair
            .seed
            .iter()
            .filter(|p| corrupted.target_of(p.source) == Some(p.target))
            .count();
        // With every pair corrupted, essentially none should keep its target.
        assert!(unchanged < pair.seed.len() / 20);
    }

    #[test]
    fn with_noisy_seed_follows_paper_fraction() {
        // The paper corrupts 750 / 4500 = 1/6 of the seed.
        let pair = load(DatasetName::ZhEn, DatasetScale::Small);
        let noisy = with_noisy_seed(&pair, 1.0 / 6.0, 99);
        assert_eq!(noisy.seed.len(), pair.seed.len());
        let changed = pair
            .seed
            .iter()
            .filter(|p| noisy.seed.target_of(p.source) != Some(p.target))
            .count();
        let expected = (pair.seed.len() as f64 / 6.0).round() as usize;
        assert_eq!(changed, expected);
        // Reference alignment untouched.
        assert_eq!(noisy.reference.to_vec(), pair.reference.to_vec());
    }
}
