//! Dataset substrate for entity-alignment experiments.
//!
//! The ExEA paper evaluates on DBP15K (ZH-EN, JA-EN, FR-EN) and two OpenEA
//! pairs (DBP-WD-V1, DBP-YAGO-V1). Those corpora are large extractions from
//! DBpedia, Wikidata and YAGO and are not redistributable inside this
//! repository, so this crate provides two things instead:
//!
//! 1. A **synthetic KG-pair generator** ([`generator`]) that produces pairs of
//!    knowledge graphs derived from a shared latent "world" graph, with
//!    controllable density, incompleteness, schema heterogeneity and
//!    side-specific noise. The named configurations in [`datasets`] are
//!    calibrated so the *relative* difficulty ordering of the five benchmark
//!    datasets is preserved (see `DESIGN.md` §3 for the substitution
//!    argument).
//! 2. A **TSV loader/saver** ([`tsv`]) using the DBP15K file layout
//!    (`triples_1`, `triples_2`, `ent_links`), so the real benchmark files can
//!    be dropped in without code changes.
//!
//! Seed-alignment noise injection for the robustness experiments (Tables VII
//! and VIII of the paper) lives in [`noise`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
pub mod generator;
pub mod noise;
pub mod tsv;

pub use datasets::{DatasetName, DatasetScale};
pub use generator::{SyntheticConfig, SyntheticGenerator};
pub use noise::corrupt_seed_alignment;
