//! Named dataset configurations mirroring the paper's five benchmarks.
//!
//! Each configuration instantiates [`SyntheticConfig`] with parameters chosen
//! so the *relative* character of the original dataset is preserved:
//!
//! * **ZH-EN / JA-EN / FR-EN** (DBP15K) — cross-lingual pairs with a shared
//!   relation schema under different surface names. FR-EN is the densest
//!   (most triples per entity, paper §V-C2); JA-EN drops the most triples and
//!   carries the most noise, making it the hardest to repair.
//! * **DBP-WD / DBP-YAGO** (OpenEA V1) — heterogeneous-schema pairs where the
//!   target side merges relation concepts, creating the large relation
//!   semantic gap the paper describes for these datasets.
//!
//! The [`DatasetScale`] knob scales the number of alignment pairs: `Small`
//! keeps unit/integration tests fast, `Paper` approaches the published 15k
//! pairs for users who want to run the full-size experiment.

use crate::generator::{SyntheticConfig, SyntheticGenerator};
use ea_graph::KgPair;

/// The five benchmark datasets of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetName {
    /// DBP15K Chinese–English.
    ZhEn,
    /// DBP15K Japanese–English.
    JaEn,
    /// DBP15K French–English.
    FrEn,
    /// OpenEA DBpedia–Wikidata V1 (heterogeneous schema).
    DbpWd,
    /// OpenEA DBpedia–YAGO V1 (heterogeneous schema).
    DbpYago,
}

impl DatasetName {
    /// All five datasets, in the order the paper's tables list them.
    pub fn all() -> [DatasetName; 5] {
        [
            DatasetName::ZhEn,
            DatasetName::JaEn,
            DatasetName::FrEn,
            DatasetName::DbpWd,
            DatasetName::DbpYago,
        ]
    }

    /// The label used in the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            DatasetName::ZhEn => "ZH-EN",
            DatasetName::JaEn => "JA-EN",
            DatasetName::FrEn => "FR-EN",
            DatasetName::DbpWd => "DBP-WD",
            DatasetName::DbpYago => "DBP-YAGO",
        }
    }

    /// Whether the dataset pairs KGs with different schemata.
    pub fn is_heterogeneous(&self) -> bool {
        matches!(self, DatasetName::DbpWd | DatasetName::DbpYago)
    }
}

impl std::fmt::Display for DatasetName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How large a synthetic dataset to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetScale {
    /// A few hundred alignment pairs — fast enough for unit tests.
    Small,
    /// Roughly two thousand alignment pairs — the default for the benchmark
    /// harness; completes on a laptop CPU in minutes.
    Bench,
    /// Fifteen thousand alignment pairs, matching the published datasets.
    Paper,
}

impl DatasetScale {
    /// Number of gold alignment pairs at this scale.
    pub fn alignment_pairs(&self) -> usize {
        match self {
            DatasetScale::Small => 300,
            DatasetScale::Bench => 2000,
            DatasetScale::Paper => 15000,
        }
    }
}

/// Builds the generator configuration for a named dataset at a given scale.
pub fn config_for(name: DatasetName, scale: DatasetScale) -> SyntheticConfig {
    let n = scale.alignment_pairs();
    let base = SyntheticConfig {
        name: name.label().to_owned(),
        world_entities: n,
        extra_entities_per_side: n / 10,
        seed_ratio: 0.3,
        ..SyntheticConfig::default()
    };
    match name {
        DatasetName::ZhEn => SyntheticConfig {
            world_relations: 28,
            avg_world_degree: 8.0,
            source_keep: 0.84,
            target_keep: 0.90,
            extra_triple_rate: 0.30,
            source_prefix: "zh".to_owned(),
            target_prefix: "en".to_owned(),
            rng_seed: 101,
            ..base
        },
        DatasetName::JaEn => SyntheticConfig {
            world_relations: 26,
            avg_world_degree: 7.0,
            source_keep: 0.76,
            target_keep: 0.86,
            extra_triple_rate: 0.45,
            source_prefix: "ja".to_owned(),
            target_prefix: "en".to_owned(),
            rng_seed: 202,
            ..base
        },
        DatasetName::FrEn => SyntheticConfig {
            world_relations: 32,
            avg_world_degree: 10.0,
            source_keep: 0.88,
            target_keep: 0.92,
            extra_triple_rate: 0.25,
            source_prefix: "fr".to_owned(),
            target_prefix: "en".to_owned(),
            rng_seed: 303,
            ..base
        },
        DatasetName::DbpWd => SyntheticConfig {
            world_relations: 30,
            avg_world_degree: 8.0,
            source_keep: 0.86,
            target_keep: 0.82,
            extra_triple_rate: 0.35,
            heterogeneous_schema: true,
            relation_merge_factor: 2,
            source_prefix: "dbp".to_owned(),
            target_prefix: "wd".to_owned(),
            rng_seed: 404,
            ..base
        },
        DatasetName::DbpYago => SyntheticConfig {
            world_relations: 24,
            avg_world_degree: 8.5,
            source_keep: 0.88,
            target_keep: 0.84,
            extra_triple_rate: 0.30,
            heterogeneous_schema: true,
            relation_merge_factor: 3,
            source_prefix: "dbp".to_owned(),
            target_prefix: "yago".to_owned(),
            rng_seed: 505,
            ..base
        },
    }
}

/// Generates a named dataset at the requested scale.
pub fn load(name: DatasetName, scale: DatasetScale) -> KgPair {
    SyntheticGenerator::new(config_for(name, scale)).generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_generate_at_small_scale() {
        for name in DatasetName::all() {
            let pair = load(name, DatasetScale::Small);
            assert_eq!(pair.name, name.label());
            assert_eq!(
                pair.seed.len() + pair.reference.len(),
                DatasetScale::Small.alignment_pairs()
            );
            assert!(pair.source.num_triples() > 200, "{name} too sparse");
        }
    }

    #[test]
    fn fr_en_is_densest_cross_lingual_dataset() {
        let fr = load(DatasetName::FrEn, DatasetScale::Small).stats();
        let zh = load(DatasetName::ZhEn, DatasetScale::Small).stats();
        let ja = load(DatasetName::JaEn, DatasetScale::Small).stats();
        assert!(fr.source.average_degree > zh.source.average_degree);
        assert!(fr.source.average_degree > ja.source.average_degree);
    }

    #[test]
    fn heterogeneous_datasets_have_mismatched_relation_counts() {
        for name in [DatasetName::DbpWd, DatasetName::DbpYago] {
            assert!(name.is_heterogeneous());
            let pair = load(name, DatasetScale::Small);
            assert!(
                pair.target.num_relations() < pair.source.num_relations(),
                "{name} should merge relations on the target side"
            );
        }
        assert!(!DatasetName::ZhEn.is_heterogeneous());
    }

    #[test]
    fn labels_and_scales_are_exposed() {
        assert_eq!(DatasetName::ZhEn.label(), "ZH-EN");
        assert_eq!(DatasetName::DbpYago.to_string(), "DBP-YAGO");
        assert_eq!(DatasetScale::Paper.alignment_pairs(), 15000);
        assert!(DatasetScale::Bench.alignment_pairs() > DatasetScale::Small.alignment_pairs());
        assert_eq!(DatasetName::all().len(), 5);
    }

    #[test]
    fn configs_differ_across_datasets() {
        let zh = config_for(DatasetName::ZhEn, DatasetScale::Small);
        let ja = config_for(DatasetName::JaEn, DatasetScale::Small);
        assert_ne!(zh.rng_seed, ja.rng_seed);
        assert_ne!(zh.source_prefix, ja.source_prefix);
    }
}
