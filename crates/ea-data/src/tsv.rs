//! TSV import/export in the DBP15K file layout.
//!
//! The DBP15K and OpenEA distributions describe a dataset as a directory of
//! tab-separated files:
//!
//! * `triples_1` / `triples_2` — one `head<TAB>relation<TAB>tail` triple per
//!   line for the source and target KG respectively.
//! * `ent_links` (or `ref_ent_ids`) — one `source<TAB>target` alignment pair
//!   per line.
//!
//! This module serialises a [`KgPair`] to that layout and parses it back, so
//! the synthetic datasets can be inspected with standard tools and the real
//! benchmark files can be dropped in without code changes.

use ea_graph::{AlignmentPair, AlignmentSet, GraphError, KgPair, KnowledgeGraph};
use std::fs;
use std::path::Path;

/// Serialises one knowledge graph as `head<TAB>relation<TAB>tail` lines.
pub fn kg_to_tsv(kg: &KnowledgeGraph) -> String {
    let mut out = String::new();
    for t in kg.triples() {
        out.push_str(kg.entity_name(t.head).unwrap_or("?"));
        out.push('\t');
        out.push_str(kg.relation_name(t.relation).unwrap_or("?"));
        out.push('\t');
        out.push_str(kg.entity_name(t.tail).unwrap_or("?"));
        out.push('\n');
    }
    out
}

/// Splits a data line into exactly `expected` tab-separated, non-empty
/// fields, each trimmed of surrounding whitespace (the old parser trimmed
/// the line ends; trimming per field is the consistent extension, and keeps
/// a stray trailing space from minting a phantom `"name "` entity). Lines
/// with *more* fields are rejected too — silently dropping the extras used
/// to mask corrupt exports (a stray tab inside a name shifts every
/// following field). Errors carry the 1-based line number.
fn split_fields(line: &str, expected: usize, line_number: usize) -> Result<Vec<&str>, GraphError> {
    let fields: Vec<&str> = line.split('\t').map(str::trim).collect();
    if fields.len() != expected {
        return Err(GraphError::ParseError {
            line: line_number,
            detail: format!(
                "expected exactly {expected} tab-separated fields, got {} in {line:?}",
                fields.len()
            ),
        });
    }
    if let Some(pos) = fields.iter().position(|f| f.is_empty()) {
        return Err(GraphError::ParseError {
            line: line_number,
            detail: format!("field {} is empty in {line:?}", pos + 1),
        });
    }
    Ok(fields)
}

/// Parses a knowledge graph from `head<TAB>relation<TAB>tail` lines.
///
/// Blank lines are ignored and CRLF line endings are accepted
/// ([`str::lines`] strips the `\r`). Malformed lines — fewer *or more* than
/// 3 fields, or an empty field — produce a [`GraphError::ParseError`] with a
/// 1-based line number instead of silently dropping data.
pub fn kg_from_tsv(text: &str) -> Result<KnowledgeGraph, GraphError> {
    let mut kg = KnowledgeGraph::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_fields(line, 3, i + 1)?;
        kg.add_triple_by_names(fields[0], fields[1], fields[2]);
    }
    Ok(kg)
}

/// Serialises an alignment set as `source_name<TAB>target_name` lines.
pub fn alignment_to_tsv(
    alignment: &AlignmentSet,
    source: &KnowledgeGraph,
    target: &KnowledgeGraph,
) -> String {
    let mut out = String::new();
    for p in alignment.iter() {
        out.push_str(source.entity_name(p.source).unwrap_or("?"));
        out.push('\t');
        out.push_str(target.entity_name(p.target).unwrap_or("?"));
        out.push('\n');
    }
    out
}

/// Parses an alignment set from `source_name<TAB>target_name` lines, resolving
/// names against the two graphs.
///
/// Blank lines are ignored and CRLF line endings are accepted
/// ([`str::lines`] strips the `\r`). Lines with fewer *or more* than 2
/// fields, or an empty field, produce a [`GraphError::ParseError`] with a
/// 1-based line number.
pub fn alignment_from_tsv(
    text: &str,
    source: &KnowledgeGraph,
    target: &KnowledgeGraph,
) -> Result<AlignmentSet, GraphError> {
    let mut set = AlignmentSet::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_fields(line, 2, i + 1)?;
        let (s_name, t_name) = (fields[0], fields[1]);
        let s = source
            .entity_by_name(s_name)
            .ok_or_else(|| GraphError::UnknownEntityName(s_name.to_owned()))?;
        let t = target
            .entity_by_name(t_name)
            .ok_or_else(|| GraphError::UnknownEntityName(t_name.to_owned()))?;
        set.insert(AlignmentPair::new(s, t));
    }
    Ok(set)
}

/// Writes a KG pair to `dir` in the DBP15K layout (`triples_1`, `triples_2`,
/// `ent_links_train`, `ent_links_test`).
pub fn save_pair(pair: &KgPair, dir: &Path) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    fs::write(dir.join("triples_1"), kg_to_tsv(&pair.source))?;
    fs::write(dir.join("triples_2"), kg_to_tsv(&pair.target))?;
    fs::write(
        dir.join("ent_links_train"),
        alignment_to_tsv(&pair.seed, &pair.source, &pair.target),
    )?;
    fs::write(
        dir.join("ent_links_test"),
        alignment_to_tsv(&pair.reference, &pair.source, &pair.target),
    )?;
    Ok(())
}

/// Loads a KG pair from a directory written by [`save_pair`].
pub fn load_pair(name: &str, dir: &Path) -> Result<KgPair, Box<dyn std::error::Error>> {
    let source = kg_from_tsv(&fs::read_to_string(dir.join("triples_1"))?)?;
    let target = kg_from_tsv(&fs::read_to_string(dir.join("triples_2"))?)?;
    let seed = alignment_from_tsv(
        &fs::read_to_string(dir.join("ent_links_train"))?,
        &source,
        &target,
    )?;
    let reference = alignment_from_tsv(
        &fs::read_to_string(dir.join("ent_links_test"))?,
        &source,
        &target,
    )?;
    Ok(KgPair::new(name, source, target, seed, reference)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{load, DatasetName, DatasetScale};

    #[test]
    fn kg_tsv_roundtrip_preserves_structure() {
        let pair = load(DatasetName::ZhEn, DatasetScale::Small);
        let text = kg_to_tsv(&pair.source);
        let parsed = kg_from_tsv(&text).unwrap();
        assert_eq!(parsed.num_triples(), pair.source.num_triples());
        assert_eq!(
            parsed.num_entities(),
            pair.source.num_entities() - count_isolated(&pair.source)
        );
        // Every original triple still exists under its names.
        for t in pair.source.triples().iter().take(50) {
            let h = pair.source.entity_name(t.head).unwrap();
            let r = pair.source.relation_name(t.relation).unwrap();
            let ta = pair.source.entity_name(t.tail).unwrap();
            let h2 = parsed.entity_by_name(h).unwrap();
            let r2 = parsed.relation_by_name(r).unwrap();
            let t2 = parsed.entity_by_name(ta).unwrap();
            assert!(parsed.contains_triple(&ea_graph::Triple::new(h2, r2, t2)));
        }
    }

    fn count_isolated(kg: &KnowledgeGraph) -> usize {
        kg.entity_ids().filter(|&e| kg.degree(e) == 0).count()
    }

    #[test]
    fn malformed_triple_lines_are_reported_with_line_numbers() {
        let bad = "a\tr\tb\nmalformed line without tabs\n";
        let err = kg_from_tsv(bad).unwrap_err();
        match err {
            GraphError::ParseError { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn alignment_tsv_roundtrip() {
        let pair = load(DatasetName::FrEn, DatasetScale::Small);
        let text = alignment_to_tsv(&pair.seed, &pair.source, &pair.target);
        let parsed = alignment_from_tsv(&text, &pair.source, &pair.target).unwrap();
        assert_eq!(parsed.to_vec(), pair.seed.to_vec());
    }

    #[test]
    fn alignment_with_unknown_entity_is_rejected() {
        let pair = load(DatasetName::FrEn, DatasetScale::Small);
        let err = alignment_from_tsv(
            "nonexistent\talso_nonexistent\n",
            &pair.source,
            &pair.target,
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::UnknownEntityName(_)));
    }

    #[test]
    fn save_and_load_pair_roundtrip() {
        let pair = load(DatasetName::DbpWd, DatasetScale::Small);
        let dir = std::env::temp_dir().join(format!("exea_tsv_test_{}", std::process::id()));
        save_pair(&pair, &dir).unwrap();
        let loaded = load_pair("DBP-WD", &dir).unwrap();
        assert_eq!(loaded.source.num_triples(), pair.source.num_triples());
        assert_eq!(loaded.target.num_triples(), pair.target.num_triples());
        assert_eq!(loaded.seed.len(), pair.seed.len());
        assert_eq!(loaded.reference.len(), pair.reference.len());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_lines_are_ignored() {
        let kg = kg_from_tsv("\n\na\tr\tb\n\n").unwrap();
        assert_eq!(kg.num_triples(), 1);
        let pair = load(DatasetName::ZhEn, DatasetScale::Small);
        let alignment = alignment_from_tsv("\n\n", &pair.source, &pair.target).unwrap();
        assert!(alignment.is_empty());
    }

    #[test]
    fn crlf_line_endings_parse_like_unix_ones() {
        let unix = kg_from_tsv("a\tr\tb\nb\tr\tc\n").unwrap();
        let crlf = kg_from_tsv("a\tr\tb\r\nb\tr\tc\r\n").unwrap();
        assert_eq!(crlf.num_triples(), unix.num_triples());
        assert_eq!(crlf.num_entities(), unix.num_entities());
        // The last field must not keep a stray '\r' glued to the name.
        assert!(crlf.entity_by_name("b").is_some());
        assert!(crlf.entity_by_name("b\r").is_none());
        let pair = load(DatasetName::ZhEn, DatasetScale::Small);
        let text = alignment_to_tsv(&pair.seed, &pair.source, &pair.target).replace('\n', "\r\n");
        let parsed = alignment_from_tsv(&text, &pair.source, &pair.target).unwrap();
        assert_eq!(parsed.to_vec(), pair.seed.to_vec());
    }

    #[test]
    fn extra_fields_are_rejected_with_line_numbers() {
        // A stray tab used to be silently swallowed (first 3 fields kept);
        // now it is a parse error naming the offending line.
        let err = kg_from_tsv("a\tr\tb\nc\tr\td\textra\n").unwrap_err();
        match err {
            GraphError::ParseError { line, detail } => {
                assert_eq!(line, 2);
                assert!(detail.contains("got 4"), "detail: {detail}");
            }
            other => panic!("unexpected error {other:?}"),
        }
        let pair = load(DatasetName::FrEn, DatasetScale::Small);
        let s = pair
            .source
            .entity_name(pair.seed.to_vec()[0].source)
            .unwrap();
        let t = pair
            .target
            .entity_name(pair.seed.to_vec()[0].target)
            .unwrap();
        let err = alignment_from_tsv(&format!("{s}\t{t}\tjunk\n"), &pair.source, &pair.target)
            .unwrap_err();
        assert!(matches!(err, GraphError::ParseError { line: 1, .. }));
    }

    #[test]
    fn empty_fields_are_rejected_with_field_position() {
        let err = kg_from_tsv("a\t\tb\n").unwrap_err();
        match err {
            GraphError::ParseError { line, detail } => {
                assert_eq!(line, 1);
                assert!(detail.contains("field 2"), "detail: {detail}");
            }
            other => panic!("unexpected error {other:?}"),
        }
        let err = kg_from_tsv("a\tr\t  \n").unwrap_err();
        assert!(matches!(err, GraphError::ParseError { line: 1, .. }));
    }

    #[test]
    fn surrounding_field_whitespace_is_trimmed_not_minted_into_names() {
        // A stray trailing/leading space must resolve to the same entity as
        // the clean spelling (the pre-hardening parser trimmed line ends; a
        // phantom "b " entity would break alignment lookups silently).
        let kg = kg_from_tsv("a\tr\tb \n b\tr\tc\n").unwrap();
        assert!(kg.entity_by_name("b").is_some());
        assert!(kg.entity_by_name("b ").is_none());
        assert!(kg.entity_by_name(" b").is_none());
        assert_eq!(kg.num_triples(), 2);
    }
}
