//! The experiment implementations behind `exea-bench`.
//!
//! Each function regenerates one table or figure of the paper: it builds the
//! named synthetic datasets, trains the requested EA models, runs the
//! explanation / repair / verification pipelines and prints the same rows the
//! paper reports. `EXPERIMENTS.md` records one full run next to the paper's
//! numbers.

use ea_baselines::{BaselineMethod, LlmVerifier, PerturbationExplainer, SimulatedLlmExplainer};
use ea_data::datasets::{load, DatasetName};
use ea_data::noise::with_noisy_seed;
use ea_data::DatasetScale;
use ea_graph::{AlignmentPair, KgPair};
use ea_metrics::{time_it, FidelityProtocol, Table};
use ea_models::{build_model, EaModel, ModelKind, TrainConfig, TrainedAlignment};
use exea_core::{verify_pairs, BatchOptions, ExEa, ExeaConfig, Explainer, RepairConfig};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Shared knobs of the benchmark harness.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Dataset scale.
    pub scale: DatasetScale,
    /// Number of correctly-predicted pairs sampled by the fidelity protocol.
    pub fidelity_samples: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            scale: DatasetScale::Small,
            fidelity_samples: 100,
        }
    }
}

/// The experiments exposed by the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Experiment {
    /// Table I.
    Table1,
    /// Table II.
    Table2,
    /// Fig. 4.
    Fig4,
    /// Fig. 5.
    Fig5,
    /// Table III.
    Table3,
    /// Table IV.
    Table4,
    /// Fig. 6.
    Fig6,
    /// Table V.
    Table5,
    /// Table VI.
    Table6,
    /// Table VII.
    Table7,
    /// Table VIII.
    Table8,
    /// Candidate-engine comparison (not in the paper): dense similarity
    /// matrix vs blocked top-k inference, time and candidate storage.
    TopK,
    /// ANN pre-filter comparison (not in the paper): exact blocked scan vs
    /// the IVF pre-filter across nprobe settings — recall@k, query time,
    /// speedup, and greedy-decision parity at `nprobe = nlist`.
    Ann,
    /// SQ8 quantized-scan comparison (not in the paper): exact blocked scan
    /// vs the int8 ADC scan + exact re-rank across rerank factors —
    /// recall@k, query time, speedup, greedy-decision parity, and bit
    /// identity at exhaustive re-ranking.
    Sq8,
    /// On-disk candidate-store comparison (not in the paper): in-memory
    /// IVF/SQ8 search vs the same search over an mmap- or pread-backed
    /// container — resident bytes, stored bytes, open and query time, and
    /// bit identity of the returned lists.
    Ondisk,
    /// Sharded scatter-gather comparison (not in the paper): the exact scan
    /// vs the sharded engine across routed-shard counts — recall@k, query
    /// time, speedup, greedy-decision parity, bit identity at full routing,
    /// and the aggregated resident/stored bytes of resident vs mapped
    /// shard sets.
    Shard,
    /// Serving-daemon comparison (not in the paper): `exea-serve` under
    /// concurrent client load — throughput, p50/p99 latency, and typed
    /// outcome counts, once clean and once with injected faults (slowed
    /// batches, killed connections, torn writes, a panicking handler).
    Serve,
    /// Live-corpus comparison (not in the paper): the LSM mutable engine
    /// across a scripted insert/delete/compact schedule — alignment
    /// recall@10 and query time per step (bit-identity vs a fresh engine
    /// asserted at every step), seal/compact cost, and prediction/repair
    /// quality of the one-shot `lsm-*` strategies vs the exact scan.
    Lsm,
}

impl Experiment {
    /// All experiments in paper order.
    pub fn all() -> [Experiment; 18] {
        [
            Experiment::Table1,
            Experiment::Table2,
            Experiment::Fig4,
            Experiment::Fig5,
            Experiment::Table3,
            Experiment::Table4,
            Experiment::Fig6,
            Experiment::Table5,
            Experiment::Table6,
            Experiment::Table7,
            Experiment::Table8,
            Experiment::TopK,
            Experiment::Ann,
            Experiment::Sq8,
            Experiment::Ondisk,
            Experiment::Shard,
            Experiment::Serve,
            Experiment::Lsm,
        ]
    }

    /// Parses the CLI name of an experiment.
    pub fn parse(name: &str) -> Option<Experiment> {
        Some(match name {
            "table1" => Experiment::Table1,
            "table2" => Experiment::Table2,
            "fig4" => Experiment::Fig4,
            "fig5" => Experiment::Fig5,
            "table3" => Experiment::Table3,
            "table4" => Experiment::Table4,
            "fig6" => Experiment::Fig6,
            "table5" => Experiment::Table5,
            "table6" => Experiment::Table6,
            "table7" => Experiment::Table7,
            "table8" => Experiment::Table8,
            "topk" => Experiment::TopK,
            "ann" => Experiment::Ann,
            "sq8" => Experiment::Sq8,
            "ondisk" => Experiment::Ondisk,
            "shard" => Experiment::Shard,
            "serve" => Experiment::Serve,
            "lsm" => Experiment::Lsm,
            _ => return None,
        })
    }
}

/// Dispatches one experiment.
pub fn run_experiment(experiment: Experiment, config: &BenchConfig) {
    match experiment {
        Experiment::Table1 => table1(config),
        Experiment::Table2 => table2(config),
        Experiment::Fig4 => fig4(config),
        Experiment::Fig5 => fig5(config),
        Experiment::Table3 => table3(config),
        Experiment::Table4 => table4(config),
        Experiment::Fig6 => fig6(config),
        Experiment::Table5 => table5(config),
        Experiment::Table6 => table6(config),
        Experiment::Table7 => table7(config),
        Experiment::Table8 => table8(config),
        Experiment::TopK => topk(config),
        Experiment::Ann => ann(config),
        Experiment::Sq8 => sq8(config),
        Experiment::Ondisk => ondisk(config),
        Experiment::Shard => shard(config),
        Experiment::Serve => serve(config),
        Experiment::Lsm => lsm(config),
    }
}

/// Per-model training configuration: the translation models need more epochs
/// than the aggregation models to converge on the synthetic datasets.
fn train_config(kind: ModelKind) -> TrainConfig {
    let mut config = TrainConfig::default();
    if kind.is_translation_based() {
        config.epochs = 200;
    }
    config
}

fn train(kind: ModelKind, pair: &KgPair) -> (Box<dyn EaModel>, TrainedAlignment) {
    let model = build_model(kind, train_config(kind));
    let trained = model.train(pair);
    (model, trained)
}

/// Evaluates one explainer under the fidelity protocol, with per-pair budgets
/// taken from ExEA's own explanation sizes (matched sparsity, §V-B2).
fn evaluate_explainer(
    pair: &KgPair,
    model: &dyn EaModel,
    trained: &TrainedAlignment,
    exea: &ExEa<'_>,
    explainer: &dyn Explainer,
    protocol: &FidelityProtocol,
) -> (f64, f64) {
    let outcome = protocol.evaluate(pair, model, trained, explainer, |p| {
        exea.explain(p.source, p.target).num_triples().max(1)
    });
    (outcome.fidelity, outcome.sparsity)
}

fn explanation_generation_table(
    title: &str,
    datasets: &[DatasetName],
    models: &[ModelKind],
    config: &BenchConfig,
    hops: usize,
) {
    let mut table = Table::new(
        title,
        &["EA model", "Exp. method", "Dataset", "Fidelity", "Sparsity"],
    );
    for &kind in models {
        for &dataset in datasets {
            let pair = load(dataset, config.scale);
            let (model, trained) = train(kind, &pair);
            let exea_config = if hops >= 2 {
                ExeaConfig::second_order()
            } else {
                ExeaConfig::default()
            };
            let exea = ExEa::new(&pair, &trained, exea_config);
            let protocol = FidelityProtocol {
                sample_size: config.fidelity_samples,
                hops,
                ..FidelityProtocol::default()
            };
            for method in BaselineMethod::table1() {
                let explainer = PerturbationExplainer::new(&pair, &trained, method).with_hops(hops);
                let (fidelity, sparsity) = evaluate_explainer(
                    &pair,
                    model.as_ref(),
                    &trained,
                    &exea,
                    &explainer,
                    &protocol,
                );
                table.add_row(vec![
                    kind.label().into(),
                    method.label().into(),
                    dataset.label().into(),
                    Table::num(fidelity),
                    Table::num(sparsity),
                ]);
            }
            let (fidelity, sparsity) =
                evaluate_explainer(&pair, model.as_ref(), &trained, &exea, &exea, &protocol);
            table.add_row(vec![
                kind.label().into(),
                "ExEA (ours)".into(),
                dataset.label().into(),
                Table::num(fidelity),
                Table::num(sparsity),
            ]);
        }
    }
    println!("{table}");
}

/// Table I: explanation generation with first-order candidate triples.
fn table1(config: &BenchConfig) {
    explanation_generation_table(
        "Table I — explanation generation (first-order candidates)",
        &DatasetName::all(),
        &ModelKind::all(),
        config,
        1,
    );
}

/// Table II: second-order candidates, Dual-AMN only.
fn table2(config: &BenchConfig) {
    explanation_generation_table(
        "Table II — explanation generation (second-order candidates)",
        &DatasetName::all(),
        &[ModelKind::DualAmn],
        config,
        2,
    );
}

/// Fig. 4: wall-clock cost of explanation generation (Dual-AMN on ZH-EN),
/// first-order vs second-order candidates.
fn fig4(config: &BenchConfig) {
    let pair = load(DatasetName::ZhEn, config.scale);
    let (_, trained) = train(ModelKind::DualAmn, &pair);
    let mut table = Table::new(
        "Fig. 4 — explanation generation time (s), Dual-AMN on ZH-EN",
        &["Method", "ZH-EN-1 (s)", "ZH-EN-2 (s)"],
    );
    let samples: Vec<AlignmentPair> = pair
        .reference
        .iter()
        .take(config.fidelity_samples)
        .collect();
    for hops in [1usize, 2] {
        let exea_config = if hops == 2 {
            ExeaConfig::second_order()
        } else {
            ExeaConfig::default()
        };
        let exea = ExEa::new(&pair, &trained, exea_config);
        let row_for = |name: &str, explainer: &dyn Explainer| -> (String, f64) {
            let (_, elapsed) = time_it(|| {
                for p in &samples {
                    let budget = exea.explain(p.source, p.target).num_triples().max(1);
                    let _ = explainer.explain_pair(p.source, p.target, budget);
                }
            });
            (name.to_owned(), elapsed.as_secs_f64())
        };
        let mut timings: Vec<(String, f64)> = Vec::new();
        for method in BaselineMethod::table1() {
            let explainer = PerturbationExplainer::new(&pair, &trained, method).with_hops(hops);
            timings.push(row_for(method.label(), &explainer));
        }
        timings.push(row_for("ExEA", &exea));
        // Batched ExEA over the same samples: one explain_and_score_batch
        // call, sequential vs fanned out over the rayon pool.
        let state = exea.default_alignment_state();
        let (_, elapsed) = time_it(|| {
            let _ =
                exea.explain_and_score_batch(&samples, &state, true, &BatchOptions::sequential());
        });
        timings.push(("ExEA (batch, 1 thread)".to_owned(), elapsed.as_secs_f64()));
        let (_, elapsed) = time_it(|| {
            let _ = exea.explain_and_score_batch(
                &samples,
                &state,
                true,
                &BatchOptions::always_parallel(),
            );
        });
        timings.push(("ExEA (batch, parallel)".to_owned(), elapsed.as_secs_f64()));
        if hops == 1 {
            for (name, secs) in &timings {
                table.add_row(vec![name.clone(), format!("{secs:.3}"), String::new()]);
            }
        } else {
            // Merge the second-order timings into the existing rows.
            let mut merged = Table::new(
                "Fig. 4 — explanation generation time (s), Dual-AMN on ZH-EN",
                &["Method", "ZH-EN-2 (s)"],
            );
            for (name, secs) in &timings {
                merged.add_row(vec![name.clone(), format!("{secs:.3}")]);
            }
            println!("{merged}");
        }
    }
    println!("{table}");
}

/// Fig. 5: case study — the explanation each model produces for one source
/// entity.
fn fig5(config: &BenchConfig) {
    let pair = load(DatasetName::ZhEn, config.scale);
    // Pick a reference source entity with a reasonably rich neighbourhood.
    let source = pair
        .reference
        .sources()
        .into_iter()
        .max_by_key(|&s| pair.source.degree(s))
        .expect("reference alignment is non-empty");
    println!(
        "== Fig. 5 — case study for source entity {} ==",
        pair.source.entity_name(source).unwrap_or("?")
    );
    for kind in ModelKind::all() {
        let (_, trained) = train(kind, &pair);
        let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
        println!("{}", exea.render_case_study(source));
    }
}

/// Table III: EA repair accuracy on every dataset and model.
fn table3(config: &BenchConfig) {
    let mut table = Table::new(
        "Table III — EA repair accuracy",
        &["EA model", "Dataset", "Base", "ExEA", "Δ acc"],
    );
    for kind in ModelKind::all() {
        for dataset in DatasetName::all() {
            let pair = load(dataset, config.scale);
            let (_, trained) = train(kind, &pair);
            let base = trained.accuracy(&pair);
            let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
            let repaired = exea
                .repair(&RepairConfig::default())
                .repaired
                .accuracy_against(&pair.reference);
            table.add_row(vec![
                kind.label().into(),
                dataset.label().into(),
                Table::num(base),
                Table::num(repaired),
                format!("{:+.3}", repaired - base),
            ]);
        }
    }
    println!("{table}");
}

/// Table IV: ablation of the three conflict resolvers with MTransE.
fn table4(config: &BenchConfig) {
    let mut table = Table::new(
        "Table IV — ablation study on MTransE",
        &["Variant", "Dataset", "Accuracy"],
    );
    for dataset in DatasetName::all() {
        let pair = load(dataset, config.scale);
        let (_, trained) = train(ModelKind::MTransE, &pair);
        let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
        for (name, repair_config) in [
            ("ExEA w/o cr1", RepairConfig::without_cr1()),
            ("ExEA w/o cr2", RepairConfig::without_cr2()),
            ("ExEA w/o cr3", RepairConfig::without_cr3()),
            ("ExEA", RepairConfig::default()),
        ] {
            let acc = exea
                .repair(&repair_config)
                .repaired
                .accuracy_against(&pair.reference);
            table.add_row(vec![name.into(), dataset.label().into(), Table::num(acc)]);
        }
    }
    println!("{table}");
}

/// Fig. 6: accuracy drop per removed resolver, for each model on ZH-EN.
fn fig6(config: &BenchConfig) {
    let mut table = Table::new(
        "Fig. 6 — repair-effect variation across models (ZH-EN, accuracy drop)",
        &["EA model", "w/o cr1", "w/o cr2", "w/o cr3"],
    );
    let pair = load(DatasetName::ZhEn, config.scale);
    for kind in ModelKind::all() {
        let (_, trained) = train(kind, &pair);
        let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
        let full = exea
            .repair(&RepairConfig::default())
            .repaired
            .accuracy_against(&pair.reference);
        let drop = |cfg: RepairConfig| -> f64 {
            full - exea.repair(&cfg).repaired.accuracy_against(&pair.reference)
        };
        table.add_row(vec![
            kind.label().into(),
            Table::num(drop(RepairConfig::without_cr1())),
            Table::num(drop(RepairConfig::without_cr2())),
            Table::num(drop(RepairConfig::without_cr3())),
        ]);
    }
    println!("{table}");
}

/// Table V: ExEA vs the simulated-LLM explainers on ZH-EN and DBP-WD.
fn table5(config: &BenchConfig) {
    let mut table = Table::new(
        "Table V — comparison with (simulated) LLM explainers",
        &["EA model", "Exp. method", "Dataset", "Fidelity", "Sparsity"],
    );
    for kind in [ModelKind::MTransE, ModelKind::DualAmn] {
        for dataset in [DatasetName::ZhEn, DatasetName::DbpWd] {
            let pair = load(dataset, config.scale);
            let (model, trained) = train(kind, &pair);
            let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
            let protocol = FidelityProtocol {
                sample_size: config.fidelity_samples.min(100),
                hops: 1,
                ..FidelityProtocol::default()
            };
            let perturb =
                PerturbationExplainer::new(&pair, &trained, BaselineMethod::ChatGptPerturb);
            let matcher = SimulatedLlmExplainer::new(&pair);
            let entries: Vec<(&str, &dyn Explainer)> = vec![
                ("ChatGPT (perturb)", &perturb),
                ("ChatGPT (match)", &matcher),
                ("ExEA", &exea),
            ];
            for (name, explainer) in entries {
                let (fidelity, sparsity) = evaluate_explainer(
                    &pair,
                    model.as_ref(),
                    &trained,
                    &exea,
                    explainer,
                    &protocol,
                );
                table.add_row(vec![
                    kind.label().into(),
                    name.into(),
                    dataset.label().into(),
                    Table::num(fidelity),
                    Table::num(sparsity),
                ]);
            }
        }
    }
    println!("{table}");
}

/// Builds the balanced verification candidate set of Table VI: correct
/// predicted pairs plus an equal number of incorrect predicted pairs.
fn verification_candidates(
    pair: &KgPair,
    trained: &TrainedAlignment,
    per_class: usize,
    seed: u64,
) -> Vec<(AlignmentPair, bool)> {
    let predictions = trained.predict(pair);
    let mut correct = Vec::new();
    let mut incorrect = Vec::new();
    for p in predictions.iter() {
        if pair.reference.contains(&p) {
            correct.push((p, true));
        } else {
            incorrect.push((p, false));
        }
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    correct.shuffle(&mut rng);
    incorrect.shuffle(&mut rng);
    correct.truncate(per_class);
    incorrect.truncate(per_class);
    correct.extend(incorrect);
    correct
}

/// Table VI: EA verification (precision / recall / F1).
fn table6(config: &BenchConfig) {
    let mut table = Table::new(
        "Table VI — EA verification",
        &["EA model", "Verifier", "Dataset", "Prec.", "Recall", "F1"],
    );
    let per_class = config.fidelity_samples.max(50);
    for kind in [ModelKind::MTransE, ModelKind::DualAmn] {
        for dataset in [DatasetName::ZhEn, DatasetName::DbpWd] {
            let pair = load(dataset, config.scale);
            let (_, trained) = train(kind, &pair);
            let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
            let candidates = verification_candidates(&pair, &trained, per_class, 5);
            let labels: Vec<bool> = candidates.iter().map(|&(_, l)| l).collect();

            let llm = LlmVerifier::new(&pair);
            let llm_decisions: Vec<bool> = candidates.iter().map(|(p, _)| llm.verify(p)).collect();
            let llm_outcome =
                exea_core::VerificationOutcome::from_decisions(&llm_decisions, &labels);

            let (_, exea_outcome) = verify_pairs(&exea, &candidates);

            let fused_decisions: Vec<bool> = candidates
                .iter()
                .map(|(p, _)| llm.verify_with_exea(&exea, p))
                .collect();
            let fused_outcome =
                exea_core::VerificationOutcome::from_decisions(&fused_decisions, &labels);

            for (name, o) in [
                ("ChatGPT", llm_outcome),
                ("ExEA", exea_outcome),
                ("ChatGPT + ExEA", fused_outcome),
            ] {
                table.add_row(vec![
                    kind.label().into(),
                    name.into(),
                    dataset.label().into(),
                    Table::num(o.precision),
                    Table::num(o.recall),
                    Table::num(o.f1),
                ]);
            }
        }
    }
    println!("{table}");
}

/// Table VII: explanation generation with a noisy seed alignment.
fn table7(config: &BenchConfig) {
    let mut table = Table::new(
        "Table VII — explanation generation with seed noise",
        &["EA model", "Exp. method", "Dataset", "Fidelity", "Sparsity"],
    );
    for kind in [ModelKind::MTransE, ModelKind::DualAmn] {
        for dataset in [DatasetName::ZhEn, DatasetName::DbpWd] {
            let clean = load(dataset, config.scale);
            let pair = with_noisy_seed(&clean, 1.0 / 6.0, 99);
            let (model, trained) = train(kind, &pair);
            let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
            let protocol = FidelityProtocol {
                sample_size: config.fidelity_samples,
                hops: 1,
                ..FidelityProtocol::default()
            };
            for method in BaselineMethod::table1() {
                let explainer = PerturbationExplainer::new(&pair, &trained, method);
                let (fidelity, sparsity) = evaluate_explainer(
                    &pair,
                    model.as_ref(),
                    &trained,
                    &exea,
                    &explainer,
                    &protocol,
                );
                table.add_row(vec![
                    kind.label().into(),
                    method.label().into(),
                    format!("{} (noise)", dataset.label()),
                    Table::num(fidelity),
                    Table::num(sparsity),
                ]);
            }
            let (fidelity, sparsity) =
                evaluate_explainer(&pair, model.as_ref(), &trained, &exea, &exea, &protocol);
            table.add_row(vec![
                kind.label().into(),
                "ExEA".into(),
                format!("{} (noise)", dataset.label()),
                Table::num(fidelity),
                Table::num(sparsity),
            ]);
        }
    }
    println!("{table}");
}

/// Table VIII: EA repair with a noisy seed alignment.
fn table8(config: &BenchConfig) {
    let mut table = Table::new(
        "Table VIII — EA repair with seed noise",
        &["EA model", "Dataset", "Base", "ExEA", "Δ acc"],
    );
    for kind in [ModelKind::MTransE, ModelKind::DualAmn] {
        for dataset in [DatasetName::ZhEn, DatasetName::DbpWd] {
            let clean = load(dataset, config.scale);
            let pair = with_noisy_seed(&clean, 1.0 / 6.0, 99);
            let (_, trained) = train(kind, &pair);
            let base = trained.accuracy(&pair);
            let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
            let repaired = exea
                .repair(&RepairConfig::default())
                .repaired
                .accuracy_against(&pair.reference);
            table.add_row(vec![
                kind.label().into(),
                format!("{} (noise)", dataset.label()),
                Table::num(base),
                Table::num(repaired),
                format!("{:+.3}", repaired - base),
            ]);
        }
    }
    println!("{table}");
}

/// Candidate-engine rows (not in the paper): wall-clock and candidate
/// storage of alignment inference through the dense `SimilarityMatrix`
/// reference vs the blocked top-k `CandidateIndex`, on the real trained
/// embeddings of ZH-EN. The greedy alignments are asserted identical — the
/// engine trades nothing but the O(n²) footprint.
fn topk(config: &BenchConfig) {
    let pair = load(DatasetName::ZhEn, config.scale);
    let (_, trained) = train(ModelKind::GcnAlign, &pair);
    let k = ExeaConfig::default().top_k;
    let mut table = Table::new(
        "Candidate engine — dense matrix vs blocked top-k (GCN-Align, ZH-EN)",
        &[
            "Path",
            "Build+greedy (s)",
            "Candidate storage (KiB)",
            "Accuracy",
        ],
    );

    let ((matrix, dense_alignment), dense_time) = time_it(|| {
        let m = trained.similarity_matrix(&pair);
        let alignment = m.greedy_alignment();
        (m, alignment)
    });
    let n_s = matrix.source_ids().len();
    let n_t = matrix.target_ids().len();
    // f32 values plus u32 ranking entries per cell.
    let dense_bytes = n_s * n_t * 8;
    table.add_row(vec![
        format!("dense {n_s}x{n_t}"),
        format!("{:.3}", dense_time.as_secs_f64()),
        format!("{:.1}", dense_bytes as f64 / 1024.0),
        Table::num(dense_alignment.accuracy_against(&pair.reference)),
    ]);

    let ((index, blocked_alignment), blocked_time) = time_it(|| {
        let index = trained.candidate_index(&pair, k);
        let alignment = index.greedy_alignment();
        (index, alignment)
    });
    table.add_row(vec![
        format!("blocked top-{k}"),
        format!("{:.3}", blocked_time.as_secs_f64()),
        format!("{:.1}", index.candidate_bytes() as f64 / 1024.0),
        Table::num(blocked_alignment.accuracy_against(&pair.reference)),
    ]);
    assert_eq!(
        dense_alignment.to_vec(),
        blocked_alignment.to_vec(),
        "dense and blocked greedy alignments must agree"
    );
    println!("{table}");
    println!(
        "(candidate lists shrink inference storage {:.0}x at this scale; the factor grows linearly with n_t)",
        dense_bytes as f64 / index.candidate_bytes().max(1) as f64
    );
}

/// ANN pre-filter rows (not in the paper): the exact blocked scan vs the IVF
/// pre-filter on the real trained embeddings of the synthetic ZH-EN dataset.
/// For each nprobe setting the table reports quantizer build time, query
/// time (the per-batch cost the build amortises over), recall@k against the
/// exact top-k, query-time speedup, and how many greedy alignment decisions
/// changed. At `nprobe = nlist` the results are asserted bit-identical to
/// the exact scan.
fn ann(config: &BenchConfig) {
    use ea_embed::{CandidateSearch, IvfIndex, IvfParams};

    let pair = load(DatasetName::ZhEn, config.scale);
    let (_, trained) = train(ModelKind::GcnAlign, &pair);
    let k = 10usize;

    let (exact, exact_time) = ea_metrics::time_it(|| trained.candidate_index(&pair, k));
    let n_s = exact.source_ids().len();
    let n_t = exact.target_ids().len();
    let params = IvfParams::default();
    let nlist = params.resolved_nlist(n_t);

    // Query-time comparison runs on prebuilt normalised tables, like a real
    // IVF deployment (normalise once, build once, query per batch).
    let sources = pair.test_source_entities();
    let targets: Vec<ea_graph::EntityId> = pair.target.entity_ids().collect();
    let source_rows: Vec<usize> = sources.iter().map(|e| e.index()).collect();
    let target_rows: Vec<usize> = targets.iter().map(|e| e.index()).collect();
    let source_norm = trained
        .entities(ea_graph::KgSide::Source)
        .gather_normalized(&source_rows);
    let target_norm = trained
        .entities(ea_graph::KgSide::Target)
        .gather_normalized(&target_rows);

    let mut table = Table::new(
        format!(
            "ANN pre-filter — exact scan vs IVF (GCN-Align, ZH-EN, {n_s}x{n_t}, k={k}, nlist={nlist})"
        ),
        &[
            "Path",
            "Build (s)",
            "Query (s)",
            "Speedup",
            "Recall@10",
            "Greedy changed",
        ],
    );
    table.add_row(vec![
        "exact".into(),
        "-".into(),
        format!("{:.4}", exact_time.as_secs_f64()),
        "1.0x".into(),
        Table::num(1.0),
        "0".into(),
    ]);

    let exact_greedy = exact.greedy_alignment();
    let mut probes: Vec<usize> = [
        nlist.div_ceil(8),
        nlist.div_ceil(4),
        nlist.div_ceil(2),
        nlist,
    ]
    .into_iter()
    .collect();
    probes.dedup();
    for nprobe in probes {
        let ivf_params = IvfParams {
            nlist,
            nprobe,
            ..IvfParams::default()
        };
        let (ivf, build_time) = ea_metrics::time_it(|| IvfIndex::build(&target_norm, &ivf_params));
        let (rows, query_time) =
            ea_metrics::time_it(|| ivf.search(&source_norm, &target_norm, k, nprobe));

        // Recall@k: fraction of each exact top-k list the pre-filter kept.
        let mut kept = 0usize;
        let mut total = 0usize;
        for (i, row) in rows.iter().enumerate() {
            let exact_ids: Vec<u32> = (0..k.min(n_t))
                .map(|rank| exact.ranked_target(i, rank).unwrap().0)
                .collect();
            let approx_ids: std::collections::HashSet<u32> = row
                .iter()
                .map(|&(col, _)| targets[col as usize].0)
                .collect();
            kept += exact_ids
                .iter()
                .filter(|id| approx_ids.contains(id))
                .count();
            total += exact_ids.len();
        }
        let recall = kept as f64 / total.max(1) as f64;

        let search = CandidateSearch::Ivf(ivf_params.clone());
        let approx_index = trained.candidate_index_with(&pair, k, &search);
        let approx_greedy = approx_index.greedy_alignment();
        let changed = sources
            .iter()
            .filter(|&&s| approx_greedy.target_of(s) != exact_greedy.target_of(s))
            .count();

        if nprobe == nlist {
            assert_eq!(
                approx_greedy.to_vec(),
                exact_greedy.to_vec(),
                "nprobe = nlist must reproduce the exact greedy alignment"
            );
            assert!(
                (recall - 1.0).abs() < 1e-12,
                "nprobe = nlist must reach recall 1.0"
            );
        }

        table.add_row(vec![
            format!("ivf nprobe={nprobe}"),
            format!("{:.4}", build_time.as_secs_f64()),
            format!("{:.4}", query_time.as_secs_f64()),
            format!(
                "{:.1}x",
                exact_time.as_secs_f64() / query_time.as_secs_f64().max(1e-12)
            ),
            Table::num(recall),
            format!("{changed}"),
        ]);
    }
    println!("{table}");
    println!(
        "(IVF build amortises across query batches; `cargo bench --bench bench_similarity` \
         has the n>=2000-target microbenchmarks)"
    );
}

fn sq8(config: &BenchConfig) {
    use ea_embed::{CandidateSearch, QuantizedTable, Sq8Params};

    let pair = load(DatasetName::ZhEn, config.scale);
    let (_, trained) = train(ModelKind::GcnAlign, &pair);
    let k = 10usize;

    let (exact, exact_time) = ea_metrics::time_it(|| trained.candidate_index(&pair, k));
    let n_s = exact.source_ids().len();
    let n_t = exact.target_ids().len();
    let exact_greedy = exact.greedy_alignment();

    // Query-time comparison runs on a prebuilt quantized table over the
    // normalised target rows, like a real deployment (normalise once,
    // quantize once, query per batch) and like the IVF experiment.
    let sources = pair.test_source_entities();
    let targets: Vec<ea_graph::EntityId> = pair.target.entity_ids().collect();
    let source_rows: Vec<usize> = sources.iter().map(|e| e.index()).collect();
    let target_rows: Vec<usize> = targets.iter().map(|e| e.index()).collect();
    let source_norm = trained
        .entities(ea_graph::KgSide::Source)
        .gather_normalized(&source_rows);
    let target_norm = trained
        .entities(ea_graph::KgSide::Target)
        .gather_normalized(&target_rows);
    let (quantized, build_time) = ea_metrics::time_it(|| QuantizedTable::build(&target_norm));

    let mut table = Table::new(
        format!(
            "SQ8 quantized scan — exact vs int8 ADC + exact re-rank \
             (GCN-Align, ZH-EN, {n_s}x{n_t}, k={k}, codes {} KiB vs f32 {} KiB)",
            quantized.code_bytes() / 1024,
            n_t * trained.dim() * 4 / 1024,
        ),
        &[
            "Path",
            "Build (s)",
            "Query (s)",
            "Speedup",
            "Recall@10",
            "Greedy changed",
        ],
    );
    table.add_row(vec![
        "exact".into(),
        "-".into(),
        format!("{:.4}", exact_time.as_secs_f64()),
        "1.0x".into(),
        Table::num(1.0),
        "0".into(),
    ]);

    for rerank_factor in [2usize, 4, 8, usize::MAX] {
        let params = Sq8Params {
            rerank_factor,
            ..Sq8Params::default()
        };
        let (rows, query_time) =
            ea_metrics::time_it(|| quantized.search(&source_norm, &target_norm, k, &params));

        // Recall@k: fraction of each exact top-k list the quantized
        // selection kept (re-ranked scores are bit-exact by contract).
        let mut kept = 0usize;
        let mut total = 0usize;
        for (i, row) in rows.iter().enumerate() {
            let exact_ids: std::collections::HashSet<ea_graph::EntityId> =
                exact.candidates(i).map(|(e, _)| e).collect();
            kept += row
                .iter()
                .filter(|&&(col, _)| exact_ids.contains(&targets[col as usize]))
                .count();
            total += exact_ids.len();
        }
        let recall = kept as f64 / total.max(1) as f64;

        // Greedy parity through the full strategy plumbing (untimed: this
        // one-shot path re-normalises and re-quantizes internally).
        let approx_greedy = trained
            .candidate_index_with(&pair, k, &CandidateSearch::Sq8(params))
            .greedy_alignment();
        let changed = exact_greedy
            .iter()
            .filter(|p| approx_greedy.target_of(p.source) != Some(p.target))
            .count();

        let label = if rerank_factor == usize::MAX {
            "sq8 rerank=all".to_string()
        } else {
            format!("sq8 rerank={rerank_factor}k")
        };
        if rerank_factor == usize::MAX {
            assert!(
                (recall - 1.0).abs() < 1e-12 && changed == 0,
                "exhaustive re-ranking must reproduce the exact engine"
            );
        }
        table.add_row(vec![
            label,
            format!("{:.4}", build_time.as_secs_f64()),
            format!("{:.4}", query_time.as_secs_f64()),
            format!(
                "{:.1}x",
                exact_time.as_secs_f64() / query_time.as_secs_f64().max(1e-12)
            ),
            Table::num(recall),
            format!("{changed}"),
        ]);
    }
    println!("{table}");
    println!(
        "(quantization amortises across query batches; the returned scores of every \
         SQ8 row are bit-exact f32 dots — only the candidate *selection* is approximate)"
    );
}

fn ondisk(config: &BenchConfig) {
    use ea_embed::{
        save_ivf_streaming, save_sq8_streaming, IvfIndex, IvfListStorage, IvfParams, MappedIndex,
        OpenOptions, QuantizedTable, Sq8Params, TableRows,
    };

    let pair = load(DatasetName::ZhEn, config.scale);
    let (_, trained) = train(ModelKind::GcnAlign, &pair);
    let k = 10usize;

    // Deployment shape, like the ann/sq8 experiments: normalise once, build
    // the quantizers once, query per batch. The on-disk variants then save
    // the built state to a container and search it through the mapped
    // reader instead of the resident panels.
    let sources = pair.test_source_entities();
    let targets: Vec<ea_graph::EntityId> = pair.target.entity_ids().collect();
    let source_rows: Vec<usize> = sources.iter().map(|e| e.index()).collect();
    let target_rows: Vec<usize> = targets.iter().map(|e| e.index()).collect();
    let source_norm = trained
        .entities(ea_graph::KgSide::Source)
        .gather_normalized(&source_rows);
    let target_norm = trained
        .entities(ea_graph::KgSide::Target)
        .gather_normalized(&target_rows);
    let (n_s, n_t, dim) = (source_norm.rows(), target_norm.rows(), target_norm.dim());
    let panel_bytes = n_t * dim * 4;

    let mut table = Table::new(
        format!(
            "On-disk candidate store — in-memory vs mapped container \
             (GCN-Align, ZH-EN, {n_s}x{n_t} d={dim}, k={k}; resident = heap bytes \
             the search needs, f32 panel alone {} KiB)",
            panel_bytes / 1024
        ),
        &[
            "Path",
            "Resident (KiB)",
            "Stored (KiB)",
            "Open (s)",
            "Query (s)",
            "Bit-identical",
        ],
    );

    let mut build_table = Table::new(
        "Container build — one-shot (materialised panels) vs streaming \
         (bounded chunks, byte-identical output)"
            .to_string(),
        &[
            "Index",
            "One-shot build+save (s)",
            "Streaming save (s)",
            "Peak staging (KiB)",
            "Materialised (KiB)",
            "Byte-identical",
        ],
    );
    // (label, backend) -> query seconds, for the pread/mmap ratio lines.
    let mut query_times: Vec<(String, &'static str, f64)> = Vec::new();

    let path = std::env::temp_dir().join(format!("exea-bench-ondisk-{}.eacg", std::process::id()));
    let stream_path =
        std::env::temp_dir().join(format!("exea-bench-ondisk-{}-s.eacg", std::process::id()));
    let backends = [
        ("mmap", OpenOptions::default()),
        (
            "pread",
            OpenOptions {
                prefer_mmap: false,
                verify: true,
            },
        ),
    ];

    let bit_identical = |a: &[Vec<(u32, f32)>], b: &[Vec<(u32, f32)>]| {
        a.len() == b.len()
            && a.iter().zip(b).all(|(x, y)| {
                x.len() == y.len()
                    && x.iter()
                        .zip(y)
                        .all(|(p, q)| p.0 == q.0 && p.1.to_bits() == q.1.to_bits())
            })
    };

    // IVF (flat and IVF-SQ lists): build once, then compare backends.
    for storage in [
        IvfListStorage::Flat,
        IvfListStorage::Sq8(Sq8Params::default()),
    ] {
        let label = match storage {
            IvfListStorage::Flat => "ivf",
            IvfListStorage::Sq8(_) => "ivf-sq8",
        };
        let params = IvfParams {
            storage,
            ..IvfParams::default()
        };
        let index = IvfIndex::build(&target_norm, &params);
        let nprobe = params.resolved_nprobe(index.nlist());
        let sq8 = match &params.storage {
            IvfListStorage::Flat => None,
            IvfListStorage::Sq8(p) => Some(p.clone()),
        };
        let (reference, query_time) =
            ea_metrics::time_it(|| index.search(&source_norm, &target_norm, k, nprobe));
        table.add_row(vec![
            format!("{label} in-memory"),
            format!("{}", (index.resident_bytes() + panel_bytes) / 1024),
            "-".into(),
            "-".into(),
            format!("{:.4}", query_time.as_secs_f64()),
            "reference".into(),
        ]);
        // One-shot (rebuild + save, the materialised path) vs the streaming
        // builder writing the same container in bounded chunks.
        let (_, one_shot_time) = ea_metrics::time_it(|| {
            IvfIndex::build(&target_norm, &params)
                .save(&target_norm, &path)
                .expect("container save")
        });
        let (stats, stream_time) = ea_metrics::time_it(|| {
            save_ivf_streaming(&TableRows::new(&target_norm), &params, &stream_path, 4096)
                .expect("streaming save")
        });
        let identical = std::fs::read(&path).expect("read one-shot")
            == std::fs::read(&stream_path).expect("read streamed");
        assert!(identical, "{label}: streamed container diverged");
        let materialised = panel_bytes
            + match &params.storage {
                IvfListStorage::Flat => 0,
                IvfListStorage::Sq8(_) => n_t * dim,
            };
        build_table.add_row(vec![
            label.to_string(),
            format!("{:.4}", one_shot_time.as_secs_f64()),
            format!("{:.4}", stream_time.as_secs_f64()),
            format!("{}", stats.peak_staging_bytes / 1024),
            format!("{}", materialised / 1024),
            "yes".into(),
        ]);
        for (backend, options) in &backends {
            let (mapped, open_time) =
                ea_metrics::time_it(|| MappedIndex::open_with(&path, options).expect("open"));
            if mapped.backend() != *backend {
                // mmap can be refused (seccomp, non-unix): the reader falls
                // back to pread gracefully; skip rather than mislabel a row.
                println!("({backend} backend unavailable here — row skipped)");
                continue;
            }
            let (rows, query_time) =
                ea_metrics::time_it(|| mapped.search_ivf(&source_norm, k, nprobe, sq8.as_ref()));
            let same = bit_identical(&reference, &rows);
            assert!(same, "{label} {backend} diverged from the in-memory engine");
            query_times.push((label.to_string(), backend, query_time.as_secs_f64()));
            table.add_row(vec![
                format!("{label} {backend}"),
                format!("{}", mapped.resident_bytes() / 1024),
                format!("{}", mapped.stored_bytes() / 1024),
                format!("{:.4}", open_time.as_secs_f64()),
                format!("{:.4}", query_time.as_secs_f64()),
                "yes".into(),
            ]);
        }
    }

    // Whole-corpus SQ8 scan.
    let quantized = QuantizedTable::build(&target_norm);
    let sq8_params = Sq8Params::default();
    let (reference, query_time) =
        ea_metrics::time_it(|| quantized.search(&source_norm, &target_norm, k, &sq8_params));
    table.add_row(vec![
        "sq8 in-memory".into(),
        format!(
            "{}",
            (quantized.code_bytes() + dim * 8 + panel_bytes) / 1024
        ),
        "-".into(),
        "-".into(),
        format!("{:.4}", query_time.as_secs_f64()),
        "reference".into(),
    ]);
    let (_, one_shot_time) = ea_metrics::time_it(|| {
        QuantizedTable::build(&target_norm)
            .save(&target_norm, &path)
            .expect("container save")
    });
    let (stats, stream_time) = ea_metrics::time_it(|| {
        save_sq8_streaming(&TableRows::new(&target_norm), &stream_path, 4096)
            .expect("streaming save")
    });
    let identical = std::fs::read(&path).expect("read one-shot")
        == std::fs::read(&stream_path).expect("read streamed");
    assert!(identical, "sq8: streamed container diverged");
    build_table.add_row(vec![
        "sq8".into(),
        format!("{:.4}", one_shot_time.as_secs_f64()),
        format!("{:.4}", stream_time.as_secs_f64()),
        format!("{}", stats.peak_staging_bytes / 1024),
        format!("{}", (panel_bytes + n_t * dim) / 1024),
        "yes".into(),
    ]);
    for (backend, options) in &backends {
        let (mapped, open_time) =
            ea_metrics::time_it(|| MappedIndex::open_with(&path, options).expect("open"));
        if mapped.backend() != *backend {
            println!("({backend} backend unavailable here — row skipped)");
            continue;
        }
        let (rows, query_time) =
            ea_metrics::time_it(|| mapped.search_sq8(&source_norm, k, &sq8_params));
        let same = bit_identical(&reference, &rows);
        assert!(same, "sq8 {backend} diverged from the in-memory engine");
        query_times.push(("sq8".to_string(), backend, query_time.as_secs_f64()));
        table.add_row(vec![
            format!("sq8 {backend}"),
            format!("{}", mapped.resident_bytes() / 1024),
            format!("{}", mapped.stored_bytes() / 1024),
            format!("{:.4}", open_time.as_secs_f64()),
            format!("{:.4}", query_time.as_secs_f64()),
            "yes".into(),
        ]);
    }
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&stream_path);

    println!("{table}");
    println!(
        "(mapped searches gather only probed/surviving rows from the container; open \
         time includes streaming checksum verification of every section. The resident \
         column is what must stay in RAM — centroids, CSR offsets and the SQ8 grid — \
         vs the full panels of the in-memory engines.)"
    );
    println!("{build_table}");
    println!(
        "(peak staging is the builder's chunk-scaled buffers — bounded by the 4096-row \
         chunk regardless of corpus rows — vs the materialised panels the one-shot \
         path holds; both writes produce the same bytes, checksums included)"
    );
    for (label, _, mmap_secs) in query_times.iter().filter(|(_, b, _)| *b == "mmap") {
        if let Some((_, _, pread_secs)) = query_times
            .iter()
            .find(|(l, b, _)| l == label && *b == "pread")
        {
            println!(
                "{label}: pread/mmap query ratio {:.2}x (coalesced gathers + readahead)",
                pread_secs / mmap_secs.max(1e-12)
            );
        }
    }
}

/// Sharded scatter-gather rows (not in the paper): the exact blocked scan vs
/// the sharded engine on the real trained embeddings of the synthetic ZH-EN
/// dataset, the same methodology as the `ann` experiment. The corpus is
/// split into clustered shards with exhaustive per-shard engines, so the
/// routed-shard count is the *only* approximation axis the table sweeps:
/// at `route = nshards` the merged lists are asserted bit-identical to the
/// exact scan, below that they are subset-only. A second table reports the
/// aggregated resident/stored bytes of the resident vs container-spilled
/// shard sets.
fn shard(config: &BenchConfig) {
    use ea_embed::{
        CandidateSearch, IvfParams, MappedOptions, ShardParams, ShardPartition, ShardedIndex,
        StoreBacking,
    };

    let pair = load(DatasetName::ZhEn, config.scale);
    let (_, trained) = train(ModelKind::GcnAlign, &pair);
    let k = 10usize;

    let (exact, exact_time) = ea_metrics::time_it(|| trained.candidate_index(&pair, k));
    let n_s = exact.source_ids().len();
    let n_t = exact.target_ids().len();
    let exact_greedy = exact.greedy_alignment();

    // Deployment shape, like the ann/sq8/ondisk experiments: normalise once,
    // build the shard set once, query per batch.
    let sources = pair.test_source_entities();
    let targets: Vec<ea_graph::EntityId> = pair.target.entity_ids().collect();
    let source_rows: Vec<usize> = sources.iter().map(|e| e.index()).collect();
    let target_rows: Vec<usize> = targets.iter().map(|e| e.index()).collect();
    let source_norm = trained
        .entities(ea_graph::KgSide::Source)
        .gather_normalized(&source_rows);
    let target_norm = trained
        .entities(ea_graph::KgSide::Target)
        .gather_normalized(&target_rows);

    let base = ShardParams {
        nshards: 8,
        partition: ShardPartition::Clustered,
        ..ShardParams::exhaustive()
    };
    let (sharded, build_time) = ea_metrics::time_it(|| ShardedIndex::build(&target_norm, &base));
    let nshards = sharded.nshards();

    let mut table = Table::new(
        format!(
            "Sharded scatter-gather — exact scan vs routed shard subsets \
             (GCN-Align, ZH-EN, {n_s}x{n_t}, k={k}, {nshards} clustered shards, \
             exhaustive per-shard engines)"
        ),
        &[
            "Path",
            "Build (s)",
            "Query (s)",
            "Speedup",
            "Recall@10",
            "Greedy changed",
        ],
    );
    table.add_row(vec![
        "exact".into(),
        "-".into(),
        format!("{:.4}", exact_time.as_secs_f64()),
        "1.0x".into(),
        Table::num(1.0),
        "0".into(),
    ]);

    let mut routes: Vec<usize> = [1, 2, nshards / 2, nshards * 3 / 4, nshards]
        .into_iter()
        .filter(|&r| r >= 1)
        .collect();
    routes.sort_unstable();
    routes.dedup();
    for route in routes {
        let (rows, query_time) =
            ea_metrics::time_it(|| sharded.search_routed(&source_norm, k, route));

        // Recall@k: fraction of each exact top-k list the routed subset
        // kept (returned scores are bit-exact by contract).
        let mut kept = 0usize;
        let mut total = 0usize;
        for (i, row) in rows.iter().enumerate() {
            let exact_ids: Vec<u32> = (0..k.min(n_t))
                .map(|rank| exact.ranked_target(i, rank).unwrap().0)
                .collect();
            let approx_ids: std::collections::HashSet<u32> = row
                .iter()
                .map(|&(col, _)| targets[col as usize].0)
                .collect();
            kept += exact_ids
                .iter()
                .filter(|id| approx_ids.contains(id))
                .count();
            total += exact_ids.len();
        }
        let recall = kept as f64 / total.max(1) as f64;

        // Greedy parity through the full strategy plumbing (untimed: this
        // one-shot path re-normalises and rebuilds the shard set).
        let search = CandidateSearch::Sharded(ShardParams {
            route_shards: route,
            ..base.clone()
        });
        let approx_index = trained.candidate_index_with(&pair, k, &search);
        let approx_greedy = approx_index.greedy_alignment();
        let changed = sources
            .iter()
            .filter(|&&s| approx_greedy.target_of(s) != exact_greedy.target_of(s))
            .count();

        if route == nshards {
            // Full routing with exhaustive per-shard engines: the merged
            // lists (forward and reverse, via the strategy plumbing) are
            // bit-identical to the exact scan.
            for (i, row) in rows.iter().enumerate() {
                let a: Vec<(u32, u32)> = exact
                    .candidates(i)
                    .map(|(e, s)| (e.0, s.to_bits()))
                    .collect();
                let b: Vec<(u32, u32)> = row
                    .iter()
                    .map(|&(col, s)| (targets[col as usize].0, s.to_bits()))
                    .collect();
                assert_eq!(a, b, "row {i} diverged at route = nshards");
            }
            assert_eq!(
                approx_greedy.to_vec(),
                exact_greedy.to_vec(),
                "route = nshards must reproduce the exact greedy alignment"
            );
            assert!(
                (recall - 1.0).abs() < 1e-12,
                "route = nshards must reach recall 1.0"
            );
        }

        table.add_row(vec![
            format!("sharded route={route}/{nshards}"),
            format!("{:.4}", build_time.as_secs_f64()),
            format!("{:.4}", query_time.as_secs_f64()),
            format!(
                "{:.1}x",
                exact_time.as_secs_f64() / query_time.as_secs_f64().max(1e-12)
            ),
            Table::num(recall),
            format!("{changed}"),
        ]);
    }
    println!("{table}");

    // Memory truthfulness: the same shard set resident vs spilled to
    // per-shard containers, reported through the aggregated counters.
    let mapped_params = ShardParams {
        ivf: IvfParams {
            backing: StoreBacking::Mapped(MappedOptions::default()),
            ..base.ivf.clone()
        },
        ..base.clone()
    };
    let (mapped, mapped_build) =
        ea_metrics::time_it(|| ShardedIndex::build(&target_norm, &mapped_params));
    let a = sharded.search_routed(&source_norm, k, nshards);
    let b = mapped.search_routed(&source_norm, k, nshards);
    assert!(
        a.len() == b.len()
            && a.iter().zip(&b).all(|(x, y)| {
                x.len() == y.len()
                    && x.iter()
                        .zip(y)
                        .all(|(p, q)| p.0 == q.0 && p.1.to_bits() == q.1.to_bits())
            }),
        "mapped shard set diverged from the resident one"
    );
    let mut memory = Table::new(
        "Shard-set memory — aggregated across shards (resident = heap bytes \
         the search needs; stored = container bytes on disk)"
            .to_string(),
        &[
            "Backing",
            "Build (s)",
            "Resident (KiB)",
            "Stored (KiB)",
            "Backend",
        ],
    );
    memory.add_row(vec![
        "resident".into(),
        format!("{:.4}", build_time.as_secs_f64()),
        format!("{}", sharded.resident_bytes() / 1024),
        format!("{}", sharded.stored_bytes() / 1024),
        sharded.backend().into(),
    ]);
    memory.add_row(vec![
        "mapped".into(),
        format!("{:.4}", mapped_build.as_secs_f64()),
        format!("{}", mapped.resident_bytes() / 1024),
        format!("{}", mapped.stored_bytes() / 1024),
        mapped.backend().into(),
    ]);
    println!("{memory}");
    println!(
        "(per-shard engines are exhaustive, so the routed-shard count is the only \
         approximation axis; every returned score is still the bit-exact f32 dot. \
         Clustered partitioning concentrates each query's neighbours in few shards, \
         which is why partial routing keeps recall high.)"
    );
}

/// `exea-bench serve`: the serving daemon under concurrent client load.
///
/// Starts `exea-serve` in-process on a loopback port, drives it with a small
/// fleet of retrying clients (a predict/explain/verify mix), and reports
/// throughput, p50/p99 latency, and the typed-outcome split — once with a
/// clean transport and once under an injected fault schedule (slowed
/// admission batches, connections killed mid-stream, torn writes, and a
/// panicking handler). The robustness claim the second row demonstrates:
/// faults cost latency, never typed outcomes — every request still ends in
/// a protocol-level answer or a typed client error.
fn serve(config: &BenchConfig) {
    use exea_serve::{
        ConnFaults, Endpoint, Engine, EngineConfig, FaultPlan, Request, Response, RetryClient,
        RetryPolicy, Server, ServerConfig,
    };
    use std::time::{Duration, Instant};

    const CLIENTS: usize = 4;
    const REQUESTS_PER_CLIENT: usize = 32;

    let pair = load(DatasetName::ZhEn, config.scale);
    let (_model, trained) = train(ModelKind::GcnAlign, &pair);
    let engine_config = EngineConfig {
        scale: config.scale,
        ..EngineConfig::default()
    };
    // The harness process runs one engine per invocation; the leak is the
    // same bounded one the daemon binary does at startup.
    let engine: &'static Engine = Box::leak(Box::new(
        Engine::from_trained(pair, trained, &engine_config).expect("serving engine builds"),
    ));
    let canonical = engine.sample_pair().expect("non-empty alignment");
    let (canonical_source, canonical_target) = (canonical.source.0, canonical.target.0);

    // The injected schedule: every third connection dies after four reads,
    // every eighth tears a response frame, connection 5 panics in the
    // handler, and every admission batch is slowed to open real overload
    // and deadline windows.
    let mut faulty_conns = Vec::new();
    for i in 0..64usize {
        let mut faults = ConnFaults::default();
        if i % 3 == 1 {
            faults.fail_read_at = Some(4);
        }
        if i % 8 == 6 {
            faults.tear_write_after = Some(9);
        }
        if i == 5 {
            faults.panic_in_handler = true;
        }
        faulty_conns.push(faults);
    }
    let scenarios: [(&str, FaultPlan); 2] = [
        ("clean", FaultPlan::none()),
        (
            "faulty",
            FaultPlan {
                connections: faulty_conns,
                batch_delay: Some(Duration::from_millis(2)),
            },
        ),
    ];

    let mut table = Table::new(
        format!("exea-serve under load ({CLIENTS} clients x {REQUESTS_PER_CLIENT} requests)"),
        &[
            "Scenario",
            "Served",
            "Typed rej.",
            "Client err.",
            "p50 (ms)",
            "p99 (ms)",
            "Req/s",
            "Panics",
            "Transport",
        ],
    );

    for (name, plan) in scenarios {
        let server_config = ServerConfig {
            queue_capacity: 16,
            max_batch: 8,
            fault: plan,
            ..ServerConfig::default()
        };
        let handle = Server::start(
            engine,
            &[Endpoint::Tcp("127.0.0.1:0".into())],
            server_config,
        )
        .expect("server starts");
        let addr = handle.tcp_addr().expect("bound tcp endpoint");
        let endpoint = Endpoint::Tcp(addr.to_string());
        let num_sources = engine.num_sources() as u32;

        let started = Instant::now();
        let workers: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let endpoint = endpoint.clone();
                std::thread::spawn(move || {
                    let policy = RetryPolicy {
                        max_attempts: 6,
                        base_backoff: Duration::from_millis(5),
                        max_backoff: Duration::from_millis(100),
                        seed: 0x5eed_0000 + c as u64,
                    };
                    let mut client = RetryClient::new(endpoint, Duration::from_millis(50), policy);
                    // (served, typed rejections, client errors, latencies in us)
                    let mut outcome = (0u64, 0u64, 0u64, Vec::new());
                    for r in 0..REQUESTS_PER_CLIENT {
                        let source = ((c * REQUESTS_PER_CLIENT + r) as u32) % num_sources;
                        let request = match r % 3 {
                            0 => Request::Predict {
                                source,
                                k: 10,
                                tier: None,
                            },
                            1 => Request::Explain {
                                source: canonical_source,
                                target: canonical_target,
                            },
                            _ => Request::Verify {
                                pairs: vec![(canonical_source, canonical_target)],
                            },
                        };
                        let sent = Instant::now();
                        match client.call(request, 2_000) {
                            Ok(Response::Predict { .. })
                            | Ok(Response::Explain { .. })
                            | Ok(Response::Verify { .. }) => {
                                outcome.0 += 1;
                                // Integer microseconds: percentile sorting
                                // stays total-order safe.
                                outcome.3.push(sent.elapsed().as_micros() as u64);
                            }
                            Ok(_) => outcome.1 += 1,
                            Err(_) => outcome.2 += 1,
                        }
                    }
                    outcome
                })
            })
            .collect();

        let mut served = 0u64;
        let mut rejected = 0u64;
        let mut client_errors = 0u64;
        let mut latencies_us: Vec<u64> = Vec::new();
        for worker in workers {
            let (s, rej, err, mut lats) = worker.join().expect("client thread");
            served += s;
            rejected += rej;
            client_errors += err;
            latencies_us.append(&mut lats);
        }
        let elapsed = started.elapsed();
        let stats = handle.stats();
        handle.shutdown();

        latencies_us.sort_unstable();
        let percentile = |p: usize| -> f64 {
            if latencies_us.is_empty() {
                return f64::NAN;
            }
            let idx = (latencies_us.len() - 1) * p / 100;
            latencies_us[idx] as f64 / 1_000.0
        };
        let total = (CLIENTS * REQUESTS_PER_CLIENT) as u64;
        assert_eq!(
            served + rejected + client_errors,
            total,
            "every request must end in a typed outcome"
        );
        table.add_row(vec![
            name.into(),
            format!("{served}"),
            format!("{rejected}"),
            format!("{client_errors}"),
            format!("{:.2}", percentile(50)),
            format!("{:.2}", percentile(99)),
            format!("{:.1}", served as f64 / elapsed.as_secs_f64()),
            format!("{}", stats.panics),
            format!("{}", stats.transport_faults),
        ]);
    }
    println!("{table}");
    println!(
        "(typed rejections are protocol answers — Overloaded/DeadlineExceeded/Internal — \
         after client retries; client errors are typed transport failures. The accounting \
         row-sums to the request total in both scenarios: faults move requests between \
         outcome classes, they never lose one.)"
    );
}

/// `exea-bench lsm`: the LSM mutable engine under a scripted schedule.
///
/// Builds a [`ea_embed::MutableIndex`] over the real trained target corpus
/// and drives it through load → delete 20% → re-insert half → compact,
/// measuring alignment recall@10 (against the gold reference, over sources
/// whose counterpart is live) and query time at every step. At every step
/// the segmented search is asserted bit-identical — ids and score bits —
/// to a fresh single exhaustive engine built over the same live corpus,
/// which is the engine's core claim. A second table prices the load, seal,
/// and compaction; a third runs the one-shot `lsm-*` strategies through the
/// full prediction + repair pipeline against the exact scan.
fn lsm(config: &BenchConfig) {
    use ea_embed::{
        CandidateSearch, IvfParams, LsmParams, MappedOptions, MutableIndex, Sq8Params, StoreBacking,
    };
    use ea_embed::{IvfIndex, IvfListStorage};
    use std::collections::HashMap;

    let pair = load(DatasetName::ZhEn, config.scale);
    let (_, trained) = train(ModelKind::GcnAlign, &pair);
    let k = 10usize;

    let sources = pair.test_source_entities();
    let targets: Vec<ea_graph::EntityId> = pair.target.entity_ids().collect();
    let source_rows: Vec<usize> = sources.iter().map(|e| e.index()).collect();
    let source_norm = trained
        .entities(ea_graph::KgSide::Source)
        .gather_normalized(&source_rows);
    let target_table = trained.entities(ea_graph::KgSide::Target);
    let n_t = targets.len();
    let col_of: HashMap<ea_graph::EntityId, u32> = targets
        .iter()
        .enumerate()
        .map(|(c, &e)| (e, c as u32))
        .collect();
    let gold: Vec<Option<u32>> = sources
        .iter()
        .map(|&s| {
            pair.reference
                .target_of(s)
                .and_then(|t| col_of.get(&t).copied())
        })
        .collect();

    // Eight segments' worth of corpus per seal, like a store that has been
    // running for a while; raw rows go in, the index normalises once.
    let params = LsmParams {
        seal_rows: (n_t / 8).max(1),
        ..LsmParams::default()
    };
    let mut index = MutableIndex::new(target_table.dim(), params);
    let (_, load_time) = time_it(|| {
        for (c, t) in targets.iter().enumerate() {
            index
                .insert(c as u32, target_table.row(t.index()))
                .expect("segment seal");
        }
    });
    let load_seals = index.segments();

    // Alignment recall@10 over the sources whose gold counterpart is live,
    // plus the step's bit-identity assertion against a fresh single engine.
    let measure = |index: &MutableIndex, step: &str, table: &mut Table| {
        let cap = k.min(index.len());
        let (flat, query_time) = time_it(|| index.search(&source_norm, k));
        let (live_table, entities) = index.live_table();
        let fresh = IvfIndex::build(&live_table, &IvfParams::exhaustive()).search(
            &source_norm,
            &live_table,
            cap,
            usize::MAX,
        );
        for (q, row) in fresh.iter().enumerate() {
            let a: Vec<(u32, u32)> = flat[q * cap..(q + 1) * cap]
                .iter()
                .map(|r| (r.index, r.score.to_bits()))
                .collect();
            let b: Vec<(u32, u32)> = row
                .iter()
                .map(|&(col, s)| (entities[col as usize], s.to_bits()))
                .collect();
            assert_eq!(
                a, b,
                "step {step:?}: query {q} diverged from a fresh engine"
            );
        }
        let mut hit = 0usize;
        let mut answerable = 0usize;
        for (q, gold_col) in gold.iter().enumerate() {
            let Some(gold_col) = gold_col else { continue };
            if !index.contains(*gold_col) {
                continue;
            }
            answerable += 1;
            if flat[q * cap..(q + 1) * cap]
                .iter()
                .any(|r| r.index == *gold_col)
            {
                hit += 1;
            }
        }
        table.add_row(vec![
            step.into(),
            format!("{}", index.len()),
            format!("{}/{}", index.segments(), index.mem_rows()),
            format!("{:.4}", query_time.as_secs_f64()),
            Table::num(hit as f64 / answerable.max(1) as f64),
            format!("{answerable}"),
        ]);
    };

    let mut schedule = Table::new(
        format!(
            "LSM mutable engine — scripted schedule (GCN-Align, ZH-EN, \
             {}x{n_t}, k={k}, seal budget {} rows; every step asserted \
             bit-identical to a fresh engine over the live corpus)",
            sources.len(),
            (n_t / 8).max(1),
        ),
        &[
            "Step",
            "Live rows",
            "Segs/mem",
            "Query (s)",
            "Recall@10",
            "Answerable",
        ],
    );
    measure(&index, "loaded", &mut schedule);
    for c in (0..n_t).step_by(5) {
        index.remove(c as u32);
    }
    measure(&index, "delete 20%", &mut schedule);
    for c in (0..n_t).step_by(10) {
        index
            .insert(c as u32, target_table.row(targets[c].index()))
            .expect("segment seal");
    }
    measure(&index, "re-insert half", &mut schedule);
    let (_, compact_time) = time_it(|| index.compact().expect("compaction"));
    measure(&index, "compacted", &mut schedule);
    println!("{schedule}");

    // Price the maintenance operations: the bulk load (which seals as it
    // goes), one explicit seal of a small mutable tail, and the compaction
    // above, next to the bytes the live set needs.
    let (_, seal_time) = time_it(|| index.seal().expect("segment seal"));
    let mut costs = Table::new(
        "LSM maintenance cost".to_string(),
        &["Operation", "Time (s)", "Resident (KiB)", "Stored (KiB)"],
    );
    for (op, time) in [
        (format!("load {n_t} rows ({load_seals} seals)"), load_time),
        ("seal mutable tail".to_string(), seal_time),
        ("compact to 1 segment".to_string(), compact_time),
    ] {
        costs.add_row(vec![
            op,
            format!("{:.4}", time.as_secs_f64()),
            format!("{}", index.resident_bytes() / 1024),
            format!("{}", index.stored_bytes() / 1024),
        ]);
    }
    // Same live set spilled to containers: sealed segments become
    // sq8+mapped files and the resident column collapses to the mutable
    // tail plus per-segment centroids.
    let (live_table, entities) = index.live_table();
    let mut spilled = MutableIndex::new(
        target_table.dim(),
        LsmParams {
            seal_rows: (n_t / 8).max(1),
            ivf: IvfParams {
                storage: IvfListStorage::Sq8(Sq8Params::default()),
                backing: StoreBacking::Mapped(MappedOptions::default()),
                ..LsmParams::default().ivf
            },
        },
    );
    let (_, spill_time) = time_it(|| {
        for (row, &entity) in entities.iter().enumerate() {
            spilled
                .insert(entity, live_table.row(row))
                .expect("segment seal");
        }
        spilled.seal().expect("segment seal");
    });
    costs.add_row(vec![
        format!("reload as sq8+mapped ({} segs)", spilled.segments()),
        format!("{:.4}", spill_time.as_secs_f64()),
        format!("{}", spilled.resident_bytes() / 1024),
        format!("{}", spilled.stored_bytes() / 1024),
    ]);
    println!("{costs}");

    // The downstream claim: prediction and repair ride the one-shot lsm-*
    // strategies with zero pipeline changes, and the flat exhaustive
    // variant reproduces the exact scan bit for bit.
    let (exact_index, exact_time) = time_it(|| trained.candidate_index(&pair, k));
    let exact_greedy = exact_index.greedy_alignment();
    let strategies: [(&str, CandidateSearch); 3] = [
        ("exact", CandidateSearch::Exact),
        ("lsm-ivf", CandidateSearch::Lsm(LsmParams::default())),
        (
            "lsm-ivf-sq8-mapped",
            CandidateSearch::Lsm(LsmParams {
                ivf: IvfParams {
                    storage: IvfListStorage::Sq8(Sq8Params::default()),
                    backing: StoreBacking::Mapped(MappedOptions::default()),
                    ..LsmParams::default().ivf
                },
                ..LsmParams::default()
            }),
        ),
    ];
    let mut parity = Table::new(
        "Prediction + repair through the LSM strategies".to_string(),
        &[
            "Strategy",
            "Build (s)",
            "Greedy acc",
            "Repair acc",
            "Changed",
        ],
    );
    for (name, search) in strategies {
        let (candidates, build_time) = time_it(|| trained.candidate_index_with(&pair, k, &search));
        let greedy = candidates.greedy_alignment();
        if name == "lsm-ivf" {
            assert_eq!(
                greedy.to_vec(),
                exact_greedy.to_vec(),
                "exhaustive LSM must reproduce the exact greedy alignment"
            );
        }
        let exea_config = ExeaConfig {
            candidate_search: search,
            ..ExeaConfig::default()
        };
        let exea = ExEa::new(&pair, &trained, exea_config);
        let outcome = exea.repair(&RepairConfig::default());
        parity.add_row(vec![
            name.into(),
            format!(
                "{:.4}",
                if name == "exact" {
                    exact_time.as_secs_f64()
                } else {
                    build_time.as_secs_f64()
                }
            ),
            Table::num(greedy.accuracy_against(&pair.reference)),
            Table::num(outcome.repaired.accuracy_against(&pair.reference)),
            format!("{}", outcome.stats.changed_pairs),
        ]);
    }
    println!("{parity}");
    println!(
        "(the lsm-ivf row is asserted bit-identical to the exact scan — same greedy \
         alignment, same candidate lists — because exhaustive per-segment probing plus \
         the deterministic gather-merge reproduces a single engine over the corpus; \
         sq8-mapped trades list storage for container-backed segments and stays \
         subset-only, like the sharded and ondisk experiments.)"
    );
}
