//! `exea-bench` — regenerates every table and figure of the ExEA paper.
//!
//! Usage:
//!
//! ```text
//! exea-bench <experiment> [--scale small|bench] [--samples N]
//!
//! experiments:
//!   table1   explanation generation, first-order candidates (fidelity/sparsity)
//!   table2   explanation generation, second-order candidates (Dual-AMN)
//!   fig4     wall-clock time of explanation generation (Dual-AMN, ZH-EN)
//!   fig5     case study: explanations of one source entity under all models
//!   table3   EA repair accuracy (base vs ExEA) on all datasets
//!   table4   ablation study of the conflict resolvers (MTransE)
//!   fig6     ablation across models on ZH-EN
//!   table5   ExEA vs simulated-LLM explainers (ZH-EN, DBP-WD)
//!   table6   EA verification precision/recall/F1
//!   table7   explanation generation under seed noise
//!   table8   EA repair under seed noise
//!   topk     dense similarity matrix vs blocked top-k candidate engine
//!   ann      exact scan vs IVF pre-filter (recall/speed across nprobe)
//!   sq8      exact scan vs SQ8 quantized scan + exact re-rank (recall/speed)
//!   ondisk   in-memory vs mmap/pread-backed candidate store (resident bytes)
//!   shard    exact scan vs sharded scatter-gather (recall across routed shards)
//!   serve    exea-serve under concurrent load (p50/p99, clean vs injected faults)
//!   lsm      LSM mutable engine: insert/delete/compact schedule (recall, cost, repair parity)
//!   all      run everything above in sequence
//! ```
//!
//! `--scale small` (default) finishes in minutes on a laptop; `--scale bench`
//! uses larger synthetic datasets and is what `EXPERIMENTS.md` reports.
#![forbid(unsafe_code)]

mod experiments;

use experiments::{BenchConfig, Experiment};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        print_usage();
        return;
    }
    // Validate environment overrides up front: a typo'd EXEA_CANDIDATE_SEARCH
    // or EXEA_MAPPED_BACKEND is a clean one-line failure before any dataset
    // loads, not a panic deep inside the first experiment.
    if let Err(e) = ea_embed::CandidateSearch::from_env() {
        eprintln!("exea-bench: {e}");
        std::process::exit(2);
    }
    if let Err(e) = ea_embed::mapped_backend_from_env() {
        eprintln!("exea-bench: {e}");
        std::process::exit(2);
    }
    let mut config = BenchConfig::default();
    let mut experiment = args[0].clone();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" if i + 1 < args.len() => {
                config.scale = match args[i + 1].as_str() {
                    "bench" => ea_data::DatasetScale::Bench,
                    "paper" => ea_data::DatasetScale::Paper,
                    _ => ea_data::DatasetScale::Small,
                };
                i += 2;
            }
            "--samples" if i + 1 < args.len() => {
                config.fidelity_samples = args[i + 1].parse().unwrap_or(config.fidelity_samples);
                i += 2;
            }
            other => {
                eprintln!("ignoring unknown argument {other:?}");
                i += 1;
            }
        }
    }
    if experiment == "all" {
        for e in Experiment::all() {
            run(e, &config);
        }
        return;
    }
    experiment.make_ascii_lowercase();
    match Experiment::parse(&experiment) {
        Some(e) => run(e, &config),
        None => {
            eprintln!("unknown experiment {experiment:?}");
            print_usage();
            std::process::exit(1);
        }
    }
}

fn run(experiment: Experiment, config: &BenchConfig) {
    let started = std::time::Instant::now();
    experiments::run_experiment(experiment, config);
    eprintln!("[{experiment:?} finished in {:.1?}]", started.elapsed());
}

fn print_usage() {
    println!(
        "exea-bench <table1|table2|fig4|fig5|table3|table4|fig6|table5|table6|table7|table8|topk|ann|sq8|ondisk|shard|serve|lsm|all> \
         [--scale small|bench|paper] [--samples N]"
    );
}
