//! Acceptance test for the SQ8 quantized scan on trained embeddings: on the
//! synthetic ZH-EN dataset the SQ8 path must reach >= 0.95 recall@10 against
//! the exact scan at the default `rerank_factor`, leave the greedy alignment
//! unchanged at default settings, and at exhaustive re-ranking it must leave
//! every stored score bit unchanged.

use ea_data::datasets::{load, DatasetName, DatasetScale};
use ea_embed::{CandidateSearch, Sq8Params};
use ea_graph::EntityId;
use ea_models::{build_model, ModelKind, TrainConfig};
use std::collections::HashSet;

#[test]
fn sq8_reaches_095_recall_at_10_on_zh_en_and_is_exact_when_exhaustive() {
    let pair = load(DatasetName::ZhEn, DatasetScale::Small);
    let trained = build_model(ModelKind::GcnAlign, TrainConfig::default()).train(&pair);
    let k = 10usize;

    let exact = trained.candidate_index(&pair, k);
    let approx =
        trained.candidate_index_with(&pair, k, &CandidateSearch::Sq8(Sq8Params::default()));

    // Recall@10 over all test sources, plus the exact-subset contract: any
    // candidate the SQ8 path returns that the exact top-k also contains must
    // carry the identical score bits.
    let mut kept = 0usize;
    let mut total = 0usize;
    for i in 0..exact.source_ids().len() {
        let exact_row: Vec<(EntityId, f32)> = exact.candidates(i).collect();
        let exact_ids: HashSet<EntityId> = exact_row.iter().map(|&(e, _)| e).collect();
        for (e, score) in approx.candidates(i) {
            if exact_ids.contains(&e) {
                kept += 1;
                let (_, exact_score) = exact_row.iter().find(|&&(x, _)| x == e).unwrap();
                assert_eq!(
                    score.to_bits(),
                    exact_score.to_bits(),
                    "SQ8 re-scored a candidate in row {i}"
                );
            }
        }
        total += exact_row.len();
    }
    let recall = kept as f64 / total.max(1) as f64;
    assert!(
        recall >= 0.95,
        "SQ8 recall@10 too low at the default rerank factor: {recall:.3}"
    );

    // The acceptance bar for default settings: zero greedy-alignment changes
    // on ZH-EN (the top-1 candidate survives the int8 selection everywhere).
    assert_eq!(
        exact.greedy_alignment().to_vec(),
        approx.greedy_alignment().to_vec(),
        "default SQ8 settings must not change the greedy alignment on ZH-EN"
    );

    // Exhaustive re-ranking: candidate lists bit-identical to the exact scan.
    let full =
        trained.candidate_index_with(&pair, k, &CandidateSearch::Sq8(Sq8Params::exhaustive()));
    for i in 0..exact.source_ids().len() {
        let a: Vec<(EntityId, u32)> = exact.candidates(i).map(|(e, s)| (e, s.to_bits())).collect();
        let b: Vec<(EntityId, u32)> = full.candidates(i).map(|(e, s)| (e, s.to_bits())).collect();
        assert_eq!(a, b, "row {i} diverged under exhaustive re-ranking");
    }
}
