//! Acceptance test for the ANN pre-filter on trained embeddings: on the
//! synthetic ZH-EN dataset the IVF path must reach >= 0.95 recall@10 against
//! the exact scan at half the probes, and at `nprobe = nlist` it must leave
//! every greedy alignment decision (and every stored score bit) unchanged.

use ea_data::datasets::{load, DatasetName, DatasetScale};
use ea_embed::{CandidateSearch, IvfParams};
use ea_graph::EntityId;
use ea_models::{build_model, ModelKind, TrainConfig};
use std::collections::HashSet;

#[test]
fn ivf_reaches_095_recall_at_10_on_zh_en_and_is_exact_at_full_probing() {
    let pair = load(DatasetName::ZhEn, DatasetScale::Small);
    let trained = build_model(ModelKind::GcnAlign, TrainConfig::default()).train(&pair);
    let k = 10usize;

    let exact = trained.candidate_index(&pair, k);
    let n_t = exact.target_ids().len();
    let nlist = IvfParams::default().resolved_nlist(n_t);
    let nprobe = nlist.div_ceil(2);
    let approx = trained.candidate_index_with(
        &pair,
        k,
        &CandidateSearch::Ivf(IvfParams {
            nlist,
            nprobe,
            ..IvfParams::default()
        }),
    );

    // Recall@10 over all test sources, plus the exact-subset contract: any
    // candidate the ANN path returns that the exact top-k also contains must
    // carry the identical score bits.
    let mut kept = 0usize;
    let mut total = 0usize;
    for i in 0..exact.source_ids().len() {
        let exact_row: Vec<(EntityId, f32)> = exact.candidates(i).collect();
        let exact_ids: HashSet<EntityId> = exact_row.iter().map(|&(e, _)| e).collect();
        for (e, score) in approx.candidates(i) {
            if exact_ids.contains(&e) {
                kept += 1;
                let (_, exact_score) = exact_row.iter().find(|&&(x, _)| x == e).unwrap();
                assert_eq!(
                    score.to_bits(),
                    exact_score.to_bits(),
                    "ANN re-scored a candidate in row {i}"
                );
            }
        }
        total += exact_row.len();
    }
    let recall = kept as f64 / total.max(1) as f64;
    assert!(
        recall >= 0.95,
        "IVF recall@10 too low at nprobe = nlist/2: {recall:.3} (nlist {nlist}, nprobe {nprobe})"
    );

    // Full probing: recall 1.0, candidate lists and greedy decisions
    // bit-identical to the exact scan.
    let full = trained.candidate_index_with(
        &pair,
        k,
        &CandidateSearch::Ivf(IvfParams {
            nlist,
            nprobe: nlist,
            ..IvfParams::default()
        }),
    );
    for i in 0..exact.source_ids().len() {
        let a: Vec<(EntityId, u32)> = exact.candidates(i).map(|(e, s)| (e, s.to_bits())).collect();
        let b: Vec<(EntityId, u32)> = full.candidates(i).map(|(e, s)| (e, s.to_bits())).collect();
        assert_eq!(a, b, "row {i} diverged at nprobe = nlist");
    }
    assert_eq!(
        exact.greedy_alignment().to_vec(),
        full.greedy_alignment().to_vec(),
        "greedy alignment must be unchanged at recall-1.0 settings"
    );
}
