//! Acceptance test for the sharded scatter-gather engine on trained
//! embeddings: on the synthetic ZH-EN dataset, routing three quarters of the
//! clustered shards must reach >= 0.95 recall@10 against the exact scan, and at
//! `route_shards = nshards` (with exhaustive per-shard engines) it must
//! leave every candidate list — forward and reverse — and every greedy
//! alignment decision bit-identical.

use ea_data::datasets::{load, DatasetName, DatasetScale};
use ea_embed::{CandidateSearch, ShardParams, ShardPartition};
use ea_graph::EntityId;
use ea_models::{build_model, ModelKind, TrainConfig};
use std::collections::HashSet;

#[test]
fn sharded_reaches_095_recall_at_10_on_zh_en_and_is_exact_at_full_routing() {
    let pair = load(DatasetName::ZhEn, DatasetScale::Small);
    let trained = build_model(ModelKind::GcnAlign, TrainConfig::default()).train(&pair);
    let k = 10usize;

    let exact = trained.candidate_index(&pair, k);
    let nshards = 8usize;
    let route = nshards * 3 / 4;
    let approx = trained.candidate_index_with(
        &pair,
        k,
        &CandidateSearch::Sharded(ShardParams {
            nshards,
            route_shards: route,
            partition: ShardPartition::Clustered,
            ..ShardParams::exhaustive()
        }),
    );

    // Recall@10 over all test sources, plus the exact-subset contract: any
    // candidate the sharded path returns that the exact top-k also contains
    // must carry the identical score bits.
    let mut kept = 0usize;
    let mut total = 0usize;
    for i in 0..exact.source_ids().len() {
        let exact_row: Vec<(EntityId, f32)> = exact.candidates(i).collect();
        let exact_ids: HashSet<EntityId> = exact_row.iter().map(|&(e, _)| e).collect();
        for (e, score) in approx.candidates(i) {
            if exact_ids.contains(&e) {
                kept += 1;
                let (_, exact_score) = exact_row.iter().find(|&&(x, _)| x == e).unwrap();
                assert_eq!(
                    score.to_bits(),
                    exact_score.to_bits(),
                    "sharded engine re-scored a candidate in row {i}"
                );
            }
        }
        total += exact_row.len();
    }
    let recall = kept as f64 / total.max(1) as f64;
    assert!(
        recall >= 0.95,
        "sharded recall@10 too low at route = 3/4 nshards: {recall:.3} \
         (nshards {nshards}, route {route})"
    );

    // Full routing: recall 1.0, candidate lists (forward and reverse) and
    // greedy decisions bit-identical to the exact scan.
    let full = trained.candidate_index_with(
        &pair,
        k,
        &CandidateSearch::Sharded(ShardParams {
            nshards,
            partition: ShardPartition::Clustered,
            ..ShardParams::exhaustive()
        }),
    );
    for i in 0..exact.source_ids().len() {
        let a: Vec<(EntityId, u32)> = exact.candidates(i).map(|(e, s)| (e, s.to_bits())).collect();
        let b: Vec<(EntityId, u32)> = full.candidates(i).map(|(e, s)| (e, s.to_bits())).collect();
        assert_eq!(a, b, "row {i} diverged at route = nshards");
    }
    // Reverse lists go through the bidirectional build (the shape repair
    // cr2/cr3 and Dual-AMN mining use): full routing must keep every
    // best-source decision and its score bits.
    use ea_embed::CandidateSource;
    let sources = pair.test_source_entities();
    let targets: Vec<EntityId> = pair.target.entity_ids().collect();
    let src_table = trained.entities(ea_graph::KgSide::Source);
    let tgt_table = trained.entities(ea_graph::KgSide::Target);
    let exact_bi =
        CandidateSearch::Exact.bidirectional_index(src_table, &sources, tgt_table, &targets, k);
    let full_bi = CandidateSearch::Sharded(ShardParams {
        nshards,
        partition: ShardPartition::Clustered,
        ..ShardParams::exhaustive()
    })
    .bidirectional_index(src_table, &sources, tgt_table, &targets, k);
    for &t in &targets {
        let a = exact_bi
            .best_source_for_target(t)
            .map(|(e, s)| (e, s.to_bits()));
        let b = full_bi
            .best_source_for_target(t)
            .map(|(e, s)| (e, s.to_bits()));
        assert_eq!(
            a, b,
            "reverse list diverged for target {t:?} at route = nshards"
        );
    }
    assert_eq!(
        exact.greedy_alignment().to_vec(),
        full.greedy_alignment().to_vec(),
        "greedy alignment must be unchanged at recall-1.0 settings"
    );
}
