//! Criterion benchmarks of the graph substrate (neighbourhood queries,
//! functionality, path enumeration, dataset generation).

use criterion::{criterion_group, criterion_main, Criterion};
use ea_data::datasets::{load, DatasetName, DatasetScale};
use ea_graph::{paths::enumerate_paths, AlignmentPair, BfsScratch, RelationFunctionality};
use ea_models::{build_model, ModelKind, TrainConfig};
use exea_core::{BatchOptions, ExEa, ExeaConfig};
use std::hint::black_box;

fn bench_graph_queries(c: &mut Criterion) {
    let pair = load(DatasetName::FrEn, DatasetScale::Small);
    let entities: Vec<_> = pair.source.entity_ids().take(100).collect();

    c.bench_function("two_hop_triples", |b| {
        b.iter(|| {
            for &e in &entities {
                black_box(pair.source.triples_within_hops(e, 2));
            }
        })
    });
    c.bench_function("path_enumeration_len2", |b| {
        b.iter(|| {
            for &e in &entities {
                black_box(enumerate_paths(&pair.source, e, 2));
            }
        })
    });
    c.bench_function("relation_functionality", |b| {
        b.iter(|| black_box(RelationFunctionality::compute(&pair.source)))
    });
}

/// Old allocating `neighbors` vs the zero-allocation CSR `neighbors_iter`,
/// and hash-set-free BFS on reusable scratch buffers.
fn bench_neighbor_iteration(c: &mut Criterion) {
    let pair = load(DatasetName::FrEn, DatasetScale::Small);
    let kg = &pair.source;
    let entities: Vec<_> = kg.entity_ids().collect();

    c.bench_function("neighbors_alloc_vec", |b| {
        b.iter(|| {
            let mut degree_sum = 0usize;
            for &e in &entities {
                degree_sum += kg.neighbors(e).len();
            }
            black_box(degree_sum)
        })
    });
    c.bench_function("neighbors_iter_csr", |b| {
        b.iter(|| {
            let mut degree_sum = 0usize;
            for &e in &entities {
                degree_sum += kg.neighbors_iter(e).count();
            }
            black_box(degree_sum)
        })
    });
    c.bench_function("two_hop_triples_scratch", |b| {
        let sample: Vec<_> = entities.iter().copied().take(100).collect();
        let mut scratch = BfsScratch::new();
        let mut out = Vec::new();
        b.iter(|| {
            let mut total = 0usize;
            for &e in &sample {
                kg.triples_within_hops_into(e, 2, &mut scratch, &mut out);
                total += out.len();
            }
            black_box(total)
        })
    });
}

/// Sequential vs parallel batched explanation of every model prediction.
fn bench_batch_pipeline(c: &mut Criterion) {
    let pair = load(DatasetName::ZhEn, DatasetScale::Small);
    let trained = build_model(ModelKind::GcnAlign, TrainConfig::fast()).train(&pair);
    // Second-order explanations: the heavy per-pair workload (Fig. 4's
    // worry) and the regime where fanning pairs out pays off.
    let exea = ExEa::new(&pair, &trained, ExeaConfig::second_order());
    let pairs: Vec<AlignmentPair> = exea.predictions().iter().collect();
    let state = exea.default_alignment_state();

    let mut group = c.benchmark_group("explain_all_second_order");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            black_box(exea.explain_and_score_batch(
                &pairs,
                &state,
                true,
                &BatchOptions::sequential(),
            ))
        })
    });
    group.bench_function("parallel", |b| {
        b.iter(|| {
            black_box(exea.explain_and_score_batch(
                &pairs,
                &state,
                true,
                &BatchOptions::always_parallel(),
            ))
        })
    });
    group.finish();
}

fn bench_dataset_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataset_generation");
    group.sample_size(10);
    group.bench_function("zh_en_small", |b| {
        b.iter(|| black_box(load(DatasetName::ZhEn, DatasetScale::Small)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_graph_queries,
    bench_neighbor_iteration,
    bench_batch_pipeline,
    bench_dataset_generation
);
criterion_main!(benches);
