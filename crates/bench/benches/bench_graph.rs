//! Criterion benchmarks of the graph substrate (neighbourhood queries,
//! functionality, path enumeration, dataset generation).

use criterion::{criterion_group, criterion_main, Criterion};
use ea_data::datasets::{load, DatasetName, DatasetScale};
use ea_graph::{paths::enumerate_paths, RelationFunctionality};
use std::hint::black_box;

fn bench_graph_queries(c: &mut Criterion) {
    let pair = load(DatasetName::FrEn, DatasetScale::Small);
    let entities: Vec<_> = pair.source.entity_ids().take(100).collect();

    c.bench_function("two_hop_triples", |b| {
        b.iter(|| {
            for &e in &entities {
                black_box(pair.source.triples_within_hops(e, 2));
            }
        })
    });
    c.bench_function("path_enumeration_len2", |b| {
        b.iter(|| {
            for &e in &entities {
                black_box(enumerate_paths(&pair.source, e, 2));
            }
        })
    });
    c.bench_function("relation_functionality", |b| {
        b.iter(|| black_box(RelationFunctionality::compute(&pair.source)))
    });
}

fn bench_dataset_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataset_generation");
    group.sample_size(10);
    group.bench_function("zh_en_small", |b| {
        b.iter(|| black_box(load(DatasetName::ZhEn, DatasetScale::Small)))
    });
    group.finish();
}

criterion_group!(benches, bench_graph_queries, bench_dataset_generation);
criterion_main!(benches);
