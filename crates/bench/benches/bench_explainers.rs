//! Criterion micro-benchmarks of explanation generation (the Fig. 4 quantity):
//! ExEA vs the perturbation baselines on one trained model.

use criterion::{criterion_group, criterion_main, Criterion};
use ea_baselines::{BaselineMethod, PerturbationExplainer};
use ea_data::datasets::{load, DatasetName, DatasetScale};
use ea_models::{build_model, ModelKind, TrainConfig};
use exea_core::{ExEa, ExeaConfig, Explainer};
use std::hint::black_box;

fn bench_explanation_generation(c: &mut Criterion) {
    let pair = load(DatasetName::ZhEn, DatasetScale::Small);
    let trained = build_model(ModelKind::DualAmn, TrainConfig::fast()).train(&pair);
    let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
    let pairs: Vec<_> = pair.reference.iter().take(10).collect();

    let mut group = c.benchmark_group("explanation_generation");
    group.sample_size(10);
    group.bench_function("exea_first_order", |b| {
        b.iter(|| {
            for p in &pairs {
                black_box(exea.explain(p.source, p.target));
            }
        })
    });
    for method in [BaselineMethod::EaLime, BaselineMethod::EaShapley] {
        let explainer = PerturbationExplainer::new(&pair, &trained, method);
        group.bench_function(method.label(), |b| {
            b.iter(|| {
                for p in &pairs {
                    black_box(explainer.explain_pair(p.source, p.target, 6));
                }
            })
        });
    }
    group.finish();
}

fn bench_adg_construction(c: &mut Criterion) {
    let pair = load(DatasetName::ZhEn, DatasetScale::Small);
    let trained = build_model(ModelKind::GcnAlign, TrainConfig::fast()).train(&pair);
    let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
    let pairs: Vec<_> = pair.reference.iter().take(20).collect();
    let explanations: Vec<_> = pairs
        .iter()
        .map(|p| exea.explain(p.source, p.target))
        .collect();
    c.bench_function("adg_construction", |b| {
        b.iter(|| {
            for e in &explanations {
                black_box(exea.adg(e, true));
            }
        })
    });
}

criterion_group!(
    benches,
    bench_explanation_generation,
    bench_adg_construction
);
criterion_main!(benches);
