//! Criterion benchmarks of model training and alignment inference.

use criterion::{criterion_group, criterion_main, Criterion};
use ea_data::datasets::{load, DatasetName, DatasetScale};
use ea_models::{build_model, ModelKind, TrainConfig};
use std::hint::black_box;

fn bench_training(c: &mut Criterion) {
    let pair = load(DatasetName::ZhEn, DatasetScale::Small);
    let mut group = c.benchmark_group("model_training");
    group.sample_size(10);
    for kind in [ModelKind::MTransE, ModelKind::GcnAlign, ModelKind::DualAmn] {
        let model = build_model(kind, TrainConfig::fast());
        group.bench_function(kind.label(), |b| b.iter(|| black_box(model.train(&pair))));
    }
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    let pair = load(DatasetName::ZhEn, DatasetScale::Small);
    let trained = build_model(ModelKind::DualAmn, TrainConfig::fast()).train(&pair);
    c.bench_function("greedy_alignment_inference", |b| {
        b.iter(|| black_box(trained.predict(&pair)))
    });
}

criterion_group!(benches, bench_training, bench_inference);
criterion_main!(benches);
