//! Criterion benchmark of the full repair pipeline (Table III/IV workload).

use criterion::{criterion_group, criterion_main, Criterion};
use ea_data::datasets::{load, DatasetName, DatasetScale};
use ea_models::{build_model, ModelKind, TrainConfig};
use exea_core::{ExEa, ExeaConfig, RepairConfig};
use std::hint::black_box;

fn bench_repair(c: &mut Criterion) {
    let pair = load(DatasetName::ZhEn, DatasetScale::Small);
    let trained = build_model(ModelKind::MTransE, TrainConfig::fast()).train(&pair);
    let exea = ExEa::new(&pair, &trained, ExeaConfig::default());

    let mut group = c.benchmark_group("repair");
    group.sample_size(10);
    group.bench_function("full_pipeline", |b| {
        b.iter(|| black_box(exea.repair(&RepairConfig::default())))
    });
    group.bench_function("one_to_many_only", |b| {
        b.iter(|| black_box(exea.repair(&RepairConfig::without_cr3())))
    });
    group.finish();
}

fn bench_framework_construction(c: &mut Criterion) {
    let pair = load(DatasetName::ZhEn, DatasetScale::Small);
    let trained = build_model(ModelKind::GcnAlign, TrainConfig::fast()).train(&pair);
    c.bench_function("exea_framework_construction", |b| {
        b.iter(|| black_box(ExEa::new(&pair, &trained, ExeaConfig::default())))
    });
}

criterion_group!(benches, bench_repair, bench_framework_construction);
criterion_main!(benches);
