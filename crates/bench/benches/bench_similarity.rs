//! Criterion benchmarks of the alignment-inference hot paths: the dense
//! `SimilarityMatrix` reference vs the blocked top-k `CandidateIndex` engine
//! (build + greedy alignment, CSLS re-scoring, and the cr2-style id-lookup
//! loop that used to be quadratic), the IVF ANN pre-filter vs the exact scan
//! at n >= 2000 targets, the register-blocked kernel vs the retired
//! one-accumulator scalar dot, and the SQ8 quantized scan vs the exact f32
//! sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use ea_embed::{
    kernel, CandidateIndex, CandidateSearch, CandidateSource, EmbeddingTable, IvfIndex, IvfParams,
    QuantizedTable, SimilarityMatrix, Sq8Params,
};
use ea_graph::EntityId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const K: usize = 5;
const DIM: usize = 32;

fn tables(
    n_s: usize,
    n_t: usize,
) -> (EmbeddingTable, EmbeddingTable, Vec<EntityId>, Vec<EntityId>) {
    let mut rng = StdRng::seed_from_u64(7);
    let s = EmbeddingTable::xavier(n_s, DIM, &mut rng);
    let t = EmbeddingTable::xavier(n_t, DIM, &mut rng);
    let sids: Vec<EntityId> = (0..n_s as u32).map(EntityId).collect();
    let tids: Vec<EntityId> = (0..n_t as u32).map(EntityId).collect();
    (s, t, sids, tids)
}

/// Dense matrix vs blocked engine: build + greedy alignment.
fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("similarity_inference");
    group.sample_size(10);
    for &(n_s, n_t) in &[(200usize, 400usize), (400, 800)] {
        let (s, t, sids, tids) = tables(n_s, n_t);
        group.bench_function(&format!("dense_{n_s}x{n_t}"), |b| {
            b.iter(|| black_box(SimilarityMatrix::compute(&s, &sids, &t, &tids).greedy_alignment()))
        });
        group.bench_function(&format!("blocked_topk_{n_s}x{n_t}"), |b| {
            b.iter(|| {
                black_box(CandidateIndex::compute(&s, &sids, &t, &tids, K).greedy_alignment())
            })
        });
    }
    group.finish();
}

/// CSLS re-scoring: dense full-matrix re-rank vs blocked top-k re-score.
fn bench_csls(c: &mut Criterion) {
    let (s, t, sids, tids) = tables(300, 600);
    let matrix = SimilarityMatrix::compute(&s, &sids, &t, &tids);
    let index = CandidateIndex::compute_bidirectional(&s, &sids, &t, &tids, K);
    let mut group = c.benchmark_group("csls");
    group.sample_size(10);
    group.bench_function("dense_300x600", |b| {
        b.iter(|| {
            let mut m = matrix.clone();
            m.apply_csls(3);
            black_box(m)
        })
    });
    group.bench_function("blocked_topk_300x600", |b| {
        b.iter(|| {
            let mut i = index.clone();
            i.apply_csls(3);
            black_box(i)
        })
    });
    group.finish();
}

/// The cr2 repair access pattern: for every source entity, an id→row lookup
/// plus a walk of its top-k candidates. With the hash-backed maps this is
/// O(n·k); the old linear-scan `source_index` made it O(n²).
fn bench_cr2_lookup_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("cr2_candidate_walk");
    group.sample_size(10);
    for &n in &[500usize, 1000, 2000] {
        let (s, t, sids, tids) = tables(n, n);
        let index = CandidateIndex::compute(&s, &sids, &t, &tids, K);
        group.bench_function(&format!("lookup_walk_{n}"), |b| {
            b.iter(|| {
                let mut claimed = 0usize;
                for &sid in &sids {
                    let row = index.source_index(sid).unwrap();
                    for rank in 0..K {
                        if index.ranked_target(row, rank).is_some() {
                            claimed += 1;
                        }
                    }
                }
                black_box(claimed)
            })
        });
    }
    group.finish();
}

/// IVF ANN pre-filter vs the exact blocked scan, per-query-batch cost. The
/// quantizer is built once outside the timing loop (the deployment shape:
/// build amortises over query batches) and benched separately. Clustered
/// corpora are the representative case for trained embeddings — random
/// uniform vectors have no cluster structure for any IVF to exploit.
fn bench_ann_prefilter(c: &mut Criterion) {
    let mut group = c.benchmark_group("ann_prefilter");
    group.sample_size(10);
    const K: usize = 10;
    for &n_t in &[2000usize, 4000] {
        let n_s = 256;
        let mut rng = StdRng::seed_from_u64(11);
        // Clustered targets: cluster centres plus small jitter; queries are
        // jittered copies of random targets.
        let centres = EmbeddingTable::xavier(64, DIM, &mut rng);
        let mut t = EmbeddingTable::zeros(n_t, DIM);
        for i in 0..n_t {
            let c_row = i % centres.rows();
            let row = t.row_mut(i);
            row.copy_from_slice(centres.row(c_row));
            for v in row.iter_mut() {
                *v += 0.05 * rand::Rng::gen_range(&mut rng, -1.0f32..=1.0);
            }
        }
        let mut s = EmbeddingTable::zeros(n_s, DIM);
        for i in 0..n_s {
            let t_row = rand::Rng::gen_range(&mut rng, 0..n_t);
            let row = s.row_mut(i);
            row.copy_from_slice(t.row(t_row));
            for v in row.iter_mut() {
                *v += 0.02 * rand::Rng::gen_range(&mut rng, -1.0f32..=1.0);
            }
        }
        let sids: Vec<EntityId> = (0..n_s as u32).map(EntityId).collect();
        let tids: Vec<EntityId> = (0..n_t as u32).map(EntityId).collect();

        let s_rows: Vec<usize> = (0..n_s).collect();
        let t_rows: Vec<usize> = (0..n_t).collect();
        let s_norm = s.gather_normalized(&s_rows);
        let t_norm = t.gather_normalized(&t_rows);
        let params = IvfParams::default();
        let nlist = params.resolved_nlist(n_t);
        let nprobe = params.resolved_nprobe(nlist);
        let index = IvfIndex::build(&t_norm, &params);

        group.bench_function(&format!("exact_scan_{n_s}x{n_t}"), |b| {
            b.iter(|| black_box(CandidateIndex::compute(&s, &sids, &t, &tids, K)))
        });
        group.bench_function(
            &format!("ivf_query_{n_s}x{n_t}_nlist{nlist}_nprobe{nprobe}"),
            |b| b.iter(|| black_box(index.search(&s_norm, &t_norm, K, nprobe))),
        );
        group.bench_function(&format!("ivf_build_{n_t}_nlist{nlist}"), |b| {
            b.iter(|| black_box(IvfIndex::build(&t_norm, &params)))
        });
    }
    group.finish();
}

/// The retired per-pair dot: one sequential accumulator, the loop-carried
/// dependency the register-blocked kernel removes. Kept here as the baseline
/// the kernel's speedup is measured against.
fn scalar_dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Normalised tables at the bench scale the kernel/SQ8 acceptance numbers
/// are quoted at: 1400 queries x 2200 corpus rows, d = 100.
fn kernel_scale_tables() -> (EmbeddingTable, EmbeddingTable) {
    const D: usize = 100;
    let mut rng = StdRng::seed_from_u64(23);
    let s = EmbeddingTable::xavier(1400, D, &mut rng);
    let t = EmbeddingTable::xavier(2200, D, &mut rng);
    let s_rows: Vec<usize> = (0..s.rows()).collect();
    let t_rows: Vec<usize> = (0..t.rows()).collect();
    (s.gather_normalized(&s_rows), t.gather_normalized(&t_rows))
}

/// Register-blocked kernel vs the retired scalar dot: the full exact scoring
/// sweep (every query row against the whole corpus) at 1400x2200, d=100.
fn bench_kernel(c: &mut Criterion) {
    let (s, t) = kernel_scale_tables();
    let (n_s, n_t, dim) = (s.rows(), t.rows(), t.dim());
    let mut group = c.benchmark_group("kernel");
    group.sample_size(10);
    group.bench_function("scalar_scan_1400x2200_d100", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for i in 0..n_s {
                let q = s.row(i);
                for j in 0..n_t {
                    acc += scalar_dot(q, t.row(j));
                }
            }
            black_box(acc)
        })
    });
    group.bench_function("kernel_scan_1400x2200_d100", |b| {
        let mut out = vec![0.0f32; n_t];
        b.iter(|| {
            let mut acc = 0.0f32;
            for i in 0..n_s {
                kernel::scan_block(s.row(i), t.data(), dim, &mut out);
                acc += black_box(&out)[0];
            }
            black_box(acc)
        })
    });
    group.finish();
}

/// SQ8 quantized scan vs the exact f32 sweep: the raw integer ADC byte scan
/// (4x less memory traffic per candidate), the end-to-end candidate engines
/// at equal k (two corpus sizes — the byte panel's edge grows as the f32
/// corpus outgrows the cache), and the one-off quantization cost.
fn bench_sq8(c: &mut Criterion) {
    const K: usize = 10;
    const D: usize = 100;
    let mut group = c.benchmark_group("sq8");
    group.sample_size(10);
    for &(n_s, n_t) in &[(1400usize, 2200usize), (400, 8000)] {
        let mut rng = StdRng::seed_from_u64(23);
        let s = EmbeddingTable::xavier(n_s, D, &mut rng);
        let t = EmbeddingTable::xavier(n_t, D, &mut rng);
        let s_rows: Vec<usize> = (0..n_s).collect();
        let t_rows: Vec<usize> = (0..n_t).collect();
        let s = s.gather_normalized(&s_rows);
        let t = t.gather_normalized(&t_rows);
        let quantized = QuantizedTable::build(&t);
        let sids: Vec<EntityId> = (0..n_s as u32).map(EntityId).collect();
        let tids: Vec<EntityId> = (0..n_t as u32).map(EntityId).collect();
        group.bench_function(&format!("sq8_adc_scan_{n_s}x{n_t}_d100"), |b| {
            let mut lut = Vec::new();
            let mut out = vec![0.0f32; n_t];
            b.iter(|| {
                let mut acc = 0.0f32;
                for i in 0..n_s {
                    let (base, step) = quantized.prepare_query(s.row(i), &mut lut);
                    quantized.scan(&lut, base, step, &mut out);
                    acc += black_box(&out)[0];
                }
                black_box(acc)
            })
        });
        group.bench_function(&format!("exact_engine_{n_s}x{n_t}_d100_k10"), |b| {
            b.iter(|| black_box(CandidateSearch::Exact.forward_index(&s, &sids, &t, &tids, K)))
        });
        group.bench_function(&format!("sq8_engine_{n_s}x{n_t}_d100_k10"), |b| {
            let search = CandidateSearch::Sq8(Sq8Params::default());
            b.iter(|| black_box(search.forward_index(&s, &sids, &t, &tids, K)))
        });
        group.bench_function(&format!("sq8_quantize_{n_t}_d100"), |b| {
            b.iter(|| black_box(QuantizedTable::build(&t)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_inference,
    bench_csls,
    bench_cr2_lookup_loop,
    bench_ann_prefilter,
    bench_kernel,
    bench_sq8
);
criterion_main!(benches);
