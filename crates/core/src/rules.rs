//! Relation alignment and ¬sameAs rule mining (paper §IV-A).
//!
//! Detecting relation-alignment conflicts needs two ingredients:
//!
//! 1. **Relation alignment across the two KGs.** The paper encodes relation
//!    names with a pre-trained language model when names are available and
//!    falls back to the EA model's relation embeddings otherwise. This
//!    reproduction combines a deterministic character-n-gram name encoder
//!    (the offline stand-in for BERT, see `DESIGN.md` §3) with relation
//!    embeddings derived in the *shared* entity space (Eq. 1), and keeps
//!    mutually-best-matching relation pairs.
//! 2. **¬sameAs rules inside the target KG.** Two relations `r` and `r'`
//!    imply distinct objects if no head entity ever reaches the same tail
//!    through both, while at least one head entity reaches *different* tails
//!    through them (the paper's "real rule instance" condition).

use crate::relation_embed::derive_from_entities;
use ea_embed::vector;
use ea_graph::{KgPair, KnowledgeGraph, RelationId};
use ea_models::TrainedAlignment;
use std::collections::{HashMap, HashSet};

/// Dimension of the character-n-gram name encoding.
const NAME_ENCODING_DIM: usize = 64;

/// Encodes a relation (or entity) name into a fixed-size vector by hashing
/// its character trigrams. Lexically similar names produce similar vectors,
/// which is the property the relation-alignment step needs from a name
/// encoder; it is deterministic and needs no external model.
pub fn encode_name(name: &str) -> Vec<f32> {
    let mut v = vec![0.0f32; NAME_ENCODING_DIM];
    let normalized: String = name
        .chars()
        .flat_map(|c| c.to_lowercase())
        .filter(|c| c.is_alphanumeric())
        .collect();
    let chars: Vec<char> = normalized.chars().collect();
    if chars.is_empty() {
        return v;
    }
    for n in 1..=3usize {
        if chars.len() < n {
            continue;
        }
        for window in chars.windows(n) {
            let mut hash: u64 = 1469598103934665603;
            for &c in window {
                hash ^= c as u64;
                hash = hash.wrapping_mul(1099511628211);
            }
            hash ^= n as u64;
            v[(hash % NAME_ENCODING_DIM as u64) as usize] += 1.0;
        }
    }
    vector::normalize(&mut v);
    v
}

/// A bidirectional greedy relation alignment between the two KGs.
#[derive(Debug, Clone, Default)]
pub struct RelationAlignment {
    forward: HashMap<RelationId, RelationId>,
    backward: HashMap<RelationId, RelationId>,
}

impl RelationAlignment {
    /// The target relation aligned with a source relation, if any.
    pub fn target_of(&self, source: RelationId) -> Option<RelationId> {
        self.forward.get(&source).copied()
    }

    /// The source relation aligned with a target relation, if any.
    pub fn source_of(&self, target: RelationId) -> Option<RelationId> {
        self.backward.get(&target).copied()
    }

    /// Number of aligned relation pairs.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// Whether no relations are aligned.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Whether the given relation pair is aligned.
    pub fn contains(&self, source: RelationId, target: RelationId) -> bool {
        self.forward.get(&source) == Some(&target)
    }
}

/// Computes the relation alignment between the two KGs of `pair` by combining
/// name-encoding similarity with relation-embedding similarity (Eq. 1 in the
/// shared entity space) and keeping mutually-best matches.
pub fn relation_alignment(pair: &KgPair, trained: &TrainedAlignment) -> RelationAlignment {
    let n_s = pair.source.num_relations();
    let n_t = pair.target.num_relations();
    if n_s == 0 || n_t == 0 {
        return RelationAlignment::default();
    }

    let name_s: Vec<Vec<f32>> = (0..n_s)
        .map(|r| {
            encode_name(
                pair.source
                    .relation_name(RelationId(r as u32))
                    .unwrap_or(""),
            )
        })
        .collect();
    let name_t: Vec<Vec<f32>> = (0..n_t)
        .map(|r| {
            encode_name(
                pair.target
                    .relation_name(RelationId(r as u32))
                    .unwrap_or(""),
            )
        })
        .collect();

    // Structural relation embeddings in the shared entity space: these are
    // comparable across graphs because the entity spaces are calibrated.
    let struct_s = derive_from_entities(trained.entities(ea_graph::KgSide::Source), &pair.source);
    let struct_t = derive_from_entities(trained.entities(ea_graph::KgSide::Target), &pair.target);

    let score = |i: usize, j: usize| -> f64 {
        let name_sim = vector::cosine(&name_s[i], &name_t[j]) as f64;
        let struct_sim = vector::cosine(struct_s.row(i), struct_t.row(j)) as f64;
        0.5 * name_sim + 0.5 * struct_sim
    };

    // NaN-safe ascending total order: a NaN combined score loses the argmax
    // instead of panicking the `partial_cmp(..).unwrap()` these loops used.
    let mut best_t_for_s: Vec<usize> = Vec::with_capacity(n_s);
    for i in 0..n_s {
        let j = (0..n_t)
            .max_by(|&a, &b| ea_embed::order::asc_f64(score(i, a), score(i, b)))
            .unwrap();
        best_t_for_s.push(j);
    }
    let mut best_s_for_t: Vec<usize> = Vec::with_capacity(n_t);
    for j in 0..n_t {
        let i = (0..n_s)
            .max_by(|&a, &b| ea_embed::order::asc_f64(score(a, j), score(b, j)))
            .unwrap();
        best_s_for_t.push(i);
    }

    let mut alignment = RelationAlignment::default();
    for (i, &j) in best_t_for_s.iter().enumerate() {
        if best_s_for_t[j] == i {
            let s = RelationId(i as u32);
            let t = RelationId(j as u32);
            alignment.forward.insert(s, t);
            alignment.backward.insert(t, s);
        }
    }
    alignment
}

/// The set of mined `(r, r') → ¬sameAs(object, object')` rules of one KG.
#[derive(Debug, Clone, Default)]
pub struct NotSameAsRules {
    pairs: HashSet<(RelationId, RelationId)>,
}

impl NotSameAsRules {
    /// Whether the (unordered) relation pair implies distinct objects.
    pub fn implies_not_same(&self, a: RelationId, b: RelationId) -> bool {
        self.pairs.contains(&(a, b)) || self.pairs.contains(&(b, a))
    }

    /// Number of mined rules (unordered pairs stored once).
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no rules were mined.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// Mines ¬sameAs rules inside one KG.
///
/// A relation pair `(r, r')` becomes a rule when (a) no head entity reaches
/// the same tail through both relations, and (b) at least one head entity
/// reaches *different* tails through them (the "real rule instance"
/// condition that prunes vacuous rules).
pub fn mine_not_same_as_rules(kg: &KnowledgeGraph) -> NotSameAsRules {
    // For every head entity: relation -> set of tails.
    let mut violating: HashSet<(RelationId, RelationId)> = HashSet::new();
    let mut instantiated: HashSet<(RelationId, RelationId)> = HashSet::new();

    for head in kg.entity_ids() {
        let mut by_relation: HashMap<RelationId, Vec<ea_graph::EntityId>> = HashMap::new();
        for t in kg.outgoing_triples(head) {
            by_relation.entry(t.relation).or_default().push(t.tail);
        }
        if by_relation.len() < 2 {
            continue;
        }
        let relations: Vec<RelationId> = {
            let mut r: Vec<_> = by_relation.keys().copied().collect();
            r.sort();
            r
        };
        for (idx, &ra) in relations.iter().enumerate() {
            for &rb in &relations[idx + 1..] {
                let tails_a: HashSet<_> = by_relation[&ra].iter().copied().collect();
                let tails_b: HashSet<_> = by_relation[&rb].iter().copied().collect();
                if tails_a.intersection(&tails_b).next().is_some() {
                    violating.insert((ra, rb));
                } else {
                    instantiated.insert((ra, rb));
                }
            }
        }
    }

    let pairs = instantiated
        .into_iter()
        .filter(|p| !violating.contains(p))
        .collect();
    NotSameAsRules { pairs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ea_data::datasets::{load, DatasetName, DatasetScale};
    use ea_models::{build_model, ModelKind, TrainConfig};

    #[test]
    fn name_encoding_is_deterministic_and_similarity_reflects_overlap() {
        let a = encode_name("zh:rel_5");
        let b = encode_name("en:rel_5");
        let c = encode_name("en:rel_19");
        assert_eq!(a, encode_name("zh:rel_5"));
        let sim_same = vector::cosine(&a, &b);
        let sim_diff = vector::cosine(&a, &c);
        assert!(
            sim_same > sim_diff,
            "shared suffix should score higher ({sim_same} vs {sim_diff})"
        );
        assert_eq!(encode_name(""), vec![0.0; NAME_ENCODING_DIM]);
    }

    #[test]
    fn relation_alignment_recovers_shared_schema() {
        let pair = load(DatasetName::ZhEn, DatasetScale::Small);
        let trained = build_model(ModelKind::GcnAlign, TrainConfig::fast()).train(&pair);
        let alignment = relation_alignment(&pair, &trained);
        assert!(!alignment.is_empty());
        // In the cross-lingual synthetic datasets relation k on the source
        // corresponds to relation k on the target; most mutual matches should
        // recover that correspondence.
        let correct = (0..pair.source.num_relations().min(pair.target.num_relations()))
            .filter(|&r| alignment.contains(RelationId(r as u32), RelationId(r as u32)))
            .count();
        assert!(
            correct * 2 > alignment.len(),
            "at least half of matched relations should be correct ({correct}/{})",
            alignment.len()
        );
        // Bidirectional lookups are consistent.
        for r in 0..pair.source.num_relations() {
            let r = RelationId(r as u32);
            if let Some(t) = alignment.target_of(r) {
                assert_eq!(alignment.source_of(t), Some(r));
            }
        }
    }

    #[test]
    fn not_same_as_rules_require_instances_and_no_violations() {
        let mut kg = KnowledgeGraph::new();
        // successor / predecessor from the same head always reach different
        // tails -> rule.
        kg.add_triple_by_names("b", "successor", "c");
        kg.add_triple_by_names("b", "predecessor", "a");
        // located_in / part_of share a tail for head x -> no rule.
        kg.add_triple_by_names("x", "located_in", "y");
        kg.add_triple_by_names("x", "part_of", "y");
        // lonely relation with no co-occurring partner -> no rule either way.
        kg.add_triple_by_names("z", "alone", "w");
        let rules = mine_not_same_as_rules(&kg);
        let successor = kg.relation_by_name("successor").unwrap();
        let predecessor = kg.relation_by_name("predecessor").unwrap();
        let located = kg.relation_by_name("located_in").unwrap();
        let part_of = kg.relation_by_name("part_of").unwrap();
        let alone = kg.relation_by_name("alone").unwrap();
        assert!(rules.implies_not_same(successor, predecessor));
        assert!(rules.implies_not_same(predecessor, successor));
        assert!(!rules.implies_not_same(located, part_of));
        assert!(!rules.implies_not_same(alone, successor));
        assert!(!rules.is_empty());
    }

    #[test]
    fn rules_on_synthetic_data_are_bounded_and_symmetric() {
        let pair = load(DatasetName::ZhEn, DatasetScale::Small);
        let rules = mine_not_same_as_rules(&pair.target);
        let max_pairs = pair.target.num_relations() * pair.target.num_relations();
        assert!(rules.len() <= max_pairs);
        // implies_not_same must be symmetric by construction.
        for a in 0..pair.target.num_relations() as u32 {
            for b in 0..pair.target.num_relations() as u32 {
                assert_eq!(
                    rules.implies_not_same(RelationId(a), RelationId(b)),
                    rules.implies_not_same(RelationId(b), RelationId(a))
                );
            }
        }
    }

    #[test]
    fn empty_graph_has_no_rules_or_alignment() {
        let kg = KnowledgeGraph::new();
        assert!(mine_not_same_as_rules(&kg).is_empty());
    }
}
