//! ExEA hyper-parameters.

use ea_embed::vector::sigmoid;
use ea_embed::CandidateSearch;

/// Hyper-parameters of the ExEA framework.
///
/// The names follow the paper: `alpha` discounts moderately-influential edges
/// (Eq. 7) and weights the embedding-similarity term of the alignment score
/// (Algorithm 2, line 14); `theta` and `gamma` are the thresholds of the
/// adaptive confidence aggregation (Eq. 9); `beta = sigmoid(theta)` is the
/// low-confidence threshold (§IV-C).
#[derive(Debug, Clone, PartialEq)]
pub struct ExeaConfig {
    /// Neighbourhood radius (in hops) used for explanation candidates.
    /// The paper uses `h ≤ 2`; 1 is the default for readability and speed.
    pub hops: usize,
    /// Discount for moderately-influential edges and weight of the embedding
    /// similarity inside the alignment score.
    pub alpha: f64,
    /// Threshold on the strong-edge aggregation below which moderate edges
    /// are also aggregated (Eq. 9).
    pub theta: f64,
    /// Threshold on the moderate-edge aggregation below which weak edges are
    /// also aggregated (Eq. 9).
    pub gamma: f64,
    /// Fixed small weight assigned to weakly-influential edges.
    pub weak_edge_weight: f64,
    /// Number of candidate target entities considered during repair
    /// (the `k` of Algorithms 1 and 2).
    pub top_k: usize,
    /// How candidate lists (and the initial greedy prediction) are produced:
    /// the exact blocked scan, the IVF approximate pre-filter
    /// ([`CandidateSearch::Ivf`], optionally with SQ8 list storage), the
    /// SQ8 quantized scan ([`CandidateSearch::Sq8`]) for corpora where the
    /// exact O(n_s·n_t) sweep dominates, or the sharded scatter-gather
    /// engine ([`CandidateSearch::Sharded`]) that fans the corpus over
    /// per-shard containers and merges their partial top-k lists, or the
    /// LSM mutable engine ([`CandidateSearch::Lsm`]) that layers sealed
    /// segments under an exact-scanned in-memory tail so inserts/deletes
    /// need no rebuild. At `nprobe = nlist` / `rerank_factor = usize::MAX`
    /// (and, for shards, `route_shards = nshards`; for LSM, the default
    /// exhaustive per-segment probing) the approximate paths are
    /// bit-identical to the exact one; below that they trade recall for
    /// query time, but every score they do return is still the bit-exact
    /// f32 dot (see the README's recall/speed tables).
    pub candidate_search: CandidateSearch,
}

impl Default for ExeaConfig {
    fn default() -> Self {
        Self {
            hops: 1,
            alpha: 0.5,
            theta: 0.0,
            gamma: 0.0,
            weak_edge_weight: 0.05,
            top_k: 5,
            // Exact unless the EXEA_CANDIDATE_SEARCH override (CI's hook for
            // running the whole pipeline on an approximate engine) is set.
            candidate_search: CandidateSearch::default_from_env(),
        }
    }
}

impl ExeaConfig {
    /// Configuration using second-order (two-hop) candidate triples, as in
    /// Table II of the paper.
    pub fn second_order() -> Self {
        Self {
            hops: 2,
            ..Self::default()
        }
    }

    /// The low-confidence threshold `beta = sigmoid(theta)` (§IV-C).
    pub fn beta(&self) -> f64 {
        sigmoid(self.theta)
    }

    /// Validates the configuration, panicking on nonsensical values.
    pub fn validate(&self) {
        assert!(
            self.hops >= 1 && self.hops <= 3,
            "hops must be between 1 and 3"
        );
        assert!((0.0..=1.0).contains(&self.alpha), "alpha must be in [0, 1]");
        assert!(
            self.weak_edge_weight >= 0.0,
            "weak edge weight must be >= 0"
        );
        assert!(self.top_k >= 1, "top_k must be at least 1");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        let c = ExeaConfig::default();
        c.validate();
        assert_eq!(c.hops, 1);
        // With theta = 0, beta = sigmoid(0) = 0.5 as in the paper.
        assert!((c.beta() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn second_order_uses_two_hops() {
        let c = ExeaConfig::second_order();
        c.validate();
        assert_eq!(c.hops, 2);
    }

    #[test]
    fn beta_follows_theta() {
        let c = ExeaConfig {
            theta: 2.0,
            ..ExeaConfig::default()
        };
        assert!(c.beta() > 0.85);
        let c = ExeaConfig {
            theta: -2.0,
            ..ExeaConfig::default()
        };
        assert!(c.beta() < 0.15);
    }

    #[test]
    #[should_panic(expected = "hops")]
    fn invalid_hops_rejected() {
        ExeaConfig {
            hops: 0,
            ..ExeaConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_rejected() {
        ExeaConfig {
            alpha: 1.5,
            ..ExeaConfig::default()
        }
        .validate();
    }
}
