//! Batched, parallel explanation + ADG construction.
//!
//! Explanation generation dominates ExEA's wall-clock time: every predicted
//! pair needs a semantic-matching subgraph and an alignment dependency
//! graph, and the three repair loops re-score whole alignments repeatedly.
//! All of that work is embarrassingly parallel — each pair only *reads* the
//! shared KG pair, relation functionalities, cached relation paths and rule
//! tables — so this module fans it out over a rayon worker pool.
//!
//! **Determinism.** Workers never share mutable state and results are
//! collected in input order, so a parallel batch is bit-identical to the
//! sequential loop it replaces (asserted by
//! `tests/batch_determinism.rs`). Confidence maps built from a batch are
//! keyed `(source, target)` in a `BTreeMap`, giving a canonical merge order
//! regardless of worker scheduling.

use crate::adg::Adg;
use crate::explanation::Explanation;
use crate::framework::ExEa;
use ea_graph::{AlignmentPair, AlignmentSet, EntityId};
use rayon::prelude::*;
use std::collections::BTreeMap;

/// Controls how batch entry points execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOptions {
    /// Fan work out over the rayon pool. When `false` every batch runs on
    /// the calling thread (useful for debugging and determinism tests).
    pub parallel: bool,
    /// Batches smaller than this stay sequential even when `parallel` is
    /// set; spawning workers for a handful of pairs costs more than it saves.
    pub min_parallel_batch: usize,
}

impl Default for BatchOptions {
    fn default() -> Self {
        Self {
            parallel: true,
            min_parallel_batch: 16,
        }
    }
}

impl BatchOptions {
    /// Options forcing sequential execution.
    pub fn sequential() -> Self {
        Self {
            parallel: false,
            min_parallel_batch: usize::MAX,
        }
    }

    /// Options forcing parallel execution regardless of batch size.
    pub fn always_parallel() -> Self {
        Self {
            parallel: true,
            min_parallel_batch: 0,
        }
    }
}

/// The fully scored explanation of one pair: the matching subgraph plus its
/// alignment dependency graph.
#[derive(Debug, Clone)]
pub struct ScoredExplanation {
    /// The pair that was explained.
    pub pair: AlignmentPair,
    /// The semantic-matching-subgraph explanation.
    pub explanation: Explanation,
    /// The ADG built from the explanation (relation conflicts applied as
    /// requested by the producing call).
    pub adg: Adg,
}

impl ScoredExplanation {
    /// Explanation confidence of the pair.
    pub fn confidence(&self) -> f64 {
        self.adg.confidence()
    }
}

/// Lightweight per-pair verdict for callers that only need scores (the
/// repair loops, verification): confidence plus the strong-edge flag,
/// without carrying the explanation payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairScore {
    /// The scored pair.
    pub pair: AlignmentPair,
    /// Explanation confidence (Eq. 9).
    pub confidence: f64,
    /// Whether the ADG has at least one strongly-influential edge (§IV-C).
    pub has_strong_edges: bool,
}

/// A deterministic confidence lookup built from a batch run.
///
/// Entries are keyed `(source, target)` in a `BTreeMap`, so iteration order
/// — and therefore any downstream aggregation — is independent of how many
/// workers produced the scores.
#[derive(Debug, Clone, Default)]
pub struct ConfidenceMap {
    scores: BTreeMap<(EntityId, EntityId), f64>,
}

impl ConfidenceMap {
    /// Builds the map from per-pair scores (later duplicates win; batches
    /// over alignment sets never contain duplicates).
    pub fn from_scores(scores: &[PairScore]) -> Self {
        let mut map = BTreeMap::new();
        for s in scores {
            map.insert((s.pair.source, s.pair.target), s.confidence);
        }
        Self { scores: map }
    }

    /// Confidence of a pair, if it was part of the batch.
    pub fn get(&self, source: EntityId, target: EntityId) -> Option<f64> {
        self.scores.get(&(source, target)).copied()
    }

    /// Number of scored pairs.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Iterates pairs in canonical `(source, target)` order.
    pub fn iter(&self) -> impl Iterator<Item = (EntityId, EntityId, f64)> + '_ {
        self.scores.iter().map(|(&(s, t), &c)| (s, t, c))
    }
}

impl<'a> ExEa<'a> {
    /// Order-preserving batch runner: maps `f` over `items`, in parallel
    /// when the options and batch size allow it.
    fn run_batch<T, R, F>(&self, items: &[T], options: &BatchOptions, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync + Send,
    {
        if options.parallel && items.len() >= options.min_parallel_batch.max(2) {
            items.par_iter().map(&f).collect()
        } else {
            items.iter().map(f).collect()
        }
    }

    /// Explains and scores every pair in `pairs` under an explicit alignment
    /// state, fanning the work out over the rayon pool.
    ///
    /// Results come back in input order and are bit-identical to calling
    /// [`ExEa::explain_with_state`] + [`ExEa::adg`] pair by pair.
    pub fn explain_and_score_batch(
        &self,
        pairs: &[AlignmentPair],
        state: &AlignmentSet,
        apply_relation_conflicts: bool,
        options: &BatchOptions,
    ) -> Vec<ScoredExplanation> {
        self.run_batch(pairs, options, |p| {
            let explanation = self.explain_with_state(p.source, p.target, state);
            let adg = self.adg(&explanation, apply_relation_conflicts);
            ScoredExplanation {
                pair: *p,
                explanation,
                adg,
            }
        })
    }

    /// Scores every pair in `pairs` under an explicit alignment state,
    /// keeping only confidence and the strong-edge flag. This is the entry
    /// point the repair loops and verification use: it avoids materialising
    /// and cloning full explanations for pairs that only need a number.
    pub fn score_batch(
        &self,
        pairs: &[AlignmentPair],
        state: &AlignmentSet,
        apply_relation_conflicts: bool,
        options: &BatchOptions,
    ) -> Vec<PairScore> {
        self.run_batch(pairs, options, |p| {
            let explanation = self.explain_with_state(p.source, p.target, state);
            let adg = self.adg(&explanation, apply_relation_conflicts);
            PairScore {
                pair: *p,
                confidence: adg.confidence(),
                has_strong_edges: adg.has_strong_edges(),
            }
        })
    }

    /// Explains and scores every model prediction under the default
    /// alignment state (predictions plus seed), with relation-conflict
    /// adjustment — the batched counterpart of calling
    /// [`ExEa::explain_and_score`] for each prediction.
    pub fn explain_all(&self) -> Vec<ScoredExplanation> {
        self.explain_all_with(self.batch_options())
    }

    /// [`ExEa::explain_all`] with explicit batch options.
    pub fn explain_all_with(&self, options: &BatchOptions) -> Vec<ScoredExplanation> {
        let pairs: Vec<AlignmentPair> = self.predictions().iter().collect();
        let state = self.default_alignment_state();
        self.explain_and_score_batch(&pairs, &state, true, options)
    }

    /// Batched confidence map over every model prediction: a deterministic
    /// `(source, target) -> confidence` lookup.
    pub fn confidence_map(&self) -> ConfidenceMap {
        let pairs: Vec<AlignmentPair> = self.predictions().iter().collect();
        let state = self.default_alignment_state();
        let scores = self.score_batch(&pairs, &state, true, self.batch_options());
        ConfidenceMap::from_scores(&scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_parallel_with_threshold() {
        let options = BatchOptions::default();
        assert!(options.parallel);
        assert!(options.min_parallel_batch > 1);
        assert!(!BatchOptions::sequential().parallel);
        assert_eq!(BatchOptions::always_parallel().min_parallel_batch, 0);
    }

    #[test]
    fn confidence_map_is_canonically_ordered() {
        let scores = vec![
            PairScore {
                pair: AlignmentPair::new(EntityId(2), EntityId(0)),
                confidence: 0.25,
                has_strong_edges: false,
            },
            PairScore {
                pair: AlignmentPair::new(EntityId(0), EntityId(1)),
                confidence: 0.75,
                has_strong_edges: true,
            },
        ];
        let map = ConfidenceMap::from_scores(&scores);
        assert_eq!(map.len(), 2);
        assert!(!map.is_empty());
        assert_eq!(map.get(EntityId(0), EntityId(1)), Some(0.75));
        assert_eq!(map.get(EntityId(9), EntityId(9)), None);
        let order: Vec<_> = map.iter().map(|(s, _, _)| s).collect();
        assert_eq!(order, vec![EntityId(0), EntityId(2)]);
    }
}
