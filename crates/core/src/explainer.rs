//! The common interface of explanation methods.
//!
//! ExEA and every baseline (EALime, EAShapley, Anchor, LORE, the simulated
//! LLM explainers) implement [`Explainer`], so the fidelity/sparsity
//! evaluation harness in `ea-metrics` can treat them uniformly. The
//! `budget` argument exists because the baselines need a target explanation
//! length to be comparable to ExEA at similar sparsity (paper §V-B2); ExEA
//! itself ignores it — its explanation length is determined by the matching
//! subgraph.

use crate::explanation::Explanation;
use crate::framework::ExEa;
use ea_graph::EntityId;

/// An explanation method for embedding-based entity alignment.
pub trait Explainer {
    /// Display name used in result tables.
    fn method_name(&self) -> &str;

    /// Produces an explanation for the pair `(source, target)`.
    ///
    /// `budget` is the maximum number of triples the explanation should keep
    /// (both sides combined); methods that derive their own length (like
    /// ExEA) may ignore it.
    fn explain_pair(&self, source: EntityId, target: EntityId, budget: usize) -> Explanation;
}

impl<'a> Explainer for ExEa<'a> {
    fn method_name(&self) -> &str {
        "ExEA"
    }

    fn explain_pair(&self, source: EntityId, target: EntityId, _budget: usize) -> Explanation {
        self.explain(source, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExeaConfig;
    use ea_data::datasets::{load, DatasetName, DatasetScale};
    use ea_models::{build_model, ModelKind, TrainConfig};

    #[test]
    fn exea_implements_explainer() {
        let pair = load(DatasetName::ZhEn, DatasetScale::Small);
        let trained = build_model(ModelKind::GcnAlign, TrainConfig::fast()).train(&pair);
        let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
        assert_eq!(exea.method_name(), "ExEA");
        let p = pair.reference.iter().next().unwrap();
        // The budget is ignored: explanations are identical regardless.
        let a = exea.explain_pair(p.source, p.target, 1);
        let b = exea.explain_pair(p.source, p.target, 100);
        assert_eq!(a.num_triples(), b.num_triples());
    }
}
