//! The ExEA framework object: caches, explanation and ADG entry points.

use crate::adg::Adg;
use crate::config::ExeaConfig;
use crate::explanation::{generate_explanation, Explanation};
use crate::pipeline::BatchOptions;
use crate::relation_embed::RelationEmbeddings;
use crate::rules::{mine_not_same_as_rules, relation_alignment, NotSameAsRules, RelationAlignment};
use ea_embed::CandidateIndex;
use ea_graph::paths::enumerate_paths;
use ea_graph::{
    AlignmentSet, Direction, EntityId, KgPair, KgSide, RelationFunctionality, RelationPath,
};
use ea_models::TrainedAlignment;

/// The ExEA framework bound to one KG pair and one trained EA model.
///
/// Construction precomputes everything the explanation and repair loops need
/// repeatedly: relation paths around every entity (up to the configured hop
/// count), relation embeddings, relation functionalities, the cross-KG
/// relation alignment, the ¬sameAs rules of the target graph, and the top-k
/// candidate engine (one scan — and, for the IVF strategy, one quantizer
/// build — serves prediction, repair and verification alike).
pub struct ExEa<'a> {
    pair: &'a KgPair,
    trained: &'a TrainedAlignment,
    config: ExeaConfig,
    source_relations: RelationEmbeddings,
    target_relations: RelationEmbeddings,
    source_functionality: RelationFunctionality,
    target_functionality: RelationFunctionality,
    source_paths: Vec<Vec<RelationPath>>,
    target_paths: Vec<Vec<RelationPath>>,
    relation_alignment: RelationAlignment,
    target_rules: NotSameAsRules,
    predictions: AlignmentSet,
    batch: BatchOptions,
    /// Top-k candidate engine (`k = config.top_k`), built once at
    /// construction and shared by prediction, the repair loops and candidate
    /// verification.
    candidates: CandidateIndex,
}

impl<'a> ExEa<'a> {
    /// Builds the framework for a KG pair and a trained model.
    pub fn new(pair: &'a KgPair, trained: &'a TrainedAlignment, config: ExeaConfig) -> Self {
        config.validate();
        let source_relations = RelationEmbeddings::for_side(trained, &pair.source, KgSide::Source);
        let target_relations = RelationEmbeddings::for_side(trained, &pair.target, KgSide::Target);
        let source_functionality = RelationFunctionality::compute(&pair.source);
        let target_functionality = RelationFunctionality::compute(&pair.target);
        let source_paths = pair
            .source
            .entity_ids()
            .map(|e| enumerate_paths(&pair.source, e, config.hops))
            .collect();
        let target_paths = pair
            .target
            .entity_ids()
            .map(|e| enumerate_paths(&pair.target, e, config.hops))
            .collect();
        let relation_alignment = relation_alignment(pair, trained);
        let target_rules = mine_not_same_as_rules(&pair.target);
        // One candidate build serves everything downstream: the greedy
        // prediction `Ares` is the rank-0 column of the same engine the
        // repair loops walk (bit-identical to a dedicated k=1 exact scan;
        // for partial-probing IVF it can only see *more* lists than a k=1
        // search would, never fewer, and for SQ8 the re-rank depth only
        // grows with k), and the IVF/SQ8 quantizers — when configured — are
        // built exactly once per framework.
        let candidates = trained.candidate_index_with(pair, config.top_k, &config.candidate_search);
        let predictions = candidates.greedy_alignment();
        Self {
            pair,
            trained,
            config,
            source_relations,
            target_relations,
            source_functionality,
            target_functionality,
            source_paths,
            target_paths,
            relation_alignment,
            target_rules,
            predictions,
            batch: BatchOptions::default(),
            candidates,
        }
    }

    /// The top-k candidate engine over the pair's test source entities and
    /// all target entities (`k = config.top_k`) — the bounded O(n·k) form of
    /// the paper's ranked candidate matrix `M`, produced by the configured
    /// [`ea_embed::CandidateSearch`] strategy (exact blocked scan, IVF
    /// pre-filter — optionally with SQ8 list storage — SQ8 quantized scan,
    /// or sharded scatter-gather over per-shard containers; approximate
    /// strategies may miss candidates but never re-score the ones they
    /// return). Built once at construction and shared by
    /// prediction, repair (cr2/cr3) and candidate verification.
    pub fn candidate_index(&self) -> &CandidateIndex {
        &self.candidates
    }

    /// The batch-execution options used by [`ExEa::explain_all`] and the
    /// internally batched repair/verification loops.
    pub fn batch_options(&self) -> &BatchOptions {
        &self.batch
    }

    /// Replaces the batch-execution options (builder style). Use
    /// [`BatchOptions::sequential`] to force single-threaded execution.
    pub fn with_batch_options(mut self, options: BatchOptions) -> Self {
        self.batch = options;
        self
    }

    /// Replaces the batch-execution options in place.
    pub fn set_batch_options(&mut self, options: BatchOptions) {
        self.batch = options;
    }

    /// The KG pair the framework operates on.
    pub fn pair(&self) -> &KgPair {
        self.pair
    }

    /// The trained model artifact in use.
    pub fn trained(&self) -> &TrainedAlignment {
        self.trained
    }

    /// The framework configuration.
    pub fn config(&self) -> &ExeaConfig {
        &self.config
    }

    /// The model's raw greedy predictions (`Ares`).
    pub fn predictions(&self) -> &AlignmentSet {
        &self.predictions
    }

    /// The mined cross-KG relation alignment.
    pub fn relation_alignment(&self) -> &RelationAlignment {
        &self.relation_alignment
    }

    /// The mined ¬sameAs rules of the target graph.
    pub fn target_rules(&self) -> &NotSameAsRules {
        &self.target_rules
    }

    /// The alignment state explanations should be generated against: the
    /// model predictions plus the seed alignment.
    pub fn default_alignment_state(&self) -> AlignmentSet {
        let mut state = self.predictions.clone();
        state.extend_from(&self.pair.seed);
        state
    }

    /// Number of candidate triples (within the configured hop count around
    /// both entities) for sparsity computation.
    pub fn candidate_triples(&self, e1: EntityId, e2: EntityId) -> usize {
        self.pair
            .source
            .triples_within_hops(e1, self.config.hops)
            .len()
            + self
                .pair
                .target
                .triples_within_hops(e2, self.config.hops)
                .len()
    }

    /// Generates the explanation for the pair `(e1, e2)` under an explicit
    /// alignment state.
    pub fn explain_with_state(
        &self,
        e1: EntityId,
        e2: EntityId,
        state: &AlignmentSet,
    ) -> Explanation {
        generate_explanation(
            self.trained,
            state,
            e1,
            e2,
            &self.source_paths[e1.index()],
            &self.target_paths[e2.index()],
            &self.source_relations,
            &self.target_relations,
        )
    }

    /// Generates the explanation for the pair `(e1, e2)` under the default
    /// alignment state (predictions plus seed).
    pub fn explain(&self, e1: EntityId, e2: EntityId) -> Explanation {
        self.explain_with_state(e1, e2, &self.default_alignment_state())
    }

    /// Builds the ADG for an explanation. When `apply_relation_conflicts` is
    /// set, neighbour nodes whose connecting relations are inferred to imply
    /// `¬sameAs` (relation-alignment conflicts, §IV-A) are removed before the
    /// confidence is computed.
    pub fn adg(&self, explanation: &Explanation, apply_relation_conflicts: bool) -> Adg {
        let mut adg = Adg::build(
            explanation,
            self.trained,
            &self.source_functionality,
            &self.target_functionality,
            &self.config,
        );
        if apply_relation_conflicts {
            let conflicting = self.relation_conflict_neighbors(explanation, &adg);
            if !conflicting.is_empty() {
                adg.remove_neighbors(conflicting);
            }
        }
        adg
    }

    /// Explanation confidence of a pair under a given alignment state.
    pub fn confidence_with_state(
        &self,
        e1: EntityId,
        e2: EntityId,
        state: &AlignmentSet,
        apply_relation_conflicts: bool,
    ) -> f64 {
        let explanation = self.explain_with_state(e1, e2, state);
        self.adg(&explanation, apply_relation_conflicts)
            .confidence()
    }

    /// Indexes of ADG neighbour nodes that are in relation-alignment conflict
    /// with the central pair: the direct relations connecting them to the two
    /// central entities map (through the relation alignment) to a relation
    /// pair that the target KG's ¬sameAs rules declare object-disjoint.
    pub fn relation_conflict_neighbors(&self, explanation: &Explanation, adg: &Adg) -> Vec<usize> {
        let mut conflicting = Vec::new();
        for (idx, node) in adg.neighbors.iter().enumerate() {
            let conflict = explanation.matched_paths.iter().any(|m| {
                if !(m.source.is_direct() && m.target.is_direct()) {
                    return false;
                }
                if m.source.end() != node.source || m.target.end() != node.target {
                    return false;
                }
                // Only the head-sharing rule shape is mined: both central
                // entities must be the heads of their triples (cross-KG triple
                // (e2, r1, n1) plus (e2, r2, n2)).
                if m.source.first_direction() != Direction::Forward
                    || m.target.first_direction() != Direction::Forward
                {
                    return false;
                }
                let r1 = m.source.steps[0].relation;
                let r2 = m.target.steps[0].relation;
                match self.relation_alignment.target_of(r1) {
                    // Aligned relations support the match; different relations
                    // that provably never share objects contradict it.
                    Some(mapped) => mapped != r2 && self.target_rules.implies_not_same(mapped, r2),
                    None => false,
                }
            });
            if conflict {
                conflicting.push(idx);
            }
        }
        conflicting
    }

    /// Convenience: explanation plus ADG (with relation-conflict adjustment)
    /// for a pair under the default state.
    pub fn explain_and_score(&self, e1: EntityId, e2: EntityId) -> (Explanation, Adg) {
        let state = self.default_alignment_state();
        let explanation = self.explain_with_state(e1, e2, &state);
        let adg = self.adg(&explanation, true);
        (explanation, adg)
    }

    /// Renders a Fig. 5-style case study for one source entity: the predicted
    /// counterpart, the explanation subgraph and the confidence.
    pub fn render_case_study(&self, source: EntityId) -> String {
        let Some(target) = self.predictions.target_of(source) else {
            return format!(
                "{}: no prediction available",
                self.pair.source.entity_name(source).unwrap_or("?")
            );
        };
        let (explanation, adg) = self.explain_and_score(source, target);
        let mut out = String::new();
        out.push_str(&format!(
            "model {} predicts: {} ≡ {}  (confidence {:.3})\n",
            self.trained.model_name(),
            self.pair.source.entity_name(source).unwrap_or("?"),
            self.pair.target.entity_name(target).unwrap_or("?"),
            adg.confidence()
        ));
        out.push_str(&explanation.render(self.pair));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ea_data::datasets::{load, DatasetName, DatasetScale};
    use ea_models::{build_model, ModelKind, TrainConfig};

    fn setup() -> (ea_graph::KgPair, TrainedAlignment) {
        let pair = load(DatasetName::ZhEn, DatasetScale::Small);
        let trained = build_model(ModelKind::GcnAlign, TrainConfig::fast()).train(&pair);
        (pair, trained)
    }

    #[test]
    fn framework_builds_and_exposes_components() {
        let (pair, trained) = setup();
        let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
        assert_eq!(exea.predictions().len(), pair.reference.len());
        assert!(!exea.relation_alignment().is_empty());
        assert_eq!(exea.pair().name, pair.name);
        assert_eq!(exea.trained().model_name(), "GCN-Align");
        assert_eq!(exea.config().hops, 1);
        let state = exea.default_alignment_state();
        assert_eq!(state.len(), pair.reference.len() + pair.seed.len());
    }

    #[test]
    fn explanations_for_correct_pairs_raise_confidence() {
        let (pair, trained) = setup();
        let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
        // Average confidence over correctly predicted pairs should exceed the
        // average over deliberately wrong pairs.
        let predictions = exea.predictions().clone();
        let mut correct_conf = Vec::new();
        let mut wrong_conf = Vec::new();
        for p in pair.reference.iter().take(80) {
            let predicted = predictions.target_of(p.source);
            if predicted == Some(p.target) {
                let (_, adg) = exea.explain_and_score(p.source, p.target);
                correct_conf.push(adg.confidence());
            }
            // A deliberately mismatched target: shift by one reference pair.
            let wrong_target = pair
                .reference
                .iter()
                .find(|q| q.target != p.target)
                .unwrap()
                .target;
            let (_, adg) = exea.explain_and_score(p.source, wrong_target);
            wrong_conf.push(adg.confidence());
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            avg(&correct_conf) > avg(&wrong_conf),
            "correct pairs should have higher confidence ({:.3} vs {:.3})",
            avg(&correct_conf),
            avg(&wrong_conf)
        );
    }

    #[test]
    fn candidate_triples_match_hop_neighbourhoods() {
        let (pair, trained) = setup();
        let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
        let p = pair.reference.iter().next().unwrap();
        let expected = pair.source.triples_within_hops(p.source, 1).len()
            + pair.target.triples_within_hops(p.target, 1).len();
        assert_eq!(exea.candidate_triples(p.source, p.target), expected);
    }

    #[test]
    fn confidence_with_state_matches_explicit_pipeline() {
        let (pair, trained) = setup();
        let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
        let state = exea.default_alignment_state();
        let p = pair.reference.iter().next().unwrap();
        let via_helper = exea.confidence_with_state(p.source, p.target, &state, false);
        let explanation = exea.explain_with_state(p.source, p.target, &state);
        let via_pipeline = exea.adg(&explanation, false).confidence();
        assert!((via_helper - via_pipeline).abs() < 1e-12);
    }

    #[test]
    fn case_study_rendering_mentions_model_and_entities() {
        let (pair, trained) = setup();
        let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
        let p = pair.reference.iter().next().unwrap();
        let text = exea.render_case_study(p.source);
        assert!(text.contains("GCN-Align"));
        assert!(text.contains(pair.source.entity_name(p.source).unwrap()));
        assert!(text.contains("confidence"));
    }

    #[test]
    fn relation_conflict_adjustment_never_raises_confidence() {
        let (pair, trained) = setup();
        let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
        for p in pair.reference.iter().take(40) {
            let state = exea.default_alignment_state();
            let explanation = exea.explain_with_state(p.source, p.target, &state);
            let plain = exea.adg(&explanation, false).confidence();
            let adjusted = exea.adg(&explanation, true).confidence();
            assert!(adjusted <= plain + 1e-9);
        }
    }
}
