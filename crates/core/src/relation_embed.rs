//! Relation and path representations (Eqs. 1–2 of the paper).
//!
//! ExEA matches relation paths by comparing their embeddings. When the EA
//! model learned relation embeddings (MTransE, AlignE, Dual-AMN) those are
//! used directly; when it did not (GCN-Align), relation embeddings are derived
//! from entity embeddings through the TransE-inspired translation of Eq. 1:
//! `r = mean over (s, r, o) of (e_s - e_o)`.
//!
//! A relation path `p = (e1, r1, e'1, …, rn, e'n)` is represented by Eq. 2:
//! the mean of the entity embeddings along the path (excluding the final
//! neighbour) concatenated with the mean of the relation embeddings.

use ea_embed::{vector, EmbeddingTable};
use ea_graph::{KgSide, KnowledgeGraph, RelationPath};
use ea_models::TrainedAlignment;

/// Relation embeddings for one side of the pair: either the model's own table
/// or a table derived from entity embeddings via Eq. 1.
#[derive(Debug, Clone)]
pub struct RelationEmbeddings {
    table: EmbeddingTable,
}

impl RelationEmbeddings {
    /// Builds relation embeddings for `side`, preferring the model's learned
    /// relation table and falling back to the Eq. 1 derivation.
    pub fn for_side(trained: &TrainedAlignment, kg: &KnowledgeGraph, side: KgSide) -> Self {
        match trained.relations(side) {
            Some(table) => Self {
                table: table.clone(),
            },
            None => Self {
                table: derive_from_entities(trained.entities(side), kg),
            },
        }
    }

    /// Embedding vector of a relation.
    pub fn get(&self, relation: ea_graph::RelationId) -> &[f32] {
        self.table.row(relation.index())
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.table.dim()
    }

    /// Number of relations covered.
    pub fn len(&self) -> usize {
        self.table.rows()
    }

    /// Whether no relations are covered.
    pub fn is_empty(&self) -> bool {
        self.table.rows() == 0
    }
}

/// Eq. 1: `r = (1/|T_r|) Σ (e_s − e_o)` over all triples carrying `r`.
pub fn derive_from_entities(entities: &EmbeddingTable, kg: &KnowledgeGraph) -> EmbeddingTable {
    let dim = entities.dim();
    let mut table = EmbeddingTable::zeros(kg.num_relations().max(1), dim);
    // One accumulator reused across relations (no per-relation allocation).
    let mut acc = vec![0.0f32; dim];
    for r in kg.relation_ids() {
        acc.fill(0.0);
        let mut count = 0usize;
        for t in kg.triples_with_relation(r) {
            let s = entities.row(t.head.index());
            let o = entities.row(t.tail.index());
            for i in 0..dim {
                acc[i] += s[i] - o[i];
            }
            count += 1;
        }
        if count > 0 {
            vector::scale(&mut acc, 1.0 / count as f32);
            table.row_mut(r.index()).copy_from_slice(&acc);
        }
    }
    table
}

/// Eq. 2: the path representation
/// `p = (e1 + Σ intermediate entities) / n ⊕ (Σ relations) / n`.
pub fn path_embedding(
    path: &RelationPath,
    entities: &EmbeddingTable,
    relations: &RelationEmbeddings,
) -> Vec<f32> {
    let n = path.len() as f32;
    let dim_e = entities.dim();
    let dim_r = relations.dim();

    let mut entity_part = entities.row(path.start.index()).to_vec();
    for e in path.intermediate_entities() {
        vector::add_scaled(&mut entity_part, entities.row(e.index()), 1.0);
    }
    vector::scale(&mut entity_part, 1.0 / n);

    let mut relation_part = vec![0.0f32; dim_r];
    for r in path.relations() {
        vector::add_scaled(&mut relation_part, relations.get(r), 1.0);
    }
    vector::scale(&mut relation_part, 1.0 / n);

    debug_assert_eq!(entity_part.len(), dim_e);
    vector::concat(&entity_part, &relation_part)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ea_data::datasets::{load, DatasetName, DatasetScale};
    use ea_graph::paths::enumerate_paths;
    use ea_models::{build_model, ModelKind, TrainConfig};

    fn trained_pair(kind: ModelKind) -> (ea_graph::KgPair, TrainedAlignment) {
        let pair = load(DatasetName::ZhEn, DatasetScale::Small);
        let trained = build_model(kind, TrainConfig::fast()).train(&pair);
        (pair, trained)
    }

    #[test]
    fn model_relation_embeddings_are_used_when_available() {
        let (pair, trained) = trained_pair(ModelKind::MTransE);
        let rel = RelationEmbeddings::for_side(&trained, &pair.source, KgSide::Source);
        assert_eq!(rel.len(), pair.source.num_relations());
        assert_eq!(rel.dim(), trained.dim());
        assert!(!rel.is_empty());
        // Must match the model's table exactly.
        let rid = ea_graph::RelationId(0);
        assert_eq!(
            rel.get(rid),
            trained.relation_embedding(KgSide::Source, rid).unwrap()
        );
    }

    #[test]
    fn derivation_is_used_for_models_without_relation_embeddings() {
        let (pair, trained) = trained_pair(ModelKind::GcnAlign);
        assert!(!trained.has_relation_embeddings());
        let rel = RelationEmbeddings::for_side(&trained, &pair.source, KgSide::Source);
        assert_eq!(rel.len(), pair.source.num_relations());
        // Derived vectors are generally non-zero for used relations.
        let used = pair.source.triples()[0].relation;
        assert!(rel.get(used).iter().any(|&v| v != 0.0));
    }

    #[test]
    fn derive_from_entities_matches_manual_average() {
        let mut kg = KnowledgeGraph::new();
        kg.add_triple_by_names("a", "r", "b");
        kg.add_triple_by_names("c", "r", "d");
        let mut entities = EmbeddingTable::zeros(4, 2);
        entities.row_mut(0).copy_from_slice(&[1.0, 0.0]); // a
        entities.row_mut(1).copy_from_slice(&[0.0, 1.0]); // b
        entities.row_mut(2).copy_from_slice(&[2.0, 0.0]); // c
        entities.row_mut(3).copy_from_slice(&[0.0, 2.0]); // d
        let table = derive_from_entities(&entities, &kg);
        // r = mean((a-b), (c-d)) = mean((1,-1), (2,-2)) = (1.5, -1.5)
        assert_eq!(table.row(0), &[1.5, -1.5]);
    }

    #[test]
    fn path_embedding_has_entity_plus_relation_dims() {
        let (pair, trained) = trained_pair(ModelKind::MTransE);
        let rel = RelationEmbeddings::for_side(&trained, &pair.source, KgSide::Source);
        let entities = trained.entities(KgSide::Source);
        let e = pair
            .source
            .entity_ids()
            .find(|&e| pair.source.degree(e) > 1)
            .unwrap();
        let paths = enumerate_paths(&pair.source, e, 2);
        assert!(!paths.is_empty());
        for p in paths.iter().take(10) {
            let emb = path_embedding(p, entities, &rel);
            assert_eq!(emb.len(), entities.dim() + rel.dim());
            assert!(emb.iter().any(|&v| v != 0.0));
        }
    }

    #[test]
    fn single_hop_path_embedding_is_entity_concat_relation() {
        let (pair, trained) = trained_pair(ModelKind::MTransE);
        let rel = RelationEmbeddings::for_side(&trained, &pair.source, KgSide::Source);
        let entities = trained.entities(KgSide::Source);
        let triple = pair.source.triples()[0];
        let path = RelationPath::single(triple.head, triple).unwrap();
        let emb = path_embedding(&path, entities, &rel);
        assert_eq!(&emb[..entities.dim()], entities.row(triple.head.index()));
        assert_eq!(&emb[entities.dim()..], rel.get(triple.relation));
    }

    use ea_graph::KnowledgeGraph;
}
