//! Semantic-matching-subgraph explanations (paper §III-A).
//!
//! The heuristic behind ExEA: *two entities are aligned because their relation
//! triples share similar semantics*. An explanation for a predicted pair
//! `(e1, e2)` is therefore built by
//!
//! 1. finding neighbour entities of `e1` and `e2` that are themselves aligned
//!    (by the model's predictions or the seed alignment),
//! 2. collecting the relation paths from each central entity to its matched
//!    neighbours,
//! 3. matching those paths bidirectionally by path-embedding similarity
//!    (mutual nearest neighbours), and
//! 4. taking the triples along matched paths as the explanation subgraph.

use crate::relation_embed::{path_embedding, RelationEmbeddings};
use ea_embed::vector;
use ea_graph::{AlignmentSet, EntityId, KgPair, RelationPath, Subgraph};
use ea_models::TrainedAlignment;
use std::collections::HashMap;

/// A pair of relation paths — one around the source entity, one around the
/// target entity — judged to carry the same semantics.
#[derive(Debug, Clone)]
pub struct MatchedPath {
    /// Path from the source central entity to a matched source neighbour.
    pub source: RelationPath,
    /// Path from the target central entity to the matched target neighbour.
    pub target: RelationPath,
    /// Cosine similarity of the two path embeddings.
    pub similarity: f32,
}

/// The explanation for one predicted alignment pair: the semantic matching
/// subgraph around the two entities.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The source entity being explained.
    pub source_entity: EntityId,
    /// The target entity being explained.
    pub target_entity: EntityId,
    /// The matched relation-path pairs forming the explanation.
    pub matched_paths: Vec<MatchedPath>,
    /// Source-side triples of the matching subgraph.
    pub source_triples: Subgraph,
    /// Target-side triples of the matching subgraph.
    pub target_triples: Subgraph,
}

impl Explanation {
    /// An explanation with no matched paths (the model's decision cannot be
    /// grounded in matching structure).
    pub fn empty(source_entity: EntityId, target_entity: EntityId) -> Self {
        Self {
            source_entity,
            target_entity,
            matched_paths: Vec::new(),
            source_triples: Subgraph::new(),
            target_triples: Subgraph::new(),
        }
    }

    /// Whether the explanation contains no evidence at all.
    pub fn is_empty(&self) -> bool {
        self.matched_paths.is_empty()
    }

    /// Total number of triples selected by the explanation (both sides).
    pub fn num_triples(&self) -> usize {
        self.source_triples.len() + self.target_triples.len()
    }

    /// Distinct matched neighbour pairs `(source neighbour, target neighbour)`
    /// together with the best path similarity observed for the pair.
    pub fn matched_neighbors(&self) -> Vec<(EntityId, EntityId, f32)> {
        let mut best: HashMap<(EntityId, EntityId), f32> = HashMap::new();
        for m in &self.matched_paths {
            let key = (m.source.end(), m.target.end());
            let entry = best.entry(key).or_insert(f32::NEG_INFINITY);
            if m.similarity > *entry {
                *entry = m.similarity;
            }
        }
        let mut result: Vec<(EntityId, EntityId, f32)> =
            best.into_iter().map(|((s, t), sim)| (s, t, sim)).collect();
        result.sort_by_key(|&(s, t, _)| (s, t));
        result
    }

    /// Sparsity (Eq. 13): `1 - |explanation| / |candidates|`, where the
    /// candidate count is the number of triples within `h` hops of the two
    /// entities. Returns 1.0 when there are no candidates.
    pub fn sparsity(&self, candidate_triples: usize) -> f64 {
        if candidate_triples == 0 {
            return 1.0;
        }
        1.0 - self.num_triples() as f64 / candidate_triples as f64
    }

    /// Renders the explanation with entity/relation names for display
    /// (the Fig. 5 case-study format).
    pub fn render(&self, pair: &KgPair) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "explanation for ({} ≡ {})\n",
            pair.source.entity_name(self.source_entity).unwrap_or("?"),
            pair.target.entity_name(self.target_entity).unwrap_or("?"),
        ));
        if self.is_empty() {
            out.push_str("  (no matching structure found)\n");
            return out;
        }
        for m in &self.matched_paths {
            out.push_str(&format!(
                "  {}  <=>  {}   (sim {:.3})\n",
                m.source.render(&pair.source),
                m.target.render(&pair.target),
                m.similarity
            ));
        }
        out
    }
}

/// Display order for matched paths (endpoint entities, then path lengths) —
/// all-integer keys, so [`generate_explanation`]'s output is deterministic
/// regardless of hash-map iteration order.
fn path_display_order(a: &MatchedPath, b: &MatchedPath) -> std::cmp::Ordering {
    (
        a.source.end(),
        a.target.end(),
        a.source.len(),
        a.target.len(),
    )
        .cmp(&(
            b.source.end(),
            b.target.end(),
            b.source.len(),
            b.target.len(),
        ))
}

/// Generates the semantic matching subgraph for the pair `(e1, e2)`.
///
/// `alignment` is the alignment state used to decide which neighbours count
/// as matched — the union of the seed alignment and the model's current
/// predictions (or the partially repaired alignment during repair).
/// `source_paths` / `target_paths` are the relation paths of length `<= hops`
/// starting at `e1` / `e2` (typically precomputed and cached by [`crate::ExEa`]).
#[allow(clippy::too_many_arguments)]
pub fn generate_explanation(
    trained: &TrainedAlignment,
    alignment: &AlignmentSet,
    e1: EntityId,
    e2: EntityId,
    source_paths: &[RelationPath],
    target_paths: &[RelationPath],
    source_relations: &RelationEmbeddings,
    target_relations: &RelationEmbeddings,
) -> Explanation {
    // Step 1: matched neighbour pairs — path endpoints that the current
    // alignment state says are the same entity.
    type PathsByPair<'a> =
        HashMap<(EntityId, EntityId), (Vec<&'a RelationPath>, Vec<&'a RelationPath>)>;
    let mut by_pair: PathsByPair<'_> = HashMap::new();
    for p in source_paths {
        let n1 = p.end();
        if n1 == e1 {
            continue;
        }
        if let Some(n2) = alignment.target_of(n1) {
            by_pair.entry((n1, n2)).or_default().0.push(p);
        }
    }
    for p in target_paths {
        let n2 = p.end();
        if n2 == e2 {
            continue;
        }
        for ((pn1, pn2), entry) in by_pair.iter_mut() {
            let _ = pn1;
            if *pn2 == n2 {
                entry.1.push(p);
            }
        }
    }

    let source_entities = trained.entities(ea_graph::KgSide::Source);
    let target_entities = trained.entities(ea_graph::KgSide::Target);

    // Step 2: per matched neighbour pair, bidirectional (mutual-best) path
    // matching by path-embedding cosine similarity.
    let mut matched_paths = Vec::new();
    let mut source_triples = Subgraph::new();
    let mut target_triples = Subgraph::new();
    for ((_n1, _n2), (p1s, p2s)) in by_pair {
        if p1s.is_empty() || p2s.is_empty() {
            continue;
        }
        let emb1: Vec<Vec<f32>> = p1s
            .iter()
            .map(|p| path_embedding(p, source_entities, source_relations))
            .collect();
        let emb2: Vec<Vec<f32>> = p2s
            .iter()
            .map(|p| path_embedding(p, target_entities, target_relations))
            .collect();

        // The two sides may have different embedding dimensionality when the
        // relation tables differ (e.g. Dual-AMN gates); compare on the
        // shortest common prefix, which aligns the entity parts first.
        let dim = emb1[0].len().min(emb2[0].len());
        let sim = |a: &[f32], b: &[f32]| vector::cosine(&a[..dim], &b[..dim]);

        // NaN-safe ascending total order: a NaN path similarity always loses
        // the argmax (the old `unwrap_or(Equal)` made it compare equal to
        // everything, so the winner depended on operand order). Ties between
        // real scores keep the last index, as before.
        let best_for_p1: Vec<usize> = emb1
            .iter()
            .map(|a| {
                (0..emb2.len())
                    .max_by(|&x, &y| ea_embed::order::asc_f32(sim(a, &emb2[x]), sim(a, &emb2[y])))
                    .expect("p2s is non-empty")
            })
            .collect();
        let best_for_p2: Vec<usize> = emb2
            .iter()
            .map(|b| {
                (0..emb1.len())
                    .max_by(|&x, &y| ea_embed::order::asc_f32(sim(&emb1[x], b), sim(&emb1[y], b)))
                    .expect("p1s is non-empty")
            })
            .collect();

        for (i, &j) in best_for_p1.iter().enumerate() {
            if best_for_p2[j] != i {
                continue;
            }
            let similarity = sim(&emb1[i], &emb2[j]);
            for t in p1s[i].triples() {
                source_triples.insert(t);
            }
            for t in p2s[j].triples() {
                target_triples.insert(t);
            }
            matched_paths.push(MatchedPath {
                source: p1s[i].clone(),
                target: p2s[j].clone(),
                similarity,
            });
        }
    }

    // Deterministic order regardless of hash-map iteration.
    matched_paths.sort_by(path_display_order);

    Explanation {
        source_entity: e1,
        target_entity: e2,
        matched_paths,
        source_triples,
        target_triples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation_embed::RelationEmbeddings;
    use ea_data::datasets::{load, DatasetName, DatasetScale};
    use ea_graph::paths::enumerate_paths;
    use ea_graph::KgSide;
    use ea_models::{build_model, ModelKind, TrainConfig};

    fn setup() -> (
        ea_graph::KgPair,
        TrainedAlignment,
        AlignmentSet,
        RelationEmbeddings,
        RelationEmbeddings,
    ) {
        let pair = load(DatasetName::ZhEn, DatasetScale::Small);
        let trained = build_model(ModelKind::GcnAlign, TrainConfig::fast()).train(&pair);
        let mut alignment = trained.predict(&pair);
        alignment.extend_from(&pair.seed);
        let rel_s = RelationEmbeddings::for_side(&trained, &pair.source, KgSide::Source);
        let rel_t = RelationEmbeddings::for_side(&trained, &pair.target, KgSide::Target);
        (pair, trained, alignment, rel_s, rel_t)
    }

    fn explain_one(
        pair: &ea_graph::KgPair,
        trained: &TrainedAlignment,
        alignment: &AlignmentSet,
        rel_s: &RelationEmbeddings,
        rel_t: &RelationEmbeddings,
        e1: EntityId,
        e2: EntityId,
    ) -> Explanation {
        let p1 = enumerate_paths(&pair.source, e1, 1);
        let p2 = enumerate_paths(&pair.target, e2, 1);
        generate_explanation(trained, alignment, e1, e2, &p1, &p2, rel_s, rel_t)
    }

    #[test]
    fn correct_pairs_get_nonempty_explanations_mostly() {
        let (pair, trained, alignment, rel_s, rel_t) = setup();
        let mut non_empty = 0usize;
        let mut total = 0usize;
        for p in pair.reference.iter().take(50) {
            let exp = explain_one(
                &pair, &trained, &alignment, &rel_s, &rel_t, p.source, p.target,
            );
            total += 1;
            if !exp.is_empty() {
                non_empty += 1;
            }
        }
        assert!(
            non_empty * 2 > total,
            "most correct pairs should have matching structure ({non_empty}/{total})"
        );
    }

    #[test]
    fn explanation_triples_come_from_the_right_graphs() {
        let (pair, trained, alignment, rel_s, rel_t) = setup();
        let p = pair.reference.iter().next().unwrap();
        let exp = explain_one(
            &pair, &trained, &alignment, &rel_s, &rel_t, p.source, p.target,
        );
        for t in exp.source_triples.triples() {
            assert!(pair.source.contains_triple(&t));
        }
        for t in exp.target_triples.triples() {
            assert!(pair.target.contains_triple(&t));
        }
    }

    #[test]
    fn matched_paths_start_at_the_central_entities() {
        let (pair, trained, alignment, rel_s, rel_t) = setup();
        for p in pair.reference.iter().take(20) {
            let exp = explain_one(
                &pair, &trained, &alignment, &rel_s, &rel_t, p.source, p.target,
            );
            for m in &exp.matched_paths {
                assert_eq!(m.source.start, p.source);
                assert_eq!(m.target.start, p.target);
                // Matched endpoints must be aligned in the current state.
                assert_eq!(alignment.target_of(m.source.end()), Some(m.target.end()));
            }
        }
    }

    #[test]
    fn sparsity_is_in_unit_interval() {
        let (pair, trained, alignment, rel_s, rel_t) = setup();
        for p in pair.reference.iter().take(20) {
            let exp = explain_one(
                &pair, &trained, &alignment, &rel_s, &rel_t, p.source, p.target,
            );
            let candidates = pair.source.triples_within_hops(p.source, 1).len()
                + pair.target.triples_within_hops(p.target, 1).len();
            let s = exp.sparsity(candidates);
            assert!((0.0..=1.0).contains(&s), "sparsity {s} out of range");
        }
        let empty = Explanation::empty(EntityId(0), EntityId(0));
        assert_eq!(empty.sparsity(0), 1.0);
        assert!(empty.is_empty());
        assert_eq!(empty.num_triples(), 0);
    }

    #[test]
    fn matched_neighbors_deduplicate_paths() {
        let (pair, trained, alignment, rel_s, rel_t) = setup();
        let p = pair
            .reference
            .iter()
            .find(|p| {
                !explain_one(
                    &pair, &trained, &alignment, &rel_s, &rel_t, p.source, p.target,
                )
                .is_empty()
            })
            .expect("at least one explainable pair");
        let exp = explain_one(
            &pair, &trained, &alignment, &rel_s, &rel_t, p.source, p.target,
        );
        let neighbors = exp.matched_neighbors();
        assert!(!neighbors.is_empty());
        let mut seen = std::collections::HashSet::new();
        for (s, t, sim) in &neighbors {
            assert!(seen.insert((*s, *t)), "duplicate neighbour pair");
            assert!(sim.is_finite());
        }
    }

    #[test]
    fn render_mentions_entity_names() {
        let (pair, trained, alignment, rel_s, rel_t) = setup();
        let p = pair.reference.iter().next().unwrap();
        let exp = explain_one(
            &pair, &trained, &alignment, &rel_s, &rel_t, p.source, p.target,
        );
        let rendered = exp.render(&pair);
        assert!(rendered.contains("explanation for"));
        assert!(rendered.contains(pair.source.entity_name(p.source).unwrap()));
    }

    #[test]
    fn unaligned_neighbors_produce_empty_explanation() {
        let (pair, trained, _alignment, rel_s, rel_t) = setup();
        // With an empty alignment state nothing can match.
        let empty_alignment = AlignmentSet::new();
        let p = pair.reference.iter().next().unwrap();
        let exp = explain_one(
            &pair,
            &trained,
            &empty_alignment,
            &rel_s,
            &rel_t,
            p.source,
            p.target,
        );
        assert!(exp.is_empty());
    }
}
