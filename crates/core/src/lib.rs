//! ExEA: explanations for understanding and repairing embedding-based entity
//! alignment.
//!
//! This crate is the reproduction of the paper's primary contribution
//! (Tian, Sun & Hu, ICDE 2024). Given a trained embedding-based EA model
//! (anything implementing `ea_models::EaModel` / producing a
//! [`ea_models::TrainedAlignment`]) and its predicted alignment, ExEA:
//!
//! 1. **generates explanations** — for each predicted pair it matches the
//!    relation paths around the two entities into a *semantic matching
//!    subgraph* ([`explanation`], paper §III-A);
//! 2. **builds alignment dependency graphs** — each explanation is abstracted
//!    into an ADG whose edge weights come from relation functionality and
//!    whose node confidence estimates how trustworthy the pair is
//!    ([`adg`], §III-B);
//! 3. **repairs the alignment** — three conflict resolvers (relation-alignment
//!    conflicts, one-to-many conflicts, low-confidence conflicts) prune and
//!    re-align pairs guided by explanation confidence ([`repair`], §IV);
//! 4. **verifies pairs** — explanation confidence doubles as an EA
//!    verification signal ([`verification`], §V-D2).
//!
//! The entry point is [`ExEa`], which owns the per-entity caches that make
//! repeated explanation construction cheap enough for the repair loops.
//!
//! # Batch API
//!
//! Per-pair work — explanation generation and ADG construction — is
//! embarrassingly parallel, and the [`pipeline`] module exploits that:
//! [`ExEa::explain_all`] / [`ExEa::explain_and_score_batch`] /
//! [`ExEa::score_batch`] fan predicted pairs out over a rayon worker pool
//! while sharing the read-only KG/functionality/rule state, and return
//! results in input order so a parallel run is **bit-identical** to the
//! sequential loop it replaces. The repair loops ([`repair`]) and
//! [`verification::verify_pairs`] consume these batch entry points instead
//! of re-explaining pairs one by one; tune or disable the parallelism with
//! [`ExEa::set_batch_options`] and [`pipeline::BatchOptions`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adg;
pub mod config;
pub mod explainer;
pub mod explanation;
pub mod framework;
pub mod pipeline;
pub mod relation_embed;
pub mod repair;
pub mod rules;
pub mod verification;

pub use adg::{Adg, AdgEdge, AdgNode, EdgeKind};
pub use config::ExeaConfig;
pub use explainer::Explainer;
pub use explanation::Explanation;
pub use framework::ExEa;
pub use pipeline::{BatchOptions, ConfidenceMap, PairScore, ScoredExplanation};
pub use repair::{RepairConfig, RepairOutcome};
pub use rules::{mine_not_same_as_rules, relation_alignment, NotSameAsRules, RelationAlignment};
pub use verification::{verify_pairs, verify_top_candidates, VerificationOutcome};
