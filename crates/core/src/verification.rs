//! Entity-alignment verification (paper §V-D2, Table VI).
//!
//! Verification treats each candidate pair as a claim and decides whether it
//! is correct. ExEA's signal is the explanation confidence: pairs whose ADG
//! confidence clears a threshold are accepted. The benchmark harness combines
//! this structural verdict with the simulated-LLM verdict (name-based) to
//! reproduce the paper's "ChatGPT + ExEA" fusion row.

use crate::framework::ExEa;
use ea_graph::AlignmentPair;

/// Precision / recall / F1 of a binary verification run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerificationOutcome {
    /// Fraction of accepted pairs that were actually correct.
    pub precision: f64,
    /// Fraction of correct pairs that were accepted.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

impl VerificationOutcome {
    /// Computes the outcome from prediction/label vectors.
    pub fn from_decisions(decisions: &[bool], labels: &[bool]) -> Self {
        assert_eq!(
            decisions.len(),
            labels.len(),
            "decisions and labels must align"
        );
        let tp = decisions
            .iter()
            .zip(labels)
            .filter(|&(&d, &l)| d && l)
            .count() as f64;
        let fp = decisions
            .iter()
            .zip(labels)
            .filter(|&(&d, &l)| d && !l)
            .count() as f64;
        let fn_ = decisions
            .iter()
            .zip(labels)
            .filter(|&(&d, &l)| !d && l)
            .count() as f64;
        let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
        let recall = if tp + fn_ > 0.0 { tp / (tp + fn_) } else { 0.0 };
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        Self {
            precision,
            recall,
            f1,
        }
    }
}

/// ExEA's verification decision for one pair: accept when the explanation
/// confidence clears the framework's low-confidence threshold `beta`.
pub fn verify_pair(exea: &ExEa<'_>, pair: &AlignmentPair) -> bool {
    let (_, adg) = exea.explain_and_score(pair.source, pair.target);
    adg.has_strong_edges() && adg.confidence() >= exea.config().beta()
}

/// Runs ExEA verification over a labelled set of candidate pairs and reports
/// precision, recall and F1 (the Table VI protocol: half the pairs correct,
/// half incorrect).
///
/// All candidates are explained and scored in one parallel batch under the
/// shared default alignment state; decisions come back in candidate order
/// and match per-pair [`verify_pair`] calls exactly.
pub fn verify_pairs(
    exea: &ExEa<'_>,
    candidates: &[(AlignmentPair, bool)],
) -> (Vec<bool>, VerificationOutcome) {
    let pairs: Vec<AlignmentPair> = candidates.iter().map(|&(p, _)| p).collect();
    let state = exea.default_alignment_state();
    let beta = exea.config().beta();
    let decisions: Vec<bool> = exea
        .score_batch(&pairs, &state, true, exea.batch_options())
        .into_iter()
        .map(|s| s.has_strong_edges && s.confidence >= beta)
        .collect();
    let labels: Vec<bool> = candidates.iter().map(|&(_, l)| l).collect();
    let outcome = VerificationOutcome::from_decisions(&decisions, &labels);
    (decisions, outcome)
}

/// Verifies every test source entity's top-`k` candidate targets straight
/// from the blocked candidate engine ([`ExEa::candidate_index`]): each
/// `(source, candidate)` pair is explained and scored in one parallel batch
/// and accepted on the usual strong-edges + `beta` rule.
///
/// This is the candidate-generation form of verification the engine makes
/// affordable at scale — O(n·k) pairs, with `k` capped by the engine's own
/// `top_k` — and the verdict for any pair is identical to [`verify_pair`].
/// Returns the pairs in (source row, rank) order with their verdicts.
pub fn verify_top_candidates(exea: &ExEa<'_>, k: usize) -> Vec<(AlignmentPair, bool)> {
    let index = exea.candidate_index();
    let mut pairs = Vec::with_capacity(index.source_ids().len() * k.min(index.k()));
    for (row, &source) in index.source_ids().iter().enumerate() {
        for (target, _) in index.candidates(row).take(k) {
            pairs.push(AlignmentPair::new(source, target));
        }
    }
    let state = exea.default_alignment_state();
    let beta = exea.config().beta();
    exea.score_batch(&pairs, &state, true, exea.batch_options())
        .into_iter()
        .map(|s| (s.pair, s.has_strong_edges && s.confidence >= beta))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExeaConfig;
    use ea_data::datasets::{load, DatasetName, DatasetScale};
    use ea_graph::EntityId;
    use ea_models::{build_model, ModelKind, TrainConfig};

    #[test]
    fn metrics_from_decisions_are_correct() {
        let decisions = [true, true, false, false];
        let labels = [true, false, true, false];
        let o = VerificationOutcome::from_decisions(&decisions, &labels);
        assert!((o.precision - 0.5).abs() < 1e-12);
        assert!((o.recall - 0.5).abs() < 1e-12);
        assert!((o.f1 - 0.5).abs() < 1e-12);
        let perfect = VerificationOutcome::from_decisions(&[true, false], &[true, false]);
        assert_eq!(perfect.precision, 1.0);
        assert_eq!(perfect.recall, 1.0);
        assert_eq!(perfect.f1, 1.0);
        let nothing = VerificationOutcome::from_decisions(&[false, false], &[true, true]);
        assert_eq!(nothing.precision, 0.0);
        assert_eq!(nothing.recall, 0.0);
        assert_eq!(nothing.f1, 0.0);
    }

    #[test]
    #[should_panic(expected = "decisions and labels")]
    fn mismatched_lengths_panic() {
        let _ = VerificationOutcome::from_decisions(&[true], &[true, false]);
    }

    #[test]
    fn verification_separates_correct_from_shuffled_pairs() {
        let pair = load(DatasetName::ZhEn, DatasetScale::Small);
        let trained = build_model(ModelKind::GcnAlign, TrainConfig::fast()).train(&pair);
        let exea = ExEa::new(&pair, &trained, ExeaConfig::default());

        // Build a balanced candidate set: correct reference pairs plus the
        // same sources paired with shifted (wrong) targets.
        let reference: Vec<_> = pair.reference.to_vec();
        let n = 40.min(reference.len());
        let mut candidates = Vec::new();
        for i in 0..n {
            candidates.push((reference[i], true));
            let wrong_target = reference[(i + 7) % reference.len()].target;
            if wrong_target != reference[i].target {
                candidates.push((AlignmentPair::new(reference[i].source, wrong_target), false));
            }
        }
        let (decisions, outcome) = verify_pairs(&exea, &candidates);
        assert_eq!(decisions.len(), candidates.len());
        // The structural verifier must clearly beat coin-flipping on this
        // separable task.
        assert!(outcome.f1 > 0.55, "verification F1 too low: {:?}", outcome);
        let _ = EntityId(0);
    }

    #[test]
    fn top_candidate_verification_matches_per_pair_verdicts() {
        let pair = load(DatasetName::ZhEn, DatasetScale::Small);
        let trained = build_model(ModelKind::GcnAlign, TrainConfig::fast()).train(&pair);
        let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
        let k = 2;
        let verdicts = verify_top_candidates(&exea, k);
        let index = exea.candidate_index();
        assert_eq!(verdicts.len(), index.source_ids().len() * k);
        // Pairs come back in (source row, rank) order and each verdict is
        // exactly what the per-pair API decides.
        for (row, &source) in index.source_ids().iter().enumerate().take(5) {
            for (rank, (target, _)) in index.candidates(row).take(k).enumerate() {
                let (p, accepted) = verdicts[row * k + rank];
                assert_eq!(p, AlignmentPair::new(source, target));
                assert_eq!(accepted, verify_pair(&exea, &p));
            }
        }
        // Some accepted, some rejected on a weak model's candidate lists.
        assert!(verdicts.iter().any(|&(_, a)| a));
        assert!(verdicts.iter().any(|&(_, a)| !a));
    }
}
