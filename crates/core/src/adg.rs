//! Alignment dependency graphs (paper §III-B).
//!
//! An ADG abstracts an explanation: matched entity pairs become nodes (with
//! the pair's embedding similarity as its *influence*), matched relation-path
//! pairs become edges between the central node and its neighbour nodes. Edge
//! weights come from relation functionality (Eqs. 3–7) and the central node's
//! *confidence* (Eqs. 8–9) estimates how likely the explained alignment is to
//! be valid — the quantity every repair decision is based on.

use crate::config::ExeaConfig;
use crate::explanation::{Explanation, MatchedPath};
use ea_embed::vector::sigmoid;
use ea_graph::{Direction, EntityId, RelationFunctionality, RelationPath};
use ea_models::TrainedAlignment;
use std::collections::HashMap;

/// How strongly an ADG edge lets a neighbour node influence the central node,
/// determined by the lengths of its two matched relation paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Both paths have length one: direct relations on both sides.
    Strong,
    /// Exactly one path has length one.
    Moderate,
    /// Both paths are longer than one hop.
    Weak,
}

/// A node of the ADG: a matched entity pair and its influence (embedding
/// similarity between the two entities).
#[derive(Debug, Clone, PartialEq)]
pub struct AdgNode {
    /// Source-graph entity of the pair.
    pub source: EntityId,
    /// Target-graph entity of the pair.
    pub target: EntityId,
    /// Influence of the node: cosine similarity of the two entity embeddings.
    pub influence: f64,
}

/// An edge between the central node and one neighbour node.
#[derive(Debug, Clone, PartialEq)]
pub struct AdgEdge {
    /// Index of the neighbour node in [`Adg::neighbors`].
    pub neighbor: usize,
    /// Edge category (strong / moderate / weak).
    pub kind: EdgeKind,
    /// Edge weight (Eqs. 5–7).
    pub weight: f64,
}

/// The alignment dependency graph of one explained pair.
#[derive(Debug, Clone)]
pub struct Adg {
    /// The central node: the pair being explained.
    pub central: AdgNode,
    /// The neighbour nodes: matched neighbour entity pairs.
    pub neighbors: Vec<AdgNode>,
    /// Edges between the central node and neighbour nodes.
    pub edges: Vec<AdgEdge>,
    confidence: f64,
    config: ExeaConfig,
}

impl Adg {
    /// Builds the ADG for an explanation.
    pub fn build(
        explanation: &Explanation,
        trained: &TrainedAlignment,
        source_functionality: &RelationFunctionality,
        target_functionality: &RelationFunctionality,
        config: &ExeaConfig,
    ) -> Self {
        let central = AdgNode {
            source: explanation.source_entity,
            target: explanation.target_entity,
            influence: trained
                .entity_similarity(explanation.source_entity, explanation.target_entity)
                as f64,
        };

        let mut neighbor_index: HashMap<(EntityId, EntityId), usize> = HashMap::new();
        let mut neighbors: Vec<AdgNode> = Vec::new();
        let mut edges: Vec<AdgEdge> = Vec::new();

        let mut sorted_paths: Vec<&MatchedPath> = explanation.matched_paths.iter().collect();
        sorted_paths.sort_by_key(|m| {
            (
                m.source.end(),
                m.target.end(),
                m.source.len(),
                m.target.len(),
            )
        });

        for m in sorted_paths {
            let key = (m.source.end(), m.target.end());
            let idx = *neighbor_index.entry(key).or_insert_with(|| {
                neighbors.push(AdgNode {
                    source: key.0,
                    target: key.1,
                    influence: trained.entity_similarity(key.0, key.1) as f64,
                });
                neighbors.len() - 1
            });
            let kind = classify_edge(&m.source, &m.target);
            let weight = match kind {
                EdgeKind::Strong => {
                    let w1 = direct_path_weight(&m.source, source_functionality);
                    let w2 = direct_path_weight(&m.target, target_functionality);
                    w1.min(w2)
                }
                EdgeKind::Moderate => {
                    let (direct, long, direct_func, long_func) = if m.source.is_direct() {
                        (
                            &m.source,
                            &m.target,
                            source_functionality,
                            target_functionality,
                        )
                    } else {
                        (
                            &m.target,
                            &m.source,
                            target_functionality,
                            source_functionality,
                        )
                    };
                    let wd = direct_path_weight(direct, direct_func);
                    let wl = long_path_weight(long, long_func);
                    config.alpha * wd.min(wl)
                }
                EdgeKind::Weak => config.weak_edge_weight,
            };
            edges.push(AdgEdge {
                neighbor: idx,
                kind,
                weight,
            });
        }

        let mut adg = Self {
            central,
            neighbors,
            edges,
            confidence: 0.5,
            config: config.clone(),
        };
        adg.recompute_confidence();
        adg
    }

    /// The explanation confidence of the central node (Eq. 9).
    pub fn confidence(&self) -> f64 {
        self.confidence
    }

    /// Whether the ADG has at least one strongly-influential edge — the
    /// condition §IV-C uses to decide that a pair is *not* a low-confidence
    /// conflict.
    pub fn has_strong_edges(&self) -> bool {
        self.edges.iter().any(|e| e.kind == EdgeKind::Strong)
    }

    /// Number of neighbour nodes.
    pub fn num_neighbors(&self) -> usize {
        self.neighbors.len()
    }

    /// Removes the neighbour nodes at the given indexes (used when relation
    /// alignment conflicts show a neighbour pair is misaligned) and
    /// recomputes the confidence.
    pub fn remove_neighbors(&mut self, mut indexes: Vec<usize>) {
        indexes.sort_unstable();
        indexes.dedup();
        if indexes.is_empty() {
            return;
        }
        let mut remap: Vec<Option<usize>> = vec![None; self.neighbors.len()];
        let mut kept = Vec::with_capacity(self.neighbors.len());
        let mut next = 0usize;
        for (i, node) in self.neighbors.iter().enumerate() {
            if indexes.binary_search(&i).is_err() {
                remap[i] = Some(next);
                kept.push(node.clone());
                next += 1;
            }
        }
        self.neighbors = kept;
        self.edges = self
            .edges
            .iter()
            .filter_map(|e| {
                remap[e.neighbor].map(|n| AdgEdge {
                    neighbor: n,
                    kind: e.kind,
                    weight: e.weight,
                })
            })
            .collect();
        self.recompute_confidence();
    }

    /// Aggregation of one edge class: `Σ weight(edge) · influence(neighbour)`
    /// (the inner sums of Eq. 8).
    fn aggregate(&self, kind: EdgeKind) -> f64 {
        self.edges
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.weight * self.neighbors[e.neighbor].influence)
            .sum()
    }

    fn recompute_confidence(&mut self) {
        let cs = self.aggregate(EdgeKind::Strong);
        let cm = self.aggregate(EdgeKind::Moderate);
        let cw = self.aggregate(EdgeKind::Weak);
        // Eq. 9: moderate and weak contributions are only consulted when the
        // stronger classes are below their thresholds.
        let mut total = cs;
        if cs < self.config.theta {
            total += cm;
            if cm < self.config.gamma {
                total += cw;
            }
        }
        self.confidence = sigmoid(total);
    }
}

fn classify_edge(p1: &RelationPath, p2: &RelationPath) -> EdgeKind {
    match (p1.is_direct(), p2.is_direct()) {
        (true, true) => EdgeKind::Strong,
        (false, false) => EdgeKind::Weak,
        _ => EdgeKind::Moderate,
    }
}

/// Eqs. 3–4: a direct path leaving the central entity as the head is weighted
/// by the relation's inverse functionality; a path where the central entity
/// is the tail is weighted by the functionality.
fn direct_path_weight(path: &RelationPath, functionality: &RelationFunctionality) -> f64 {
    let step = &path.steps[0];
    match step.direction {
        Direction::Forward => functionality.ifunc(step.relation),
        Direction::Backward => functionality.func(step.relation),
    }
}

/// Eq. 6: the weight of a long path is the product of the weights of its
/// direct segments.
fn long_path_weight(path: &RelationPath, functionality: &RelationFunctionality) -> f64 {
    path.segments()
        .iter()
        .map(|segment| direct_path_weight(segment, functionality))
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explanation::generate_explanation;
    use crate::relation_embed::RelationEmbeddings;
    use ea_data::datasets::{load, DatasetName, DatasetScale};
    use ea_graph::paths::enumerate_paths;
    use ea_graph::{AlignmentSet, KgSide};
    use ea_models::{build_model, ModelKind, TrainConfig};

    struct Fixture {
        pair: ea_graph::KgPair,
        trained: TrainedAlignment,
        alignment: AlignmentSet,
        rel_s: RelationEmbeddings,
        rel_t: RelationEmbeddings,
        func_s: RelationFunctionality,
        func_t: RelationFunctionality,
        config: ExeaConfig,
    }

    fn fixture() -> Fixture {
        let pair = load(DatasetName::ZhEn, DatasetScale::Small);
        let trained = build_model(ModelKind::GcnAlign, TrainConfig::fast()).train(&pair);
        let mut alignment = trained.predict(&pair);
        alignment.extend_from(&pair.seed);
        let rel_s = RelationEmbeddings::for_side(&trained, &pair.source, KgSide::Source);
        let rel_t = RelationEmbeddings::for_side(&trained, &pair.target, KgSide::Target);
        let func_s = RelationFunctionality::compute(&pair.source);
        let func_t = RelationFunctionality::compute(&pair.target);
        Fixture {
            pair,
            trained,
            alignment,
            rel_s,
            rel_t,
            func_s,
            func_t,
            config: ExeaConfig::default(),
        }
    }

    fn adg_for(f: &Fixture, e1: EntityId, e2: EntityId, hops: usize) -> Adg {
        let p1 = enumerate_paths(&f.pair.source, e1, hops);
        let p2 = enumerate_paths(&f.pair.target, e2, hops);
        let exp = generate_explanation(
            &f.trained,
            &f.alignment,
            e1,
            e2,
            &p1,
            &p2,
            &f.rel_s,
            &f.rel_t,
        );
        Adg::build(&exp, &f.trained, &f.func_s, &f.func_t, &f.config)
    }

    #[test]
    fn confidence_is_a_probability() {
        let f = fixture();
        for p in f.pair.reference.iter().take(40) {
            let adg = adg_for(&f, p.source, p.target, 1);
            let c = adg.confidence();
            assert!((0.0..=1.0).contains(&c), "confidence {c} out of range");
        }
    }

    #[test]
    fn empty_explanation_gives_half_confidence() {
        let f = fixture();
        let exp = Explanation::empty(EntityId(0), EntityId(0));
        let adg = Adg::build(&exp, &f.trained, &f.func_s, &f.func_t, &f.config);
        assert!((adg.confidence() - 0.5).abs() < 1e-12);
        assert!(!adg.has_strong_edges());
        assert_eq!(adg.num_neighbors(), 0);
    }

    #[test]
    fn first_order_explanations_give_strong_edges_only() {
        let f = fixture();
        for p in f.pair.reference.iter().take(30) {
            let adg = adg_for(&f, p.source, p.target, 1);
            for e in &adg.edges {
                assert_eq!(e.kind, EdgeKind::Strong);
                assert!(e.weight >= 0.0 && e.weight <= 1.0);
            }
        }
    }

    #[test]
    fn edges_reference_valid_neighbors() {
        let f = fixture();
        for p in f.pair.reference.iter().take(30) {
            let adg = adg_for(&f, p.source, p.target, 2);
            for e in &adg.edges {
                assert!(e.neighbor < adg.neighbors.len());
            }
        }
    }

    #[test]
    fn strong_evidence_raises_confidence_above_half() {
        let f = fixture();
        // A pair with strong edges and positively-influencing neighbours must
        // have confidence above the no-evidence level of 0.5.
        let found = f.pair.reference.iter().take(60).find(|p| {
            let adg = adg_for(&f, p.source, p.target, 1);
            adg.has_strong_edges() && adg.neighbors.iter().all(|n| n.influence > 0.0)
        });
        if let Some(p) = found {
            let adg = adg_for(&f, p.source, p.target, 1);
            assert!(adg.confidence() > 0.5);
        }
    }

    #[test]
    fn removing_all_neighbors_resets_confidence() {
        let f = fixture();
        let p = f
            .pair
            .reference
            .iter()
            .find(|p| adg_for(&f, p.source, p.target, 1).num_neighbors() > 0)
            .expect("an explainable pair exists");
        let mut adg = adg_for(&f, p.source, p.target, 1);
        let all: Vec<usize> = (0..adg.num_neighbors()).collect();
        adg.remove_neighbors(all);
        assert_eq!(adg.num_neighbors(), 0);
        assert!(adg.edges.is_empty());
        assert!((adg.confidence() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn removing_one_neighbor_keeps_edge_indexes_consistent() {
        let f = fixture();
        let p = f
            .pair
            .reference
            .iter()
            .find(|p| adg_for(&f, p.source, p.target, 1).num_neighbors() >= 2)
            .expect("a pair with two matched neighbours exists");
        let mut adg = adg_for(&f, p.source, p.target, 1);
        let before = adg.num_neighbors();
        let removed_pair = (adg.neighbors[0].source, adg.neighbors[0].target);
        adg.remove_neighbors(vec![0]);
        assert_eq!(adg.num_neighbors(), before - 1);
        for e in &adg.edges {
            assert!(e.neighbor < adg.neighbors.len());
            let n = &adg.neighbors[e.neighbor];
            assert_ne!((n.source, n.target), removed_pair);
        }
    }

    #[test]
    fn direct_path_weight_uses_direction() {
        let mut kg = ea_graph::KnowledgeGraph::new();
        // "born_in" has many subjects per object: func < 1, ifunc = 1 when
        // each subject appears once.
        kg.add_triple_by_names("alice", "born_in", "paris");
        kg.add_triple_by_names("bob", "born_in", "paris");
        let func = RelationFunctionality::compute(&kg);
        let alice = kg.entity_by_name("alice").unwrap();
        let paris = kg.entity_by_name("paris").unwrap();
        let triple = kg.triples()[0];
        // Walking from alice (head) uses ifunc = 0.5 (2 triples, 1 object).
        let forward = RelationPath::single(alice, triple).unwrap();
        assert!((direct_path_weight(&forward, &func) - 0.5).abs() < 1e-12);
        // Walking from paris (tail) uses func = 1.0 (2 subjects / 2 triples).
        let backward = RelationPath::single(paris, triple).unwrap();
        assert!((direct_path_weight(&backward, &func) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn long_path_weight_is_product_of_segments() {
        let mut kg = ea_graph::KnowledgeGraph::new();
        kg.add_triple_by_names("a", "r1", "b");
        kg.add_triple_by_names("b", "r2", "c");
        let func = RelationFunctionality::compute(&kg);
        let a = kg.entity_by_name("a").unwrap();
        let c = kg.entity_by_name("c").unwrap();
        let path = ea_graph::paths::paths_between(&kg, a, c, 2).pop().unwrap();
        let expected: f64 = path
            .segments()
            .iter()
            .map(|s| direct_path_weight(s, &func))
            .product();
        assert!((long_path_weight(&path, &func) - expected).abs() < 1e-12);
        assert!(expected > 0.0);
    }
}
