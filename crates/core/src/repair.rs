//! Entity-alignment repair (paper §IV, Algorithms 1 and 2).
//!
//! Repair turns the model's raw greedy predictions into a conflict-free,
//! higher-accuracy alignment by resolving three kinds of conflicts:
//!
//! * **cr1 — relation-alignment conflicts**: neighbour evidence whose
//!   relations provably imply `¬sameAs` is removed from ADGs before their
//!   confidence is used (soft conflicts, applied inside every ADG build).
//! * **cr2 — one-to-many conflicts** (Algorithm 1): several source entities
//!   claiming the same target entity; the claim with the highest explanation
//!   confidence wins and the losers are re-aligned from their ranked
//!   candidate lists.
//! * **cr3 — low-confidence conflicts** (Algorithm 2): pairs whose
//!   explanation carries no strongly-influential evidence are dissolved and
//!   re-aligned using an alignment score that balances explanation confidence
//!   and embedding similarity.
//!
//! The expensive parts of both algorithms — scoring every competing claim of
//! every one-to-many conflict, and re-scoring the whole working alignment on
//! each low-confidence sweep — consume the batched parallel pipeline
//! ([`crate::pipeline`]) instead of explaining pairs one at a time. Batches
//! preserve input order, so repair decisions (and therefore the repaired
//! alignment) are bit-identical whether the batches run sequentially or on
//! the worker pool.

use crate::framework::ExEa;
use ea_graph::{AlignmentPair, AlignmentSet, EntityId};
use std::cmp::Ordering;
use std::collections::HashSet;

/// Which conflict resolvers to run (the paper's ablation switches).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairConfig {
    /// cr1: adjust ADGs for relation-alignment conflicts.
    pub resolve_relation_conflicts: bool,
    /// cr2: resolve one-to-many conflicts (Algorithm 1).
    pub resolve_one_to_many: bool,
    /// cr3: resolve low-confidence conflicts (Algorithm 2).
    pub resolve_low_confidence: bool,
}

impl Default for RepairConfig {
    fn default() -> Self {
        Self {
            resolve_relation_conflicts: true,
            resolve_one_to_many: true,
            resolve_low_confidence: true,
        }
    }
}

impl RepairConfig {
    /// Ablation helper: everything enabled except relation-conflict resolution.
    pub fn without_cr1() -> Self {
        Self {
            resolve_relation_conflicts: false,
            ..Self::default()
        }
    }

    /// Ablation helper: everything enabled except one-to-many resolution.
    pub fn without_cr2() -> Self {
        Self {
            resolve_one_to_many: false,
            ..Self::default()
        }
    }

    /// Ablation helper: everything enabled except low-confidence resolution.
    pub fn without_cr3() -> Self {
        Self {
            resolve_low_confidence: false,
            ..Self::default()
        }
    }
}

/// Statistics describing what the repair pipeline did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// One-to-many conflicts found in the raw predictions.
    pub one_to_many_conflicts: usize,
    /// Pairs dissolved because their explanation confidence was low.
    pub low_confidence_pairs: usize,
    /// Pairs whose target was changed by the repair.
    pub changed_pairs: usize,
    /// Source entities that ended up re-aligned by the final greedy step.
    pub greedy_fallback: usize,
}

/// Keeps only the `k` best-scored candidates, best first, via
/// [`ea_embed::select_top_k_by`] partial selection instead of fully sorting
/// the list. The `(score desc, id asc)` NaN-safe total order matches what the
/// old stable descending sort produced over the id-sorted candidate list (a
/// NaN score now deterministically ranks last), so repair decisions are
/// unchanged bit for bit on real scores.
fn select_top_candidates(scored: &mut Vec<(EntityId, f64)>, k: usize) {
    ea_embed::select_top_k_by(scored, k, |a, b| {
        ea_embed::order::desc_f64(a.1, b.1).then(a.0.cmp(&b.0))
    });
}

/// The claim order `conflict_winner` maximises under: alignment score through
/// the NaN-safe ascending comparator (a NaN can never rank above a real
/// score), equal scores ranking the *smaller* source id higher (the id
/// comparison is reversed so `max_by` picks it).
fn claim_order(a: &(EntityId, f64), b: &(EntityId, f64)) -> Ordering {
    ea_embed::order::asc_f64(a.1, b.1).then(b.0.cmp(&a.0))
}

/// The winning claim of a one-to-many conflict: highest alignment score,
/// ties broken by the smallest source entity id. Comparing under the strict
/// total [`claim_order`] makes the winner independent of the order the claims
/// are listed in. Returns `None` on an empty claim list — the caller skips
/// such conflicts instead of panicking.
fn conflict_winner(claims: &[(EntityId, f64)]) -> Option<EntityId> {
    claims
        .iter()
        .copied()
        .max_by(claim_order)
        .map(|(source, _)| source)
}

/// The result of running the repair pipeline.
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// The repaired alignment `A*` (covers every test source entity).
    pub repaired: AlignmentSet,
    /// Bookkeeping about the repair process.
    pub stats: RepairStats,
}

impl<'a> ExEa<'a> {
    /// Runs the full repair pipeline on the model's predictions.
    pub fn repair(&self, config: &RepairConfig) -> RepairOutcome {
        let pair = self.pair();
        let predictions = self.predictions().clone();
        let cr1 = config.resolve_relation_conflicts;
        let k = self.config().top_k;
        let mut stats = RepairStats {
            one_to_many_conflicts: predictions.one_to_many_conflicts().len(),
            ..RepairStats::default()
        };

        // The alignment state used when *scoring* explanations always includes
        // the seed; the working set `a_star` only holds test-entity pairs.
        let mut a_star = predictions.clone();
        let mut unaligned: Vec<EntityId> = Vec::new();

        // ---- cr2: one-to-many conflicts (Algorithm 1) -------------------
        if config.resolve_one_to_many {
            // A prediction that claims a *seed* target entity conflicts with
            // the training alignment (the seed target already has a source):
            // dissolve it up front, exactly like any other one-to-many claim.
            let seed_conflicts: Vec<AlignmentPair> = a_star
                .iter()
                .filter(|p| self.pair().seed.contains_target(p.target))
                .collect();
            for p in seed_conflicts {
                a_star.remove(&p);
                unaligned.push(p.source);
            }
            let (mut still_unaligned, resolved) = self.resolve_one_to_many(&a_star, cr1);
            a_star = resolved;
            unaligned.append(&mut still_unaligned);
            unaligned.sort();
            unaligned.dedup();
            self.realign_by_similarity(&mut a_star, &mut unaligned, k, cr1);
        }

        // ---- cr3: low-confidence conflicts (Algorithm 2) -----------------
        if config.resolve_low_confidence {
            self.resolve_low_confidence(&mut a_star, &mut unaligned, k, cr1, &mut stats);
        }

        // ---- final greedy completion -------------------------------------
        stats.greedy_fallback = unaligned.len();
        self.greedy_completion(&mut a_star, &mut unaligned);

        stats.changed_pairs = pair
            .reference
            .sources()
            .iter()
            .filter(|&&s| a_star.target_of(s) != predictions.target_of(s))
            .count();

        RepairOutcome {
            repaired: a_star,
            stats,
        }
    }

    /// Scoring state: the current working alignment plus the seed.
    fn scoring_state(&self, a_star: &AlignmentSet) -> AlignmentSet {
        let mut state = a_star.clone();
        state.extend_from(&self.pair().seed);
        state
    }

    /// Combined alignment score used by the repair decisions: explanation
    /// confidence plus `alpha` times the model's embedding similarity
    /// (Algorithm 2, line 14 — also used when comparing competing claims so
    /// that local evidence and global similarity are balanced consistently).
    fn alignment_score(&self, e1: EntityId, e2: EntityId, state: &AlignmentSet, cr1: bool) -> f64 {
        self.confidence_with_state(e1, e2, state, cr1)
            + self.config().alpha * self.trained().entity_similarity(e1, e2) as f64
    }

    /// Batched [`ExEa::alignment_score`] over many pairs under one state:
    /// the explanation confidences come from a parallel batch (input order
    /// preserved, so the scores are bit-identical to the per-pair loop).
    fn alignment_score_batch(
        &self,
        pairs: &[AlignmentPair],
        state: &AlignmentSet,
        cr1: bool,
    ) -> Vec<f64> {
        self.score_batch(pairs, state, cr1, self.batch_options())
            .into_iter()
            .map(|s| {
                s.confidence
                    + self.config().alpha
                        * self
                            .trained()
                            .entity_similarity(s.pair.source, s.pair.target)
                            as f64
            })
            .collect()
    }

    /// `OnetoOne(Atrain, Ares)` of Algorithm 1: for every one-to-many
    /// conflict keep the claim with the highest explanation confidence.
    /// Returns the now-unaligned source entities and the one-to-one set.
    ///
    /// All competing claims across all conflicts are scored in one parallel
    /// batch instead of explaining each claim on its own.
    fn resolve_one_to_many(
        &self,
        predictions: &AlignmentSet,
        cr1: bool,
    ) -> (Vec<EntityId>, AlignmentSet) {
        let state = self.scoring_state(predictions);
        let mut resolved = predictions.clone();
        let mut unaligned = Vec::new();
        let conflicts = predictions.one_to_many_conflicts();
        let claims: Vec<AlignmentPair> = conflicts
            .iter()
            .flat_map(|(target, sources)| sources.iter().map(|&s| AlignmentPair::new(s, *target)))
            .collect();
        let scores = self.alignment_score_batch(&claims, &state, cr1);
        let mut cursor = 0usize;
        for (target, sources) in conflicts {
            let scored: Vec<(EntityId, f64)> = sources
                .iter()
                .map(|&s| {
                    let conf = scores[cursor];
                    cursor += 1;
                    (s, conf)
                })
                .collect();
            // Deterministic winner: (score desc, entity id asc) — equal
            // confidences can no longer make the outcome depend on claim
            // order. A conflict with no claims (should not occur; defensive
            // against future callers) is logged and skipped rather than
            // panicking mid-repair.
            let Some(winner) = conflict_winner(&scored) else {
                debug_assert!(false, "one-to-many conflict with no claims");
                eprintln!(
                    "repair: skipping one-to-many conflict on target {target}: no competing claims"
                );
                continue;
            };
            for &s in &sources {
                if s != winner {
                    resolved.remove(&AlignmentPair::new(s, target));
                    unaligned.push(s);
                }
            }
        }
        unaligned.sort();
        (unaligned, resolved)
    }

    /// Lines 2–21 of Algorithm 1: iteratively re-align the unaligned source
    /// entities from their ranked candidate lists, stealing a target from a
    /// weaker claim when the explanation confidence says so.
    ///
    /// Candidates come from the cached blocked top-k engine
    /// ([`ExEa::candidate_index`]): O(n·k) storage instead of the dense
    /// matrix, and the per-claim `source_index` lookups are O(1) hash probes
    /// rather than the linear scans that used to make this loop quadratic.
    fn realign_by_similarity(
        &self,
        a_star: &mut AlignmentSet,
        unaligned: &mut Vec<EntityId>,
        k: usize,
        cr1: bool,
    ) {
        let index = self.candidate_index();
        loop {
            if unaligned.is_empty() {
                break;
            }
            let last_len = unaligned.len();
            let mut next_round: Vec<EntityId> = Vec::new();
            let current: Vec<EntityId> = std::mem::take(unaligned);
            for e1 in current {
                let Some(row) = index.source_index(e1) else {
                    next_round.push(e1);
                    continue;
                };
                let mut aligned = false;
                for rank in 0..k {
                    let Some(e2) = index.ranked_target(row, rank) else {
                        break;
                    };
                    if !a_star.contains_target(e2) && !self.pair().seed.contains_target(e2) {
                        a_star.insert(AlignmentPair::new(e1, e2));
                        aligned = true;
                        break;
                    }
                    // Competing claim: compare alignment scores.
                    let competitor = a_star.sources_of(e2).first().copied();
                    let Some(e1_prev) = competitor else { continue };
                    let state = self.scoring_state(a_star);
                    let c_new = self.alignment_score(e1, e2, &state, cr1);
                    let c_old = self.alignment_score(e1_prev, e2, &state, cr1);
                    if c_new > c_old {
                        a_star.remove(&AlignmentPair::new(e1_prev, e2));
                        a_star.insert(AlignmentPair::new(e1, e2));
                        next_round.push(e1_prev);
                        aligned = true;
                        break;
                    }
                }
                if !aligned {
                    next_round.push(e1);
                }
            }
            next_round.sort();
            next_round.dedup();
            *unaligned = next_round;
            if unaligned.len() >= last_len {
                break;
            }
        }
    }

    /// Algorithm 2: dissolve low-confidence pairs and re-align them with the
    /// combined alignment score `confidence + alpha * similarity`.
    fn resolve_low_confidence(
        &self,
        a_star: &mut AlignmentSet,
        unaligned: &mut Vec<EntityId>,
        k: usize,
        cr1: bool,
        stats: &mut RepairStats,
    ) {
        let beta = self.config().beta();
        let mut last_len: Option<usize> = None;
        loop {
            // Detect low-confidence pairs under the current state. The scan
            // re-scores the whole working alignment, so it runs as one
            // parallel batch over shared read-only state.
            let state = self.scoring_state(a_star);
            let pairs: Vec<AlignmentPair> = a_star.iter().collect();
            let low: Vec<AlignmentPair> = self
                .score_batch(&pairs, &state, cr1, self.batch_options())
                .into_iter()
                .filter(|s| !s.has_strong_edges || s.confidence < beta)
                .map(|s| s.pair)
                .collect();
            stats.low_confidence_pairs += low.len();
            for p in &low {
                a_star.remove(p);
                unaligned.push(p.source);
            }
            unaligned.sort();
            unaligned.dedup();

            if let Some(prev) = last_len {
                if unaligned.len() >= prev {
                    break;
                }
            }
            last_len = Some(unaligned.len());
            if unaligned.is_empty() {
                break;
            }

            // Re-align from candidate lists scored by confidence + similarity.
            let current: Vec<EntityId> = std::mem::take(unaligned);
            let mut next_round: Vec<EntityId> = Vec::new();
            for e1 in current {
                let state = self.scoring_state(a_star);
                let mut scored: Vec<(EntityId, f64)> = self
                    .candidate_targets(e1, &state)
                    .into_iter()
                    .map(|e2| (e2, self.alignment_score(e1, e2, &state, cr1)))
                    .collect();
                select_top_candidates(&mut scored, k);

                let mut aligned = false;
                for &(e2, score) in scored.iter() {
                    if !a_star.contains_target(e2) && !self.pair().seed.contains_target(e2) {
                        a_star.insert(AlignmentPair::new(e1, e2));
                        aligned = true;
                        break;
                    }
                    let Some(&e1_prev) = a_star.sources_of(e2).first() else {
                        continue;
                    };
                    let score_prev = self.alignment_score(e1_prev, e2, &state, cr1);
                    if score > score_prev {
                        a_star.remove(&AlignmentPair::new(e1_prev, e2));
                        a_star.insert(AlignmentPair::new(e1, e2));
                        next_round.push(e1_prev);
                        aligned = true;
                        break;
                    }
                }
                if !aligned {
                    next_round.push(e1);
                }
            }
            next_round.sort();
            next_round.dedup();
            *unaligned = next_round;
        }
    }

    /// Candidate target entities for re-alignment: targets whose neighbours
    /// are aligned with neighbours of `e1` (their explanations are guaranteed
    /// to carry evidence), ordered deterministically.
    fn candidate_targets(&self, e1: EntityId, state: &AlignmentSet) -> Vec<EntityId> {
        let mut candidates: HashSet<EntityId> = HashSet::new();
        for n1 in self.pair().source.neighbor_entities(e1) {
            if let Some(n2) = state.target_of(n1) {
                for t in self.pair().target.neighbor_entities(n2) {
                    candidates.insert(t);
                }
            }
        }
        let mut result: Vec<EntityId> = candidates.into_iter().collect();
        result.sort();
        result
    }

    /// Final fallback: greedily align still-unaligned source entities with
    /// unaligned target entities by embedding similarity.
    fn greedy_completion(&self, a_star: &mut AlignmentSet, unaligned: &mut Vec<EntityId>) {
        if unaligned.is_empty() {
            return;
        }
        let free_targets: Vec<EntityId> = self
            .pair()
            .target
            .entity_ids()
            .filter(|t| !a_star.contains_target(*t) && !self.pair().seed.contains_target(*t))
            .collect();
        let mut taken: HashSet<EntityId> = HashSet::new();
        for &e1 in unaligned.iter() {
            let mut best: Option<(EntityId, f32)> = None;
            for &t in &free_targets {
                if taken.contains(&t) {
                    continue;
                }
                let sim = self.trained().entity_similarity(e1, t);
                if best.is_none_or(|(_, b)| sim > b) {
                    best = Some((t, sim));
                }
            }
            if let Some((t, _)) = best {
                a_star.insert(AlignmentPair::new(e1, t));
                taken.insert(t);
            }
        }
        unaligned.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExeaConfig;
    use ea_data::datasets::{load, DatasetName, DatasetScale};
    use ea_models::{build_model, ModelKind, TrainConfig, TrainedAlignment};

    fn setup(kind: ModelKind) -> (ea_graph::KgPair, TrainedAlignment) {
        let pair = load(DatasetName::ZhEn, DatasetScale::Small);
        let trained = build_model(kind, TrainConfig::fast()).train(&pair);
        (pair, trained)
    }

    #[test]
    fn repair_improves_accuracy_and_removes_conflicts() {
        let (pair, trained) = setup(ModelKind::MTransE);
        let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
        let base_accuracy = trained.accuracy(&pair);
        let outcome = exea.repair(&RepairConfig::default());
        let repaired_accuracy = outcome.repaired.accuracy_against(&pair.reference);
        assert!(
            repaired_accuracy > base_accuracy,
            "repair should improve accuracy ({base_accuracy:.3} -> {repaired_accuracy:.3})"
        );
        assert!(outcome.repaired.is_one_to_one());
    }

    #[test]
    fn repair_covers_every_test_source_entity() {
        let (pair, trained) = setup(ModelKind::GcnAlign);
        let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
        let outcome = exea.repair(&RepairConfig::default());
        for s in pair.reference.sources() {
            assert!(
                outcome.repaired.contains_source(s),
                "source {s} lost by repair"
            );
        }
    }

    #[test]
    fn disabling_one_to_many_resolution_keeps_conflicts() {
        let (pair, trained) = setup(ModelKind::MTransE);
        let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
        let full = exea.repair(&RepairConfig::default());
        let no_cr2 = exea.repair(&RepairConfig::without_cr2());
        // Full repair ends one-to-one; the ablation usually retains conflicts
        // (the raw predictions of a weak model are full of them).
        assert!(full.repaired.is_one_to_one());
        let base_conflicts = exea.predictions().one_to_many_conflicts().len();
        assert!(base_conflicts > 0, "test premise: conflicts exist");
        assert!(full.stats.one_to_many_conflicts == base_conflicts);
        // Both variants must still improve on the raw model output; the exact
        // ordering between them is evaluated at benchmark scale.
        let base = trained.accuracy(&pair);
        let acc_full = full.repaired.accuracy_against(&pair.reference);
        let acc_no_cr2 = no_cr2.repaired.accuracy_against(&pair.reference);
        assert!(acc_full > base);
        assert!(acc_no_cr2 > base);
    }

    #[test]
    fn ablations_do_not_exceed_full_repair() {
        let (pair, trained) = setup(ModelKind::MTransE);
        let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
        let full = exea
            .repair(&RepairConfig::default())
            .repaired
            .accuracy_against(&pair.reference);
        for config in [
            RepairConfig::without_cr1(),
            RepairConfig::without_cr2(),
            RepairConfig::without_cr3(),
        ] {
            let acc = exea
                .repair(&config)
                .repaired
                .accuracy_against(&pair.reference);
            // The resolvers are heuristics evaluated properly at benchmark
            // scale; at unit-test scale we only require that no ablation beats
            // the full pipeline by a wide margin.
            assert!(
                acc <= full + 0.10,
                "ablated repair ({config:?}) unexpectedly beats full repair ({acc:.3} vs {full:.3})"
            );
        }
    }

    #[test]
    fn repair_stats_are_populated() {
        let (pair, trained) = setup(ModelKind::MTransE);
        let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
        let outcome = exea.repair(&RepairConfig::default());
        assert_eq!(
            outcome.stats.one_to_many_conflicts,
            exea.predictions().one_to_many_conflicts().len()
        );
        assert!(outcome.stats.changed_pairs > 0);
        let _ = pair;
    }

    #[test]
    fn conflict_winner_is_order_independent_on_ties() {
        let e = EntityId;
        // Equal confidences: the smallest entity id wins, however the claims
        // are listed (the regression case for the old first-seen-wins loop).
        let tied = vec![(e(7), 0.5), (e(2), 0.5), (e(9), 0.5)];
        assert_eq!(conflict_winner(&tied), Some(e(2)));
        let mut reversed = tied.clone();
        reversed.reverse();
        assert_eq!(conflict_winner(&reversed), Some(e(2)));
        // A strictly higher confidence still wins regardless of id.
        let mixed = vec![(e(1), 0.4), (e(8), 0.6), (e(3), 0.6)];
        assert_eq!(conflict_winner(&mixed), Some(e(3)));
        // NaN confidences lose to any real confidence and tie among
        // themselves by id; an empty conflict yields None instead of a panic.
        let with_nan = vec![(e(5), f64::NAN), (e(6), -1.0)];
        assert_eq!(conflict_winner(&with_nan), Some(e(6)));
        let all_nan = vec![(e(5), f64::NAN), (e(4), f64::NAN)];
        assert_eq!(conflict_winner(&all_nan), Some(e(4)));
        assert_eq!(conflict_winner(&[]), None);
    }

    #[test]
    fn repair_config_ablation_constructors() {
        assert!(!RepairConfig::without_cr1().resolve_relation_conflicts);
        assert!(RepairConfig::without_cr1().resolve_one_to_many);
        assert!(!RepairConfig::without_cr2().resolve_one_to_many);
        assert!(!RepairConfig::without_cr3().resolve_low_confidence);
        assert_eq!(
            RepairConfig::default(),
            RepairConfig {
                resolve_relation_conflicts: true,
                resolve_one_to_many: true,
                resolve_low_confidence: true,
            }
        );
    }
}
