//! The parallel batch pipeline must be *bit-identical* to the sequential
//! path: same explanations, same confidences, same repair decisions, same
//! verification verdicts. These tests run every entry point both ways on a
//! synthetic dataset and compare exactly (`f64::to_bits`, no epsilon).

use ea_data::datasets::{load, DatasetName, DatasetScale};
use ea_graph::AlignmentPair;
use ea_models::{build_model, ModelKind, TrainConfig, TrainedAlignment};
use exea_core::{verify_pairs, BatchOptions, ExEa, ExeaConfig, RepairConfig};

fn setup(kind: ModelKind) -> (ea_graph::KgPair, TrainedAlignment) {
    let pair = load(DatasetName::ZhEn, DatasetScale::Small);
    let trained = build_model(kind, TrainConfig::fast()).train(&pair);
    (pair, trained)
}

#[test]
fn parallel_explain_all_is_bit_identical_to_sequential() {
    let (pair, trained) = setup(ModelKind::GcnAlign);
    let sequential = ExEa::new(&pair, &trained, ExeaConfig::default())
        .with_batch_options(BatchOptions::sequential());
    let parallel = ExEa::new(&pair, &trained, ExeaConfig::default())
        .with_batch_options(BatchOptions::always_parallel());

    let seq = sequential.explain_all();
    let par = parallel.explain_all();
    assert_eq!(seq.len(), par.len());
    assert!(!seq.is_empty());
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(a.pair, b.pair);
        assert_eq!(
            a.confidence().to_bits(),
            b.confidence().to_bits(),
            "confidence diverged for {:?}",
            a.pair
        );
        assert_eq!(a.explanation.num_triples(), b.explanation.num_triples());
        assert_eq!(
            a.explanation.matched_paths.len(),
            b.explanation.matched_paths.len()
        );
    }
}

#[test]
fn batch_scores_match_per_pair_api() {
    let (pair, trained) = setup(ModelKind::GcnAlign);
    let exea = ExEa::new(&pair, &trained, ExeaConfig::default())
        .with_batch_options(BatchOptions::always_parallel());
    let state = exea.default_alignment_state();
    let pairs: Vec<AlignmentPair> = exea.predictions().iter().take(40).collect();
    let scores = exea.score_batch(&pairs, &state, true, exea.batch_options());
    for (p, s) in pairs.iter().zip(&scores) {
        let single = exea.confidence_with_state(p.source, p.target, &state, true);
        assert_eq!(
            single.to_bits(),
            s.confidence.to_bits(),
            "batch and single-pair confidence diverged for {p:?}"
        );
    }
}

#[test]
fn confidence_map_agrees_with_explain_all() {
    let (pair, trained) = setup(ModelKind::GcnAlign);
    let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
    let map = exea.confidence_map();
    let all = exea.explain_all();
    assert_eq!(map.len(), all.len());
    for scored in &all {
        let looked_up = map
            .get(scored.pair.source, scored.pair.target)
            .expect("every explained pair is in the confidence map");
        assert_eq!(looked_up.to_bits(), scored.confidence().to_bits());
    }
}

#[test]
fn parallel_repair_is_identical_to_sequential() {
    let (pair, trained) = setup(ModelKind::MTransE);
    let sequential = ExEa::new(&pair, &trained, ExeaConfig::default())
        .with_batch_options(BatchOptions::sequential());
    let parallel = ExEa::new(&pair, &trained, ExeaConfig::default())
        .with_batch_options(BatchOptions::always_parallel());

    let seq = sequential.repair(&RepairConfig::default());
    let par = parallel.repair(&RepairConfig::default());
    assert_eq!(seq.stats, par.stats);
    let mut seq_pairs = seq.repaired.to_vec();
    let mut par_pairs = par.repaired.to_vec();
    seq_pairs.sort();
    par_pairs.sort();
    assert_eq!(seq_pairs, par_pairs);
}

#[test]
fn parallel_verification_is_identical_to_sequential() {
    let (pair, trained) = setup(ModelKind::GcnAlign);
    let reference: Vec<AlignmentPair> = pair.reference.to_vec();
    let mut candidates = Vec::new();
    for (i, p) in reference.iter().take(30).enumerate() {
        candidates.push((*p, true));
        let wrong = reference[(i + 5) % reference.len()].target;
        if wrong != p.target {
            candidates.push((AlignmentPair::new(p.source, wrong), false));
        }
    }

    let sequential = ExEa::new(&pair, &trained, ExeaConfig::default())
        .with_batch_options(BatchOptions::sequential());
    let parallel = ExEa::new(&pair, &trained, ExeaConfig::default())
        .with_batch_options(BatchOptions::always_parallel());
    let (seq_decisions, seq_outcome) = verify_pairs(&sequential, &candidates);
    let (par_decisions, par_outcome) = verify_pairs(&parallel, &candidates);
    assert_eq!(seq_decisions, par_decisions);
    assert_eq!(seq_outcome, par_outcome);
}
