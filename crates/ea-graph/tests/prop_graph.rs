//! Property-based tests for the graph substrate.

use ea_graph::{
    paths::enumerate_paths, AlignmentPair, AlignmentSet, BfsScratch, Direction, EntityId,
    KnowledgeGraph, RelationFunctionality, RelationId, Subgraph, Triple,
};
use proptest::prelude::*;
use std::collections::{HashSet, VecDeque};

/// The pre-CSR reference implementation: push-based per-entity adjacency
/// lists, exactly as `KnowledgeGraph` stored them before the refactor. The
/// CSR index must reproduce its query results byte for byte.
struct ReferenceAdjacency {
    outgoing: Vec<Vec<u32>>,
    incoming: Vec<Vec<u32>>,
    by_relation: Vec<Vec<u32>>,
}

impl ReferenceAdjacency {
    fn build(kg: &KnowledgeGraph) -> Self {
        let mut outgoing = vec![Vec::new(); kg.num_entities()];
        let mut incoming = vec![Vec::new(); kg.num_entities()];
        let mut by_relation = vec![Vec::new(); kg.num_relations()];
        for (i, t) in kg.triples().iter().enumerate() {
            outgoing[t.head.index()].push(i as u32);
            incoming[t.tail.index()].push(i as u32);
            by_relation[t.relation.index()].push(i as u32);
        }
        Self {
            outgoing,
            incoming,
            by_relation,
        }
    }

    /// The historical `neighbors` result: outgoing triples first (forward),
    /// then non-reflexive incoming triples (backward), in insertion order.
    fn neighbors(&self, kg: &KnowledgeGraph, e: EntityId) -> Vec<(EntityId, Triple, Direction)> {
        let mut result = Vec::new();
        if let Some(out) = self.outgoing.get(e.index()) {
            for &i in out {
                let t = kg.triples()[i as usize];
                result.push((t.tail, t, Direction::Forward));
            }
        }
        if let Some(inc) = self.incoming.get(e.index()) {
            for &i in inc {
                let t = kg.triples()[i as usize];
                if t.head != t.tail {
                    result.push((t.head, t, Direction::Backward));
                }
            }
        }
        result
    }

    /// The historical hash-set BFS behind `triples_within_hops`.
    fn triples_within_hops(&self, kg: &KnowledgeGraph, e: EntityId, hops: usize) -> Vec<Triple> {
        let mut seen_triples = HashSet::new();
        let mut result = Vec::new();
        let mut visited = HashSet::new();
        let mut queue = VecDeque::new();
        visited.insert(e);
        queue.push_back((e, 0usize));
        while let Some((current, depth)) = queue.pop_front() {
            if depth >= hops {
                continue;
            }
            for (neighbor, triple, _) in self.neighbors(kg, current) {
                if seen_triples.insert(triple) {
                    result.push(triple);
                }
                if visited.insert(neighbor) {
                    queue.push_back((neighbor, depth + 1));
                }
            }
        }
        result
    }
}

/// Strategy: a random small KG described as a list of (head, rel, tail) index
/// triples over bounded vocabularies.
fn kg_strategy() -> impl Strategy<Value = KnowledgeGraph> {
    prop::collection::vec((0usize..20, 0usize..6, 0usize..20), 1..120).prop_map(|raw| {
        let mut kg = KnowledgeGraph::new();
        // Pre-register vocabularies so ids are dense and stable.
        for i in 0..20 {
            kg.add_entity(&format!("e{i}"));
        }
        for r in 0..6 {
            kg.add_relation(&format!("r{r}"));
        }
        for (h, r, t) in raw {
            kg.add_triple(Triple::new(
                EntityId(h as u32),
                RelationId(r as u32),
                EntityId(t as u32),
            ))
            .unwrap();
        }
        kg
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every triple reachable through the adjacency indexes is in the triple
    /// list, and vice versa.
    #[test]
    fn adjacency_indexes_are_consistent(kg in kg_strategy()) {
        let all: HashSet<Triple> = kg.triples().iter().copied().collect();
        let mut via_index = HashSet::new();
        for e in kg.entity_ids() {
            for t in kg.outgoing_triples(e) {
                prop_assert_eq!(t.head, e);
                via_index.insert(t);
            }
            for t in kg.incoming_triples(e) {
                prop_assert_eq!(t.tail, e);
                via_index.insert(t);
            }
        }
        prop_assert_eq!(all, via_index);
    }

    /// Functionality and inverse functionality always lie in (0, 1] for
    /// relations that have triples, and are 0 otherwise.
    #[test]
    fn functionality_is_bounded(kg in kg_strategy()) {
        let f = RelationFunctionality::compute(&kg);
        for r in kg.relation_ids() {
            let has_triples = kg.triples_with_relation(r).next().is_some();
            if has_triples {
                prop_assert!(f.func(r) > 0.0 && f.func(r) <= 1.0);
                prop_assert!(f.ifunc(r) > 0.0 && f.ifunc(r) <= 1.0);
            } else {
                prop_assert_eq!(f.func(r), 0.0);
                prop_assert_eq!(f.ifunc(r), 0.0);
            }
        }
    }

    /// k-hop triple sets are monotone in k and 1-hop equals incident triples.
    #[test]
    fn khop_triples_are_monotone(kg in kg_strategy(), e in 0u32..20) {
        let e = EntityId(e);
        let one: HashSet<Triple> = kg.triples_within_hops(e, 1).into_iter().collect();
        let two: HashSet<Triple> = kg.triples_within_hops(e, 2).into_iter().collect();
        let incident: HashSet<Triple> = kg.triples_of(e).into_iter().collect();
        prop_assert_eq!(&one, &incident);
        prop_assert!(one.is_subset(&two));
    }

    /// Enumerated paths are simple, respect the length bound, and consist of
    /// triples that exist in the graph.
    #[test]
    fn enumerated_paths_are_valid(kg in kg_strategy(), e in 0u32..20, len in 1usize..3) {
        let e = EntityId(e);
        for p in enumerate_paths(&kg, e, len) {
            prop_assert!(p.len() <= len);
            prop_assert_eq!(p.start, e);
            let mut seen = HashSet::new();
            seen.insert(p.start);
            for ent in p.entities() {
                prop_assert!(seen.insert(ent), "path revisits an entity");
            }
            for t in p.triples() {
                prop_assert!(kg.contains_triple(&t));
            }
        }
    }

    /// Removing triples never invents new ones and preserves the vocabulary.
    #[test]
    fn without_triples_is_a_subset(kg in kg_strategy(), keep_mod in 1usize..5) {
        let remove: HashSet<Triple> = kg
            .triples()
            .iter()
            .enumerate()
            .filter(|(i, _)| i % keep_mod == 0)
            .map(|(_, t)| *t)
            .collect();
        let reduced = kg.without_triples(&remove);
        prop_assert_eq!(reduced.num_entities(), kg.num_entities());
        prop_assert_eq!(reduced.num_relations(), kg.num_relations());
        prop_assert_eq!(reduced.num_triples(), kg.num_triples() - remove.len());
        for t in reduced.triples() {
            prop_assert!(kg.contains_triple(t));
            prop_assert!(!remove.contains(t));
        }
    }

    /// Subgraph entity/relation projections only mention ids from its triples.
    #[test]
    fn subgraph_projections_are_consistent(kg in kg_strategy()) {
        let sub: Subgraph = kg.triples().iter().copied().take(10).collect();
        let ents: HashSet<EntityId> = sub.entities().into_iter().collect();
        let rels: HashSet<RelationId> = sub.relations().into_iter().collect();
        for t in sub.triples() {
            prop_assert!(ents.contains(&t.head));
            prop_assert!(ents.contains(&t.tail));
            prop_assert!(rels.contains(&t.relation));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSR `neighbors_iter` reproduces the pre-refactor push-based adjacency
    /// byte for byte: same triples, same directions, same order — not just
    /// the same multiset.
    #[test]
    fn csr_neighbors_match_reference_exactly(kg in kg_strategy()) {
        let reference = ReferenceAdjacency::build(&kg);
        for e in kg.entity_ids() {
            let via_csr: Vec<(EntityId, Triple, Direction)> = kg
                .neighbors_iter(e)
                .map(|n| (n.entity, n.triple, n.direction))
                .collect();
            prop_assert_eq!(&via_csr, &reference.neighbors(&kg, e));
            prop_assert_eq!(&via_csr, &kg.neighbors(e));
        }
    }

    /// The bitmap-BFS `triples_within_hops` agrees with the historical
    /// hash-set BFS on every entity and hop count — identical sequences,
    /// hence identical multisets.
    #[test]
    fn csr_khop_triples_match_reference_exactly(kg in kg_strategy(), hops in 1usize..4) {
        let reference = ReferenceAdjacency::build(&kg);
        for e in kg.entity_ids() {
            prop_assert_eq!(
                kg.triples_within_hops(e, hops),
                reference.triples_within_hops(&kg, e, hops)
            );
        }
    }

    /// A single reused scratch buffer yields the same traversals as fresh
    /// allocations, across interleaved entities and hop counts.
    #[test]
    fn bfs_scratch_reuse_is_sound(kg in kg_strategy(), hops in 1usize..4) {
        let mut scratch = BfsScratch::new();
        let mut triples = Vec::new();
        let mut entities = Vec::new();
        for e in kg.entity_ids() {
            kg.triples_within_hops_into(e, hops, &mut scratch, &mut triples);
            prop_assert_eq!(&triples, &kg.triples_within_hops(e, hops));
            kg.entities_within_hops_into(e, hops, &mut scratch, &mut entities);
            prop_assert_eq!(&entities, &kg.entities_within_hops(e, hops));
        }
    }

    /// The by-relation CSR view equals the reference per-relation buckets.
    #[test]
    fn csr_relation_view_matches_reference(kg in kg_strategy()) {
        let reference = ReferenceAdjacency::build(&kg);
        for r in kg.relation_ids() {
            let via_index: Vec<Triple> = kg.triples_with_relation(r).collect();
            let via_reference: Vec<Triple> = reference.by_relation[r.index()]
                .iter()
                .map(|&i| kg.triples()[i as usize])
                .collect();
            prop_assert_eq!(via_index, via_reference);
        }
    }

    /// AlignmentSet maintains the forward-uniqueness invariant and its reverse
    /// index stays consistent under arbitrary insert/remove sequences.
    #[test]
    fn alignment_set_invariants(ops in prop::collection::vec((0u32..30, 0u32..30, prop::bool::ANY), 0..200)) {
        let mut set = AlignmentSet::new();
        for (s, t, is_insert) in ops {
            let pair = AlignmentPair::new(EntityId(s), EntityId(t));
            if is_insert {
                set.insert(pair);
            } else {
                set.remove(&pair);
            }
        }
        // Forward map: every source appears exactly once in iter().
        let sources: Vec<_> = set.iter().map(|p| p.source).collect();
        let mut dedup = sources.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(sources.len(), dedup.len());
        // Reverse index agrees with forward map.
        for p in set.iter() {
            prop_assert!(set.sources_of(p.target).contains(&p.source));
            prop_assert_eq!(set.target_of(p.source), Some(p.target));
        }
        for t in set.targets() {
            for &s in set.sources_of(t) {
                prop_assert_eq!(set.target_of(s), Some(t));
            }
        }
        // One-to-one check agrees with conflict enumeration.
        prop_assert_eq!(set.is_one_to_one(), set.one_to_many_conflicts().is_empty());
    }
}
