//! Knowledge-graph substrate for embedding-based entity alignment.
//!
//! This crate provides the graph-side foundation that every other crate in the
//! workspace builds on:
//!
//! * [`KnowledgeGraph`] — an indexed, append-only multi-relational graph with
//!   interned entity/relation names, adjacency indexes and k-hop neighbourhood
//!   queries.
//! * [`KgPair`] — a pair of knowledge graphs together with seed (training) and
//!   reference (test) alignment, the unit of work for entity-alignment models.
//! * [`AlignmentSet`] — a bidirectional, one-to-many-capable set of alignment
//!   pairs with conflict inspection helpers.
//! * [`functionality`] — PARIS-style relation functionality and inverse
//!   functionality, used by ExEA to weight alignment-dependency-graph edges.
//! * [`paths`] — enumeration of relation paths between an entity and its
//!   neighbours, the raw material for semantic-matching-subgraph explanations.
//! * [`csr`] — the compressed-sparse-row adjacency index behind
//!   [`KnowledgeGraph`]'s zero-allocation neighbour iteration
//!   ([`KnowledgeGraph::neighbors_iter`]) and the reusable [`BfsScratch`]
//!   buffers the k-hop queries run on.
//!
//! The crate is deliberately free of any embedding or model logic; it only
//! knows about symbolic structure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alignment;
pub mod csr;
pub mod error;
pub mod functionality;
pub mod ids;
pub mod kg;
pub mod pair;
pub mod paths;
pub mod stats;
pub mod subgraph;
pub mod triple;
pub mod vocab;

pub use alignment::{AlignmentPair, AlignmentSet};
pub use csr::{BfsScratch, CsrIndex, NeighborRef, Neighbors};
pub use error::GraphError;
pub use functionality::RelationFunctionality;
pub use ids::{EntityId, KgSide, RelationId};
pub use kg::KnowledgeGraph;
pub use pair::KgPair;
pub use paths::{PathStep, RelationPath};
pub use stats::KgStats;
pub use subgraph::Subgraph;
pub use triple::{Direction, Triple};
pub use vocab::Interner;
