//! Error types for graph construction and queries.

use crate::ids::{EntityId, RelationId};
use std::fmt;

/// Errors raised by knowledge-graph construction and lookup operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An entity id was used that does not exist in the graph.
    UnknownEntity(EntityId),
    /// A relation id was used that does not exist in the graph.
    UnknownRelation(RelationId),
    /// An entity name was looked up that has not been interned.
    UnknownEntityName(String),
    /// A relation name was looked up that has not been interned.
    UnknownRelationName(String),
    /// A duplicate entity name was registered where uniqueness is required.
    DuplicateEntityName(String),
    /// An alignment pair referenced entities outside the graphs of the pair.
    InvalidAlignment {
        /// Human-readable description of the offending pair.
        detail: String,
    },
    /// A malformed line was encountered while parsing a TSV dataset file.
    ParseError {
        /// 1-based line number.
        line: usize,
        /// Description of what was wrong.
        detail: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownEntity(e) => write!(f, "unknown entity id {e}"),
            GraphError::UnknownRelation(r) => write!(f, "unknown relation id {r}"),
            GraphError::UnknownEntityName(n) => write!(f, "unknown entity name {n:?}"),
            GraphError::UnknownRelationName(n) => write!(f, "unknown relation name {n:?}"),
            GraphError::DuplicateEntityName(n) => write!(f, "duplicate entity name {n:?}"),
            GraphError::InvalidAlignment { detail } => {
                write!(f, "invalid alignment pair: {detail}")
            }
            GraphError::ParseError { line, detail } => {
                write!(f, "parse error at line {line}: {detail}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = GraphError::UnknownEntity(EntityId(3));
        assert!(e.to_string().contains("e3"));
        let e = GraphError::UnknownRelation(RelationId(9));
        assert!(e.to_string().contains("r9"));
        let e = GraphError::UnknownEntityName("foo".into());
        assert!(e.to_string().contains("foo"));
        let e = GraphError::ParseError {
            line: 12,
            detail: "missing column".into(),
        };
        assert!(e.to_string().contains("12"));
        assert!(e.to_string().contains("missing column"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            GraphError::UnknownEntity(EntityId(1)),
            GraphError::UnknownEntity(EntityId(1))
        );
        assert_ne!(
            GraphError::UnknownEntity(EntityId(1)),
            GraphError::UnknownEntity(EntityId(2))
        );
    }
}
