//! Induced subgraphs over a set of triples.
//!
//! An explanation subgraph is nothing more than a set of triples from one
//! knowledge graph together with the entities and relations they mention.
//! [`Subgraph`] keeps those sets explicit so explanation rendering, sparsity
//! computation and fidelity deletion can all work from the same object.

use crate::ids::{EntityId, RelationId};
use crate::kg::KnowledgeGraph;
use crate::triple::Triple;
use std::collections::{BTreeSet, HashSet};

/// A subgraph induced by a set of triples of one knowledge graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Subgraph {
    triples: BTreeSet<Triple>,
}

impl Subgraph {
    /// Creates an empty subgraph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a subgraph from an iterator of triples.
    pub fn from_triples<I: IntoIterator<Item = Triple>>(triples: I) -> Self {
        Self {
            triples: triples.into_iter().collect(),
        }
    }

    /// Adds a triple; returns `true` if it was not already present.
    pub fn insert(&mut self, triple: Triple) -> bool {
        self.triples.insert(triple)
    }

    /// Whether the subgraph contains the triple.
    pub fn contains(&self, triple: &Triple) -> bool {
        self.triples.contains(triple)
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// Whether the subgraph is empty.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Iterates over the triples in sorted order.
    pub fn triples(&self) -> impl Iterator<Item = Triple> + '_ {
        self.triples.iter().copied()
    }

    /// Collects the triples into a hash set (the form needed by
    /// [`KnowledgeGraph::without_triples`]).
    pub fn to_hash_set(&self) -> HashSet<Triple> {
        self.triples.iter().copied().collect()
    }

    /// Entities mentioned by the subgraph, sorted.
    pub fn entities(&self) -> Vec<EntityId> {
        let mut set = BTreeSet::new();
        for t in &self.triples {
            set.insert(t.head);
            set.insert(t.tail);
        }
        set.into_iter().collect()
    }

    /// Relations mentioned by the subgraph, sorted.
    pub fn relations(&self) -> Vec<RelationId> {
        let mut set = BTreeSet::new();
        for t in &self.triples {
            set.insert(t.relation);
        }
        set.into_iter().collect()
    }

    /// Merges another subgraph into this one.
    pub fn union_with(&mut self, other: &Subgraph) {
        for t in other.triples() {
            self.triples.insert(t);
        }
    }

    /// Renders the subgraph with names from `kg`, one triple per line.
    pub fn render(&self, kg: &KnowledgeGraph) -> String {
        let mut lines = Vec::with_capacity(self.triples.len());
        for t in &self.triples {
            lines.push(format!(
                "  ({}, {}, {})",
                kg.entity_name(t.head).unwrap_or("?"),
                kg.relation_name(t.relation).unwrap_or("?"),
                kg.entity_name(t.tail).unwrap_or("?"),
            ));
        }
        lines.join("\n")
    }
}

impl FromIterator<Triple> for Subgraph {
    fn from_iter<I: IntoIterator<Item = Triple>>(iter: I) -> Self {
        Self::from_triples(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(h: u32, r: u32, ta: u32) -> Triple {
        Triple::new(EntityId(h), RelationId(r), EntityId(ta))
    }

    #[test]
    fn insertion_deduplicates() {
        let mut s = Subgraph::new();
        assert!(s.is_empty());
        assert!(s.insert(t(0, 0, 1)));
        assert!(!s.insert(t(0, 0, 1)));
        assert_eq!(s.len(), 1);
        assert!(s.contains(&t(0, 0, 1)));
        assert!(!s.contains(&t(1, 0, 0)));
    }

    #[test]
    fn entities_and_relations_are_deduplicated_and_sorted() {
        let s = Subgraph::from_triples([t(3, 1, 0), t(0, 1, 2), t(2, 0, 3)]);
        assert_eq!(s.entities(), vec![EntityId(0), EntityId(2), EntityId(3)]);
        assert_eq!(s.relations(), vec![RelationId(0), RelationId(1)]);
    }

    #[test]
    fn union_merges_triples() {
        let mut a = Subgraph::from_triples([t(0, 0, 1)]);
        let b = Subgraph::from_triples([t(0, 0, 1), t(1, 1, 2)]);
        a.union_with(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn hash_set_roundtrip() {
        let s = Subgraph::from_triples([t(0, 0, 1), t(1, 1, 2)]);
        let hs = s.to_hash_set();
        assert_eq!(hs.len(), 2);
        assert!(hs.contains(&t(0, 0, 1)));
    }

    #[test]
    fn render_uses_names() {
        let mut kg = KnowledgeGraph::new();
        let triple = kg.add_triple_by_names("Paris", "capital_of", "France");
        let s = Subgraph::from_triples([triple]);
        let rendered = s.render(&kg);
        assert!(rendered.contains("Paris"));
        assert!(rendered.contains("capital_of"));
        assert!(rendered.contains("France"));
    }

    #[test]
    fn collect_from_iterator() {
        let s: Subgraph = [t(0, 0, 1), t(1, 0, 2)].into_iter().collect();
        assert_eq!(s.len(), 2);
        assert_eq!(s.triples().count(), 2);
    }
}
