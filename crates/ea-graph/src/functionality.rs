//! PARIS-style relation functionality and inverse functionality.
//!
//! The functionality of a relation `r` measures how close `r` is to being a
//! function of its subject: `func(r) = #distinct subjects / #triples of r`.
//! A relation like `capital_of` (each subject has exactly one object) has
//! functionality 1.0; a relation like `citizen_of` where subjects repeat is
//! lower. Inverse functionality is the same quantity computed on the reversed
//! relation: `ifunc(r) = #distinct objects / #triples of r`.
//!
//! ExEA uses these quantities as edge weights of the alignment dependency
//! graph (Eqs. 3–5 of the paper): a path leaving the central entity through a
//! highly inverse-functional relation pins the central entity down strongly,
//! so the neighbour at the other end is strong evidence for the alignment.

use crate::ids::RelationId;
use crate::kg::KnowledgeGraph;
use std::collections::HashSet;

/// Precomputed functionality and inverse functionality for every relation of
/// one knowledge graph.
#[derive(Debug, Clone)]
pub struct RelationFunctionality {
    func: Vec<f64>,
    ifunc: Vec<f64>,
}

impl RelationFunctionality {
    /// Computes functionalities for all relations of `kg`.
    ///
    /// Relations with no triples get functionality and inverse functionality
    /// of zero (they provide no alignment evidence).
    pub fn compute(kg: &KnowledgeGraph) -> Self {
        let mut func = vec![0.0; kg.num_relations()];
        let mut ifunc = vec![0.0; kg.num_relations()];
        for rid in kg.relation_ids() {
            let mut subjects = HashSet::new();
            let mut objects = HashSet::new();
            let mut count = 0usize;
            for t in kg.triples_with_relation(rid) {
                subjects.insert(t.head);
                objects.insert(t.tail);
                count += 1;
            }
            if count > 0 {
                func[rid.index()] = subjects.len() as f64 / count as f64;
                ifunc[rid.index()] = objects.len() as f64 / count as f64;
            }
        }
        Self { func, ifunc }
    }

    /// Functionality of `relation` (0.0 for unknown or empty relations).
    #[inline]
    pub fn func(&self, relation: RelationId) -> f64 {
        self.func.get(relation.index()).copied().unwrap_or(0.0)
    }

    /// Inverse functionality of `relation` (0.0 for unknown or empty relations).
    #[inline]
    pub fn ifunc(&self, relation: RelationId) -> f64 {
        self.ifunc.get(relation.index()).copied().unwrap_or(0.0)
    }

    /// Number of relations covered.
    pub fn len(&self) -> usize {
        self.func.len()
    }

    /// Returns `true` if the graph had no relations.
    pub fn is_empty(&self) -> bool {
        self.func.is_empty()
    }

    /// The larger of functionality and inverse functionality, a rough measure
    /// of how discriminative the relation is in either direction.
    pub fn max_directional(&self, relation: RelationId) -> f64 {
        self.func(relation).max(self.ifunc(relation))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kg_with_functional_relation() -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        // capital_of: every subject appears once (functional, func = 1.0),
        // but all objects are distinct too (ifunc = 1.0).
        kg.add_triple_by_names("Paris", "capital_of", "France");
        kg.add_triple_by_names("Berlin", "capital_of", "Germany");
        kg.add_triple_by_names("Rome", "capital_of", "Italy");
        // born_in: many subjects share the same object (ifunc < 1).
        kg.add_triple_by_names("Alice", "born_in", "Paris");
        kg.add_triple_by_names("Bob", "born_in", "Paris");
        kg.add_triple_by_names("Carol", "born_in", "Rome");
        kg.add_triple_by_names("Alice", "born_in", "Rome");
        kg
    }

    #[test]
    fn functional_relation_has_func_one() {
        let kg = kg_with_functional_relation();
        let f = RelationFunctionality::compute(&kg);
        let capital = kg.relation_by_name("capital_of").unwrap();
        assert!((f.func(capital) - 1.0).abs() < 1e-12);
        assert!((f.ifunc(capital) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn non_functional_relation_has_fractional_values() {
        let kg = kg_with_functional_relation();
        let f = RelationFunctionality::compute(&kg);
        let born = kg.relation_by_name("born_in").unwrap();
        // 3 distinct subjects (Alice, Bob, Carol) over 4 triples.
        assert!((f.func(born) - 0.75).abs() < 1e-12);
        // 2 distinct objects (Paris, Rome) over 4 triples.
        assert!((f.ifunc(born) - 0.5).abs() < 1e-12);
        assert!((f.max_directional(born) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn values_are_bounded_in_unit_interval() {
        let kg = kg_with_functional_relation();
        let f = RelationFunctionality::compute(&kg);
        for rid in kg.relation_ids() {
            assert!(f.func(rid) > 0.0 && f.func(rid) <= 1.0);
            assert!(f.ifunc(rid) > 0.0 && f.ifunc(rid) <= 1.0);
        }
        assert_eq!(f.len(), kg.num_relations());
        assert!(!f.is_empty());
    }

    #[test]
    fn unknown_relation_yields_zero() {
        let kg = kg_with_functional_relation();
        let f = RelationFunctionality::compute(&kg);
        assert_eq!(f.func(RelationId(99)), 0.0);
        assert_eq!(f.ifunc(RelationId(99)), 0.0);
    }

    #[test]
    fn relation_without_triples_yields_zero() {
        let mut kg = kg_with_functional_relation();
        let empty = kg.add_relation("unused_relation");
        let f = RelationFunctionality::compute(&kg);
        assert_eq!(f.func(empty), 0.0);
        assert_eq!(f.ifunc(empty), 0.0);
    }

    #[test]
    fn empty_graph_produces_empty_table() {
        let kg = KnowledgeGraph::new();
        let f = RelationFunctionality::compute(&kg);
        assert!(f.is_empty());
        assert_eq!(f.len(), 0);
    }
}
