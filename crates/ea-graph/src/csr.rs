//! Compressed-sparse-row (CSR) adjacency index and reusable BFS scratch.
//!
//! The explanation pipeline asks the same three questions about a graph
//! millions of times: *which triples leave this entity*, *which arrive at
//! it*, and *which carry this relation*. The original storage answered them
//! from per-entity `Vec<Vec<u32>>` buckets — one heap allocation per entity
//! and pointer-chasing on every query. [`CsrIndex`] packs all three views
//! into six flat arrays (an offsets array plus a triple-index array per
//! view), built in O(V + E) by counting sort from the triple list.
//!
//! Two properties matter for correctness elsewhere:
//!
//! * **Order preservation** — within one entity (or relation) bucket, triple
//!   indexes appear in insertion order, exactly as the old push-based
//!   adjacency lists stored them. Query results are therefore byte-identical
//!   to the pre-CSR implementation (property-tested in
//!   `tests/prop_graph.rs`).
//! * **Borrowed iteration** — [`Neighbors`] walks slices of the index
//!   without allocating, so BFS/DFS loops over large graphs stay allocation
//!   free when paired with [`BfsScratch`].

use crate::ids::EntityId;
use crate::triple::{Direction, Triple};
use std::collections::VecDeque;

/// CSR adjacency index over a triple list: outgoing (by head), incoming
/// (by tail), and by-relation views.
///
/// Edges are `u32` indexes into the triple list the index was built from.
/// The index is immutable; [`crate::KnowledgeGraph`] rebuilds it lazily after
/// mutations.
#[derive(Debug, Clone, Default)]
pub struct CsrIndex {
    out_offsets: Vec<u32>,
    out_edges: Vec<u32>,
    in_offsets: Vec<u32>,
    in_edges: Vec<u32>,
    rel_offsets: Vec<u32>,
    rel_edges: Vec<u32>,
}

/// Builds one CSR view (counting sort; stable, so per-bucket order equals
/// triple-index order).
fn build_view(
    num_buckets: usize,
    triples: &[Triple],
    bucket_of: impl Fn(&Triple) -> usize,
) -> (Vec<u32>, Vec<u32>) {
    let mut offsets = vec![0u32; num_buckets + 1];
    for t in triples {
        offsets[bucket_of(t) + 1] += 1;
    }
    for i in 0..num_buckets {
        offsets[i + 1] += offsets[i];
    }
    let mut cursor = offsets.clone();
    let mut edges = vec![0u32; triples.len()];
    for (idx, t) in triples.iter().enumerate() {
        let b = bucket_of(t);
        edges[cursor[b] as usize] = u32::try_from(idx).expect("triple index overflows u32");
        cursor[b] += 1;
    }
    (offsets, edges)
}

impl CsrIndex {
    /// Builds the index from a triple list in one counting-sort pass per view.
    pub fn build(num_entities: usize, num_relations: usize, triples: &[Triple]) -> Self {
        let (out_offsets, out_edges) = build_view(num_entities, triples, |t| t.head.index());
        let (in_offsets, in_edges) = build_view(num_entities, triples, |t| t.tail.index());
        let (rel_offsets, rel_edges) = build_view(num_relations, triples, |t| t.relation.index());
        Self {
            out_offsets,
            out_edges,
            in_offsets,
            in_edges,
            rel_offsets,
            rel_edges,
        }
    }

    #[inline]
    fn slice_of<'a>(offsets: &'a [u32], edges: &'a [u32], bucket: usize) -> &'a [u32] {
        // Buckets past the built range (entities interned after the last
        // rebuild, with no triples yet) are empty by construction.
        if bucket + 1 >= offsets.len() {
            return &[];
        }
        &edges[offsets[bucket] as usize..offsets[bucket + 1] as usize]
    }

    /// Indexes of triples whose head is `entity`, in insertion order.
    #[inline]
    pub fn outgoing(&self, entity: EntityId) -> &[u32] {
        Self::slice_of(&self.out_offsets, &self.out_edges, entity.index())
    }

    /// Indexes of triples whose tail is `entity`, in insertion order.
    #[inline]
    pub fn incoming(&self, entity: EntityId) -> &[u32] {
        Self::slice_of(&self.in_offsets, &self.in_edges, entity.index())
    }

    /// Indexes of triples carrying relation `relation`, in insertion order.
    #[inline]
    pub fn with_relation(&self, relation: crate::ids::RelationId) -> &[u32] {
        Self::slice_of(&self.rel_offsets, &self.rel_edges, relation.index())
    }

    /// Out-degree of `entity` (number of triples with `entity` as head).
    #[inline]
    pub fn out_degree(&self, entity: EntityId) -> usize {
        self.outgoing(entity).len()
    }

    /// In-degree of `entity` (number of triples with `entity` as tail).
    #[inline]
    pub fn in_degree(&self, entity: EntityId) -> usize {
        self.incoming(entity).len()
    }
}

/// One neighbour of an entity: the neighbour entity, the connecting triple,
/// and the direction in which the triple is traversed when walking from the
/// queried entity to the neighbour.
///
/// `Triple` is `Copy`, so the item itself is a small value; the *iterator*
/// producing it borrows the graph and performs no heap allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NeighborRef {
    /// The neighbour entity.
    pub entity: EntityId,
    /// The triple connecting the queried entity to the neighbour.
    pub triple: Triple,
    /// Traversal direction of `triple` (queried entity → neighbour).
    pub direction: Direction,
}

/// Zero-allocation iterator over the direct neighbours of one entity.
///
/// Yields all outgoing triples first (forward direction), then the incoming
/// ones (backward direction), skipping reflexive triples on the incoming
/// side so they appear exactly once — the same order and multiset the
/// allocating `KnowledgeGraph::neighbors` always produced.
#[derive(Debug, Clone)]
pub struct Neighbors<'a> {
    triples: &'a [Triple],
    out: std::slice::Iter<'a, u32>,
    inc: std::slice::Iter<'a, u32>,
}

impl<'a> Neighbors<'a> {
    pub(crate) fn new(triples: &'a [Triple], out: &'a [u32], inc: &'a [u32]) -> Self {
        Self {
            triples,
            out: out.iter(),
            inc: inc.iter(),
        }
    }
}

impl Iterator for Neighbors<'_> {
    type Item = NeighborRef;

    #[inline]
    fn next(&mut self) -> Option<NeighborRef> {
        if let Some(&idx) = self.out.next() {
            let triple = self.triples[idx as usize];
            return Some(NeighborRef {
                entity: triple.tail,
                triple,
                direction: Direction::Forward,
            });
        }
        for &idx in self.inc.by_ref() {
            let triple = self.triples[idx as usize];
            if triple.head != triple.tail {
                return Some(NeighborRef {
                    entity: triple.head,
                    triple,
                    direction: Direction::Backward,
                });
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let (out_lo, _) = self.out.size_hint();
        let (_, inc_hi) = self.inc.size_hint();
        (out_lo, inc_hi.map(|h| h + self.out.len()))
    }
}

/// A growable bitmap used as a visited set over dense ids.
#[derive(Debug, Clone, Default)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears all bits and ensures capacity for ids `0..len`.
    pub fn reset(&mut self, len: usize) {
        self.words.clear();
        self.words.resize(len.div_ceil(64), 0);
    }

    /// Inserts `idx`; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, idx: usize) -> bool {
        let (word, bit) = (idx / 64, idx % 64);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << bit;
        let fresh = self.words[word] & mask == 0;
        self.words[word] |= mask;
        fresh
    }

    /// Returns `true` if `idx` is present.
    #[inline]
    pub fn contains(&self, idx: usize) -> bool {
        self.words
            .get(idx / 64)
            .is_some_and(|w| w & (1u64 << (idx % 64)) != 0)
    }
}

/// Reusable scratch buffers for breadth-first traversals.
///
/// A BFS over a KG needs a visited-entity set, a seen-triple set and a
/// queue; allocating them per call dominated the cost of small-neighbourhood
/// queries. One `BfsScratch` can be reused across any number of
/// `*_within_hops_into` calls — buffers are cleared (not freed) between
/// runs, so steady-state traversals perform zero heap allocations beyond
/// occasional growth of the caller's output vector.
#[derive(Debug, Clone, Default)]
pub struct BfsScratch {
    /// Visited entities.
    pub(crate) visited: BitSet,
    /// Triples already emitted.
    pub(crate) seen_triples: BitSet,
    /// BFS frontier: `(entity, depth)`.
    pub(crate) queue: VecDeque<(EntityId, u32)>,
}

impl BfsScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Prepares the buffers for a graph with the given sizes.
    pub(crate) fn reset(&mut self, num_entities: usize, num_triples: usize) {
        self.visited.reset(num_entities);
        self.seen_triples.reset(num_triples);
        self.queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RelationId;

    fn t(h: u32, r: u32, ta: u32) -> Triple {
        Triple::new(EntityId(h), RelationId(r), EntityId(ta))
    }

    #[test]
    fn csr_buckets_preserve_insertion_order() {
        let triples = vec![t(0, 0, 1), t(0, 1, 2), t(1, 0, 0), t(0, 0, 2)];
        let csr = CsrIndex::build(3, 2, &triples);
        assert_eq!(csr.outgoing(EntityId(0)), &[0, 1, 3]);
        assert_eq!(csr.outgoing(EntityId(1)), &[2]);
        assert_eq!(csr.outgoing(EntityId(2)), &[] as &[u32]);
        assert_eq!(csr.incoming(EntityId(2)), &[1, 3]);
        assert_eq!(csr.with_relation(RelationId(0)), &[0, 2, 3]);
        assert_eq!(csr.out_degree(EntityId(0)), 3);
        assert_eq!(csr.in_degree(EntityId(0)), 1);
    }

    #[test]
    fn out_of_range_buckets_are_empty() {
        let csr = CsrIndex::build(2, 1, &[t(0, 0, 1)]);
        assert!(csr.outgoing(EntityId(99)).is_empty());
        assert!(csr.incoming(EntityId(99)).is_empty());
        assert!(csr.with_relation(RelationId(99)).is_empty());
    }

    #[test]
    fn neighbors_iterator_orders_and_skips_reflexive() {
        let triples = vec![t(0, 0, 1), t(2, 0, 0), t(0, 1, 0)];
        let csr = CsrIndex::build(3, 2, &triples);
        let got: Vec<_> = Neighbors::new(
            &triples,
            csr.outgoing(EntityId(0)),
            csr.incoming(EntityId(0)),
        )
        .collect();
        // Outgoing first: (0,0,1) forward, (0,1,0) reflexive forward; then
        // incoming (2,0,0) backward — reflexive skipped on the incoming side.
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].entity, EntityId(1));
        assert_eq!(got[0].direction, Direction::Forward);
        assert_eq!(got[1].triple, t(0, 1, 0));
        assert_eq!(got[2].entity, EntityId(2));
        assert_eq!(got[2].direction, Direction::Backward);
    }

    #[test]
    fn bitset_insert_and_contains() {
        let mut bits = BitSet::new();
        bits.reset(100);
        assert!(bits.insert(3));
        assert!(!bits.insert(3));
        assert!(bits.contains(3));
        assert!(!bits.contains(4));
        // Growth past the reset length.
        assert!(bits.insert(1000));
        assert!(bits.contains(1000));
        bits.reset(10);
        assert!(!bits.contains(3));
    }
}
