//! Relation paths between an entity and its neighbours.
//!
//! ExEA explanations are built by matching *relation paths* around the two
//! entities of an alignment pair (paper §III-A). A relation path
//! `p = (e, r1, e'1, r2, e'2, …, rn, e'n)` starts at a central entity `e` and
//! walks `n` triples to reach a neighbour `e'n`. Triples may be traversed in
//! either direction; the per-step [`Direction`] is recorded so that edge
//! weights can later pick functionality vs. inverse functionality correctly.

use crate::ids::{EntityId, RelationId};
use crate::kg::KnowledgeGraph;
use crate::triple::{Direction, Triple};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single step of a relation path: one triple traversed in one direction,
/// arriving at `entity`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PathStep {
    /// The relation of the traversed triple.
    pub relation: RelationId,
    /// The direction in which the triple was traversed.
    pub direction: Direction,
    /// The entity reached after this step.
    pub entity: EntityId,
}

/// A relation path from a central entity to one of its (multi-hop) neighbours.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RelationPath {
    /// The entity the path starts from (the entity being explained).
    pub start: EntityId,
    /// The steps of the path, in walk order. Never empty.
    pub steps: Vec<PathStep>,
}

impl RelationPath {
    /// Creates a path from a start entity and its steps.
    ///
    /// # Panics
    /// Panics if `steps` is empty — a relation path always traverses at least
    /// one triple.
    pub fn new(start: EntityId, steps: Vec<PathStep>) -> Self {
        assert!(
            !steps.is_empty(),
            "a relation path must have at least one step"
        );
        Self { start, steps }
    }

    /// Creates a length-one path for a single triple incident to `start`.
    ///
    /// Returns `None` if `start` is not part of the triple.
    pub fn single(start: EntityId, triple: Triple) -> Option<Self> {
        let (other, direction) = triple.other_end(start)?;
        Some(Self::new(
            start,
            vec![PathStep {
                relation: triple.relation,
                direction,
                entity: other,
            }],
        ))
    }

    /// Number of triples traversed.
    #[inline]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `false`: paths are never empty by construction.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The neighbour entity the path ends at.
    #[inline]
    pub fn end(&self) -> EntityId {
        self.steps.last().expect("paths are non-empty").entity
    }

    /// Relations along the path, in walk order.
    pub fn relations(&self) -> Vec<RelationId> {
        self.steps.iter().map(|s| s.relation).collect()
    }

    /// Entities along the path excluding the start, in walk order
    /// (intermediate entities plus the end entity).
    pub fn entities(&self) -> Vec<EntityId> {
        self.steps.iter().map(|s| s.entity).collect()
    }

    /// Intermediate entities (entities along the path excluding both the start
    /// and the end entity).
    pub fn intermediate_entities(&self) -> Vec<EntityId> {
        if self.steps.len() <= 1 {
            return Vec::new();
        }
        self.steps[..self.steps.len() - 1]
            .iter()
            .map(|s| s.entity)
            .collect()
    }

    /// Reconstructs the underlying triples of the path, in walk order.
    pub fn triples(&self) -> Vec<Triple> {
        let mut triples = Vec::with_capacity(self.steps.len());
        let mut current = self.start;
        for step in &self.steps {
            let triple = match step.direction {
                Direction::Forward => Triple::new(current, step.relation, step.entity),
                Direction::Backward => Triple::new(step.entity, step.relation, current),
            };
            triples.push(triple);
            current = step.entity;
        }
        triples
    }

    /// Direction of the first step — the step adjacent to the central entity.
    /// Determines whether functionality or inverse functionality applies when
    /// weighting the path (paper Eqs. 3–4).
    pub fn first_direction(&self) -> Direction {
        self.steps[0].direction
    }

    /// Whether this path is a direct (length-one) connection.
    pub fn is_direct(&self) -> bool {
        self.steps.len() == 1
    }

    /// Decomposes a multi-hop path into its length-one segments, each starting
    /// from the entity reached by the previous segment (used for Eq. 6, which
    /// multiplies the weights of the direct sub-paths of a long path).
    pub fn segments(&self) -> Vec<RelationPath> {
        let mut segments = Vec::with_capacity(self.steps.len());
        let mut current = self.start;
        for step in &self.steps {
            segments.push(RelationPath::new(current, vec![*step]));
            current = step.entity;
        }
        segments
    }

    /// Renders the path with names from `kg`, for explanation display.
    pub fn render(&self, kg: &KnowledgeGraph) -> String {
        let mut out = String::new();
        out.push_str(kg.entity_name(self.start).unwrap_or("?"));
        for step in &self.steps {
            let rel = kg.relation_name(step.relation).unwrap_or("?");
            let ent = kg.entity_name(step.entity).unwrap_or("?");
            match step.direction {
                Direction::Forward => {
                    out.push_str(" -[");
                    out.push_str(rel);
                    out.push_str("]-> ");
                }
                Direction::Backward => {
                    out.push_str(" <-[");
                    out.push_str(rel);
                    out.push_str("]- ");
                }
            }
            out.push_str(ent);
        }
        out
    }
}

impl fmt::Display for RelationPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.start)?;
        for step in &self.steps {
            match step.direction {
                Direction::Forward => write!(f, " -[{}]-> {}", step.relation, step.entity)?,
                Direction::Backward => write!(f, " <-[{}]- {}", step.relation, step.entity)?,
            }
        }
        Ok(())
    }
}

/// Enumerates all simple relation paths of length at most `max_len` starting
/// at `start`.
///
/// Paths never revisit an entity (simple paths), which bounds the search and
/// matches the paper's use of paths towards *neighbour* entities. The result
/// is deterministic for a given graph.
pub fn enumerate_paths(kg: &KnowledgeGraph, start: EntityId, max_len: usize) -> Vec<RelationPath> {
    let mut result = Vec::new();
    if max_len == 0 {
        return result;
    }
    let mut stack_steps: Vec<PathStep> = Vec::new();
    let mut on_path = vec![false; kg.num_entities()];
    if start.index() < on_path.len() {
        on_path[start.index()] = true;
    }
    dfs_paths(
        kg,
        start,
        start,
        max_len,
        &mut stack_steps,
        &mut on_path,
        &mut result,
    );
    result
}

/// Enumerates all simple relation paths of length at most `max_len` from
/// `start` that end exactly at `end`.
pub fn paths_between(
    kg: &KnowledgeGraph,
    start: EntityId,
    end: EntityId,
    max_len: usize,
) -> Vec<RelationPath> {
    enumerate_paths(kg, start, max_len)
        .into_iter()
        .filter(|p| p.end() == end)
        .collect()
}

fn dfs_paths(
    kg: &KnowledgeGraph,
    start: EntityId,
    current: EntityId,
    remaining: usize,
    steps: &mut Vec<PathStep>,
    on_path: &mut [bool],
    out: &mut Vec<RelationPath>,
) {
    if remaining == 0 {
        return;
    }
    // `neighbors_iter` borrows the CSR index directly: the whole DFS runs
    // without allocating intermediate neighbour vectors.
    for n in kg.neighbors_iter(current) {
        let neighbor = n.entity;
        if neighbor.index() < on_path.len() && on_path[neighbor.index()] {
            continue;
        }
        steps.push(PathStep {
            relation: n.triple.relation,
            direction: n.direction,
            entity: neighbor,
        });
        out.push(RelationPath::new(start, steps.clone()));
        if neighbor.index() < on_path.len() {
            on_path[neighbor.index()] = true;
        }
        dfs_paths(kg, start, neighbor, remaining - 1, steps, on_path, out);
        if neighbor.index() < on_path.len() {
            on_path[neighbor.index()] = false;
        }
        steps.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_kg() -> KnowledgeGraph {
        // a -r1-> b -r2-> c, plus d -r3-> a
        let mut kg = KnowledgeGraph::new();
        kg.add_triple_by_names("a", "r1", "b");
        kg.add_triple_by_names("b", "r2", "c");
        kg.add_triple_by_names("d", "r3", "a");
        kg
    }

    #[test]
    fn single_path_from_triple() {
        let kg = chain_kg();
        let a = kg.entity_by_name("a").unwrap();
        let b = kg.entity_by_name("b").unwrap();
        let triple = kg.triples()[0];
        let p = RelationPath::single(a, triple).unwrap();
        assert_eq!(p.len(), 1);
        assert!(p.is_direct());
        assert!(!p.is_empty());
        assert_eq!(p.end(), b);
        assert_eq!(p.first_direction(), Direction::Forward);
        // From b the same triple is traversed backwards.
        let p_rev = RelationPath::single(b, triple).unwrap();
        assert_eq!(p_rev.first_direction(), Direction::Backward);
        assert_eq!(p_rev.end(), a);
        // Non-participating entity yields None.
        let c = kg.entity_by_name("c").unwrap();
        assert!(RelationPath::single(c, triple).is_none());
    }

    #[test]
    fn triples_reconstruction_matches_graph() {
        let kg = chain_kg();
        let a = kg.entity_by_name("a").unwrap();
        for p in enumerate_paths(&kg, a, 2) {
            for t in p.triples() {
                assert!(
                    kg.contains_triple(&t),
                    "reconstructed triple {t} not in graph"
                );
            }
        }
    }

    #[test]
    fn enumerate_paths_length_one_covers_incident_triples() {
        let kg = chain_kg();
        let a = kg.entity_by_name("a").unwrap();
        let paths = enumerate_paths(&kg, a, 1);
        assert_eq!(paths.len(), 2); // a->b forward, a<-d backward
        assert!(paths.iter().all(|p| p.len() == 1));
    }

    #[test]
    fn enumerate_paths_respects_max_len() {
        let kg = chain_kg();
        let a = kg.entity_by_name("a").unwrap();
        let paths = enumerate_paths(&kg, a, 2);
        assert!(paths.iter().all(|p| p.len() <= 2));
        // Length-2 path a -> b -> c must be present.
        let c = kg.entity_by_name("c").unwrap();
        assert!(paths.iter().any(|p| p.end() == c && p.len() == 2));
        assert!(enumerate_paths(&kg, a, 0).is_empty());
    }

    #[test]
    fn paths_are_simple_no_entity_revisits() {
        let mut kg = KnowledgeGraph::new();
        // Triangle a-b-c plus back edges; simple paths must not loop.
        kg.add_triple_by_names("a", "r", "b");
        kg.add_triple_by_names("b", "r", "c");
        kg.add_triple_by_names("c", "r", "a");
        let a = kg.entity_by_name("a").unwrap();
        for p in enumerate_paths(&kg, a, 3) {
            let mut seen = std::collections::HashSet::new();
            seen.insert(p.start);
            for e in p.entities() {
                assert!(seen.insert(e), "path revisits entity {e}: {p}");
            }
        }
    }

    #[test]
    fn paths_between_filters_on_end() {
        let kg = chain_kg();
        let a = kg.entity_by_name("a").unwrap();
        let c = kg.entity_by_name("c").unwrap();
        let paths = paths_between(&kg, a, c, 2);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 2);
        assert!(paths_between(&kg, a, c, 1).is_empty());
    }

    #[test]
    fn segments_decompose_long_paths() {
        let kg = chain_kg();
        let a = kg.entity_by_name("a").unwrap();
        let c = kg.entity_by_name("c").unwrap();
        let p = paths_between(&kg, a, c, 2).pop().unwrap();
        let segs = p.segments();
        assert_eq!(segs.len(), 2);
        assert!(segs.iter().all(|s| s.is_direct()));
        assert_eq!(segs[0].start, a);
        assert_eq!(segs[1].end(), c);
        assert_eq!(segs[0].end(), segs[1].start);
        assert!(p.intermediate_entities().len() == 1);
    }

    #[test]
    fn render_and_display_show_directions() {
        let kg = chain_kg();
        let a = kg.entity_by_name("a").unwrap();
        let d = kg.entity_by_name("d").unwrap();
        let p = paths_between(&kg, a, d, 1).pop().unwrap();
        let rendered = p.render(&kg);
        assert!(rendered.contains("<-[r3]-"));
        assert!(rendered.starts_with('a'));
        assert!(rendered.ends_with('d'));
        assert!(p.to_string().contains("<-"));
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn empty_path_panics() {
        let _ = RelationPath::new(EntityId(0), Vec::new());
    }
}
