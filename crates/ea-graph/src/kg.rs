//! Indexed multi-relational knowledge graph.

use crate::error::GraphError;
use crate::ids::{EntityId, RelationId};
use crate::triple::{Direction, Triple};
use crate::vocab::Interner;
use std::collections::{HashSet, VecDeque};

/// An append-only, indexed knowledge graph.
///
/// The graph stores its triples in a flat vector and maintains per-entity
/// adjacency lists (outgoing and incoming triple indexes) as well as a
/// per-relation index. All queries used by the alignment models and the ExEA
/// framework — neighbourhoods, k-hop triple sets, relation extensions — are
/// answered from these indexes without scanning the full triple list.
#[derive(Debug, Clone, Default)]
pub struct KnowledgeGraph {
    entities: Interner,
    relations: Interner,
    triples: Vec<Triple>,
    triple_set: HashSet<Triple>,
    outgoing: Vec<Vec<u32>>,
    incoming: Vec<Vec<u32>>,
    by_relation: Vec<Vec<u32>>,
}

impl KnowledgeGraph {
    /// Creates an empty knowledge graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph with capacity hints for entities, relations and triples.
    pub fn with_capacity(entities: usize, relations: usize, triples: usize) -> Self {
        Self {
            entities: Interner::with_capacity(entities),
            relations: Interner::with_capacity(relations),
            triples: Vec::with_capacity(triples),
            triple_set: HashSet::with_capacity(triples),
            outgoing: Vec::with_capacity(entities),
            incoming: Vec::with_capacity(entities),
            by_relation: Vec::with_capacity(relations),
        }
    }

    /// Interns (or finds) an entity by name and returns its id.
    pub fn add_entity(&mut self, name: &str) -> EntityId {
        let id = self.entities.intern(name);
        while self.outgoing.len() <= id as usize {
            self.outgoing.push(Vec::new());
            self.incoming.push(Vec::new());
        }
        EntityId(id)
    }

    /// Interns (or finds) a relation by name and returns its id.
    pub fn add_relation(&mut self, name: &str) -> RelationId {
        let id = self.relations.intern(name);
        while self.by_relation.len() <= id as usize {
            self.by_relation.push(Vec::new());
        }
        RelationId(id)
    }

    /// Adds a triple by ids. Duplicate triples are ignored.
    ///
    /// # Errors
    /// Returns [`GraphError::UnknownEntity`] / [`GraphError::UnknownRelation`]
    /// if any id has not been registered.
    pub fn add_triple(&mut self, triple: Triple) -> Result<bool, GraphError> {
        if triple.head.index() >= self.num_entities() {
            return Err(GraphError::UnknownEntity(triple.head));
        }
        if triple.tail.index() >= self.num_entities() {
            return Err(GraphError::UnknownEntity(triple.tail));
        }
        if triple.relation.index() >= self.num_relations() {
            return Err(GraphError::UnknownRelation(triple.relation));
        }
        if !self.triple_set.insert(triple) {
            return Ok(false);
        }
        let idx = u32::try_from(self.triples.len()).expect("triple index overflow");
        self.triples.push(triple);
        self.outgoing[triple.head.index()].push(idx);
        self.incoming[triple.tail.index()].push(idx);
        self.by_relation[triple.relation.index()].push(idx);
        Ok(true)
    }

    /// Convenience: add a triple by entity/relation names, interning as needed.
    pub fn add_triple_by_names(&mut self, head: &str, relation: &str, tail: &str) -> Triple {
        let h = self.add_entity(head);
        let r = self.add_relation(relation);
        let t = self.add_entity(tail);
        let triple = Triple::new(h, r, t);
        self.add_triple(triple)
            .expect("ids were just interned, so they must be valid");
        triple
    }

    /// Number of entities.
    #[inline]
    pub fn num_entities(&self) -> usize {
        self.entities.len()
    }

    /// Number of relations.
    #[inline]
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// Number of distinct triples.
    #[inline]
    pub fn num_triples(&self) -> usize {
        self.triples.len()
    }

    /// All triples in insertion order.
    #[inline]
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// Returns `true` if the exact triple is present.
    #[inline]
    pub fn contains_triple(&self, triple: &Triple) -> bool {
        self.triple_set.contains(triple)
    }

    /// Returns `true` if some triple `(head, relation, ?)` exists.
    pub fn has_outgoing_relation(&self, head: EntityId, relation: RelationId) -> bool {
        self.outgoing_triples(head)
            .any(|t| t.relation == relation)
    }

    /// Name of an entity.
    pub fn entity_name(&self, entity: EntityId) -> Option<&str> {
        self.entities.resolve(entity.0)
    }

    /// Name of a relation.
    pub fn relation_name(&self, relation: RelationId) -> Option<&str> {
        self.relations.resolve(relation.0)
    }

    /// Looks up an entity by its exact name.
    pub fn entity_by_name(&self, name: &str) -> Option<EntityId> {
        self.entities.get(name).map(EntityId)
    }

    /// Looks up a relation by its exact name.
    pub fn relation_by_name(&self, name: &str) -> Option<RelationId> {
        self.relations.get(name).map(RelationId)
    }

    /// Iterates over all entity ids.
    pub fn entity_ids(&self) -> impl Iterator<Item = EntityId> {
        (0..self.num_entities() as u32).map(EntityId)
    }

    /// Iterates over all relation ids.
    pub fn relation_ids(&self) -> impl Iterator<Item = RelationId> {
        (0..self.num_relations() as u32).map(RelationId)
    }

    /// Triples whose head is `entity`.
    pub fn outgoing_triples(&self, entity: EntityId) -> impl Iterator<Item = Triple> + '_ {
        self.outgoing
            .get(entity.index())
            .into_iter()
            .flatten()
            .map(move |&i| self.triples[i as usize])
    }

    /// Triples whose tail is `entity`.
    pub fn incoming_triples(&self, entity: EntityId) -> impl Iterator<Item = Triple> + '_ {
        self.incoming
            .get(entity.index())
            .into_iter()
            .flatten()
            .map(move |&i| self.triples[i as usize])
    }

    /// All triples touching `entity` (outgoing then incoming; a reflexive
    /// triple appears only once, in the outgoing part).
    pub fn triples_of(&self, entity: EntityId) -> Vec<Triple> {
        let mut out: Vec<Triple> = self.outgoing_triples(entity).collect();
        out.extend(self.incoming_triples(entity).filter(|t| t.head != t.tail));
        out
    }

    /// Triples carrying `relation`.
    pub fn triples_with_relation(&self, relation: RelationId) -> impl Iterator<Item = Triple> + '_ {
        self.by_relation
            .get(relation.index())
            .into_iter()
            .flatten()
            .map(move |&i| self.triples[i as usize])
    }

    /// Degree (number of incident triples, reflexive triples counted once).
    pub fn degree(&self, entity: EntityId) -> usize {
        let out = self.outgoing.get(entity.index()).map_or(0, Vec::len);
        let inc = self
            .incoming_triples(entity)
            .filter(|t| t.head != t.tail)
            .count();
        out + inc
    }

    /// Direct neighbours of `entity`: `(neighbour, triple, direction)`.
    ///
    /// The direction is the direction in which the connecting triple is
    /// traversed when walking from `entity` to the neighbour.
    pub fn neighbors(&self, entity: EntityId) -> Vec<(EntityId, Triple, Direction)> {
        let mut result = Vec::new();
        for t in self.outgoing_triples(entity) {
            result.push((t.tail, t, Direction::Forward));
        }
        for t in self.incoming_triples(entity) {
            if t.head != t.tail {
                result.push((t.head, t, Direction::Backward));
            }
        }
        result
    }

    /// Distinct neighbour entities (order unspecified but deterministic).
    pub fn neighbor_entities(&self, entity: EntityId) -> Vec<EntityId> {
        let mut seen = HashSet::new();
        let mut result = Vec::new();
        for (n, _, _) in self.neighbors(entity) {
            if n != entity && seen.insert(n) {
                result.push(n);
            }
        }
        result
    }

    /// All triples within `hops` hops of `entity` (BFS over the undirected
    /// skeleton). `hops = 1` returns exactly the triples incident to `entity`.
    pub fn triples_within_hops(&self, entity: EntityId, hops: usize) -> Vec<Triple> {
        let mut seen_triples = HashSet::new();
        let mut result = Vec::new();
        let mut visited = HashSet::new();
        let mut queue = VecDeque::new();
        visited.insert(entity);
        queue.push_back((entity, 0usize));
        while let Some((current, depth)) = queue.pop_front() {
            if depth >= hops {
                continue;
            }
            for (neighbor, triple, _) in self.neighbors(current) {
                if seen_triples.insert(triple) {
                    result.push(triple);
                }
                if visited.insert(neighbor) {
                    queue.push_back((neighbor, depth + 1));
                }
            }
        }
        result
    }

    /// All entities within `hops` hops of `entity`, excluding `entity` itself.
    pub fn entities_within_hops(&self, entity: EntityId, hops: usize) -> Vec<EntityId> {
        let mut visited = HashSet::new();
        let mut order = Vec::new();
        let mut queue = VecDeque::new();
        visited.insert(entity);
        queue.push_back((entity, 0usize));
        while let Some((current, depth)) = queue.pop_front() {
            if depth >= hops {
                continue;
            }
            for (neighbor, _, _) in self.neighbors(current) {
                if visited.insert(neighbor) {
                    order.push(neighbor);
                    queue.push_back((neighbor, depth + 1));
                }
            }
        }
        order
    }

    /// Returns a copy of the graph with the given triples removed.
    ///
    /// Entities and relations (and their ids) are preserved so embeddings and
    /// alignment references remain valid. This is the operation used by the
    /// fidelity protocol: delete all candidate triples that are not part of an
    /// explanation and retrain the model on the remainder.
    pub fn without_triples(&self, remove: &HashSet<Triple>) -> KnowledgeGraph {
        let mut kg = KnowledgeGraph {
            entities: self.entities.clone(),
            relations: self.relations.clone(),
            triples: Vec::with_capacity(self.triples.len()),
            triple_set: HashSet::with_capacity(self.triples.len()),
            outgoing: vec![Vec::new(); self.num_entities()],
            incoming: vec![Vec::new(); self.num_entities()],
            by_relation: vec![Vec::new(); self.num_relations()],
        };
        for &t in &self.triples {
            if !remove.contains(&t) {
                kg.add_triple(t).expect("ids are valid in the clone");
            }
        }
        kg
    }

    /// Returns a copy of the graph keeping only triples accepted by `keep`.
    pub fn filter_triples<F: Fn(&Triple) -> bool>(&self, keep: F) -> KnowledgeGraph {
        let remove: HashSet<Triple> = self
            .triples
            .iter()
            .copied()
            .filter(|t| !keep(t))
            .collect();
        self.without_triples(&remove)
    }

    /// Average number of incident triples per entity.
    pub fn average_degree(&self) -> f64 {
        if self.num_entities() == 0 {
            return 0.0;
        }
        2.0 * self.num_triples() as f64 / self.num_entities() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the small California-governors example from Fig. 2 of the paper.
    fn example_kg() -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        kg.add_triple_by_names("Gavin_Newsom", "governor", "California");
        kg.add_triple_by_names("Gavin_Newsom", "predecessor", "Jerry_Brown");
        kg.add_triple_by_names("Jerry_Brown", "governor", "California");
        kg.add_triple_by_names("Gavin_Newsom", "party", "Democratic_Party");
        kg.add_triple_by_names("Gavin_Newsom", "spouse", "Jennifer_Siebel_Newsom");
        kg
    }

    #[test]
    fn building_by_names_interns_everything() {
        let kg = example_kg();
        assert_eq!(kg.num_entities(), 5);
        assert_eq!(kg.num_relations(), 4);
        assert_eq!(kg.num_triples(), 5);
        assert!(kg.entity_by_name("California").is_some());
        assert!(kg.relation_by_name("governor").is_some());
        assert_eq!(kg.entity_by_name("Texas"), None);
    }

    #[test]
    fn duplicate_triples_are_ignored() {
        let mut kg = example_kg();
        let gavin = kg.entity_by_name("Gavin_Newsom").unwrap();
        let governor = kg.relation_by_name("governor").unwrap();
        let ca = kg.entity_by_name("California").unwrap();
        let added = kg.add_triple(Triple::new(gavin, governor, ca)).unwrap();
        assert!(!added);
        assert_eq!(kg.num_triples(), 5);
    }

    #[test]
    fn invalid_ids_are_rejected() {
        let mut kg = example_kg();
        let bad = kg.add_triple(Triple::new(EntityId(99), RelationId(0), EntityId(0)));
        assert_eq!(bad, Err(GraphError::UnknownEntity(EntityId(99))));
        let bad = kg.add_triple(Triple::new(EntityId(0), RelationId(99), EntityId(0)));
        assert_eq!(bad, Err(GraphError::UnknownRelation(RelationId(99))));
        let bad = kg.add_triple(Triple::new(EntityId(0), RelationId(0), EntityId(99)));
        assert_eq!(bad, Err(GraphError::UnknownEntity(EntityId(99))));
    }

    #[test]
    fn neighbors_cover_both_directions() {
        let kg = example_kg();
        let gavin = kg.entity_by_name("Gavin_Newsom").unwrap();
        let jerry = kg.entity_by_name("Jerry_Brown").unwrap();
        let ca = kg.entity_by_name("California").unwrap();
        let gavin_neighbors = kg.neighbor_entities(gavin);
        assert_eq!(gavin_neighbors.len(), 4);
        let ca_neighbors = kg.neighbor_entities(ca);
        assert!(ca_neighbors.contains(&gavin));
        assert!(ca_neighbors.contains(&jerry));
        // Direction bookkeeping: California only has incoming edges.
        assert!(kg
            .neighbors(ca)
            .iter()
            .all(|(_, _, d)| *d == Direction::Backward));
    }

    #[test]
    fn degree_counts_incident_triples() {
        let kg = example_kg();
        let gavin = kg.entity_by_name("Gavin_Newsom").unwrap();
        let ca = kg.entity_by_name("California").unwrap();
        assert_eq!(kg.degree(gavin), 4);
        assert_eq!(kg.degree(ca), 2);
        assert!((kg.average_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reflexive_triples_counted_once() {
        let mut kg = KnowledgeGraph::new();
        kg.add_triple_by_names("a", "self", "a");
        let a = kg.entity_by_name("a").unwrap();
        assert_eq!(kg.degree(a), 1);
        assert_eq!(kg.triples_of(a).len(), 1);
        assert_eq!(kg.neighbors(a).len(), 1);
    }

    #[test]
    fn one_hop_triples_equal_incident_triples() {
        let kg = example_kg();
        let gavin = kg.entity_by_name("Gavin_Newsom").unwrap();
        let mut one_hop = kg.triples_within_hops(gavin, 1);
        let mut incident = kg.triples_of(gavin);
        one_hop.sort();
        incident.sort();
        assert_eq!(one_hop, incident);
    }

    #[test]
    fn two_hop_triples_reach_further() {
        let kg = example_kg();
        let gavin = kg.entity_by_name("Gavin_Newsom").unwrap();
        let two_hop = kg.triples_within_hops(gavin, 2);
        // Two hops from Gavin reach (Jerry_Brown, governor, California).
        assert_eq!(two_hop.len(), 5);
        let entities = kg.entities_within_hops(gavin, 2);
        assert_eq!(entities.len(), 4);
    }

    #[test]
    fn zero_hops_yields_nothing() {
        let kg = example_kg();
        let gavin = kg.entity_by_name("Gavin_Newsom").unwrap();
        assert!(kg.triples_within_hops(gavin, 0).is_empty());
        assert!(kg.entities_within_hops(gavin, 0).is_empty());
    }

    #[test]
    fn without_triples_preserves_vocabulary() {
        let kg = example_kg();
        let gavin = kg.entity_by_name("Gavin_Newsom").unwrap();
        let spouse = kg.relation_by_name("spouse").unwrap();
        let jen = kg.entity_by_name("Jennifer_Siebel_Newsom").unwrap();
        let mut remove = HashSet::new();
        remove.insert(Triple::new(gavin, spouse, jen));
        let reduced = kg.without_triples(&remove);
        assert_eq!(reduced.num_triples(), 4);
        assert_eq!(reduced.num_entities(), kg.num_entities());
        assert_eq!(reduced.num_relations(), kg.num_relations());
        assert_eq!(reduced.entity_by_name("Jennifer_Siebel_Newsom"), Some(jen));
        assert!(!reduced.contains_triple(&Triple::new(gavin, spouse, jen)));
    }

    #[test]
    fn filter_triples_keeps_matching() {
        let kg = example_kg();
        let governor = kg.relation_by_name("governor").unwrap();
        let only_governor = kg.filter_triples(|t| t.relation == governor);
        assert_eq!(only_governor.num_triples(), 2);
    }

    #[test]
    fn triples_with_relation_index_is_consistent() {
        let kg = example_kg();
        let governor = kg.relation_by_name("governor").unwrap();
        let by_index: Vec<_> = kg.triples_with_relation(governor).collect();
        let by_scan: Vec<_> = kg
            .triples()
            .iter()
            .copied()
            .filter(|t| t.relation == governor)
            .collect();
        assert_eq!(by_index, by_scan);
    }

    #[test]
    fn has_outgoing_relation_checks_heads_only() {
        let kg = example_kg();
        let ca = kg.entity_by_name("California").unwrap();
        let gavin = kg.entity_by_name("Gavin_Newsom").unwrap();
        let governor = kg.relation_by_name("governor").unwrap();
        assert!(kg.has_outgoing_relation(gavin, governor));
        assert!(!kg.has_outgoing_relation(ca, governor));
    }
}
