//! Indexed multi-relational knowledge graph.

use crate::csr::{BfsScratch, CsrIndex, Neighbors};
use crate::error::GraphError;
use crate::ids::{EntityId, RelationId};
use crate::triple::{Direction, Triple};
use crate::vocab::Interner;
use std::cell::RefCell;
use std::collections::HashSet;
use std::sync::OnceLock;

thread_local! {
    /// Shared scratch for the allocating compatibility wrappers, so existing
    /// call sites get reusable buffers without changing their signatures.
    static LOCAL_SCRATCH: RefCell<BfsScratch> = RefCell::new(BfsScratch::new());
}

/// An append-only, indexed knowledge graph.
///
/// The graph stores its triples in a flat vector and answers every adjacency
/// question — neighbourhoods, k-hop triple sets, relation extensions — from a
/// [`CsrIndex`]: three compressed-sparse-row views (outgoing by head,
/// incoming by tail, by relation) over the triple list. The index is built
/// lazily on first query after a mutation, in O(V + E) counting-sort passes,
/// and queries borrow directly from it: [`KnowledgeGraph::neighbors_iter`]
/// walks slices of the index without allocating.
///
/// Per-bucket CSR order equals triple insertion order, so query results are
/// identical to the historical push-based `Vec<Vec<u32>>` adjacency lists
/// (property-tested in `tests/prop_graph.rs`).
#[derive(Debug, Clone, Default)]
pub struct KnowledgeGraph {
    entities: Interner,
    relations: Interner,
    triples: Vec<Triple>,
    triple_set: HashSet<Triple>,
    csr: OnceLock<CsrIndex>,
}

impl KnowledgeGraph {
    /// Creates an empty knowledge graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph with capacity hints for entities, relations and triples.
    pub fn with_capacity(entities: usize, relations: usize, triples: usize) -> Self {
        Self {
            entities: Interner::with_capacity(entities),
            relations: Interner::with_capacity(relations),
            triples: Vec::with_capacity(triples),
            triple_set: HashSet::with_capacity(triples),
            csr: OnceLock::new(),
        }
    }

    /// The CSR adjacency index, (re)built on demand.
    ///
    /// The index is dropped by any mutation and rebuilt lazily on the next
    /// query, so the build cost is amortised over the (typically very long)
    /// read-only phases of the explanation pipeline.
    #[inline]
    pub fn csr(&self) -> &CsrIndex {
        self.csr.get_or_init(|| {
            CsrIndex::build(self.num_entities(), self.num_relations(), &self.triples)
        })
    }

    /// Drops the cached CSR index after a mutation.
    #[inline]
    fn invalidate_index(&mut self) {
        self.csr.take();
    }

    /// Interns (or finds) an entity by name and returns its id.
    ///
    /// A cached CSR index stays valid: a freshly interned entity has no
    /// triples, and the index reports empty buckets past its built range.
    pub fn add_entity(&mut self, name: &str) -> EntityId {
        EntityId(self.entities.intern(name))
    }

    /// Interns (or finds) a relation by name and returns its id.
    ///
    /// Like [`KnowledgeGraph::add_entity`], this leaves a cached CSR index
    /// intact.
    pub fn add_relation(&mut self, name: &str) -> RelationId {
        RelationId(self.relations.intern(name))
    }

    /// Adds a triple by ids. Duplicate triples are ignored.
    ///
    /// # Errors
    /// Returns [`GraphError::UnknownEntity`] / [`GraphError::UnknownRelation`]
    /// if any id has not been registered.
    pub fn add_triple(&mut self, triple: Triple) -> Result<bool, GraphError> {
        if triple.head.index() >= self.num_entities() {
            return Err(GraphError::UnknownEntity(triple.head));
        }
        if triple.tail.index() >= self.num_entities() {
            return Err(GraphError::UnknownEntity(triple.tail));
        }
        if triple.relation.index() >= self.num_relations() {
            return Err(GraphError::UnknownRelation(triple.relation));
        }
        if !self.triple_set.insert(triple) {
            return Ok(false);
        }
        let _ = u32::try_from(self.triples.len()).expect("triple index overflow");
        self.triples.push(triple);
        self.invalidate_index();
        Ok(true)
    }

    /// Convenience: add a triple by entity/relation names, interning as needed.
    pub fn add_triple_by_names(&mut self, head: &str, relation: &str, tail: &str) -> Triple {
        let h = self.add_entity(head);
        let r = self.add_relation(relation);
        let t = self.add_entity(tail);
        let triple = Triple::new(h, r, t);
        self.add_triple(triple)
            .expect("ids were just interned, so they must be valid");
        triple
    }

    /// Number of entities.
    #[inline]
    pub fn num_entities(&self) -> usize {
        self.entities.len()
    }

    /// Number of relations.
    #[inline]
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// Number of distinct triples.
    #[inline]
    pub fn num_triples(&self) -> usize {
        self.triples.len()
    }

    /// All triples in insertion order.
    #[inline]
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// Returns `true` if the exact triple is present.
    #[inline]
    pub fn contains_triple(&self, triple: &Triple) -> bool {
        self.triple_set.contains(triple)
    }

    /// Returns `true` if some triple `(head, relation, ?)` exists.
    pub fn has_outgoing_relation(&self, head: EntityId, relation: RelationId) -> bool {
        self.outgoing_triples(head).any(|t| t.relation == relation)
    }

    /// Name of an entity.
    pub fn entity_name(&self, entity: EntityId) -> Option<&str> {
        self.entities.resolve(entity.0)
    }

    /// Name of a relation.
    pub fn relation_name(&self, relation: RelationId) -> Option<&str> {
        self.relations.resolve(relation.0)
    }

    /// Looks up an entity by its exact name.
    pub fn entity_by_name(&self, name: &str) -> Option<EntityId> {
        self.entities.get(name).map(EntityId)
    }

    /// Looks up a relation by its exact name.
    pub fn relation_by_name(&self, name: &str) -> Option<RelationId> {
        self.relations.get(name).map(RelationId)
    }

    /// Iterates over all entity ids.
    pub fn entity_ids(&self) -> impl Iterator<Item = EntityId> {
        (0..self.num_entities() as u32).map(EntityId)
    }

    /// Iterates over all relation ids.
    pub fn relation_ids(&self) -> impl Iterator<Item = RelationId> {
        (0..self.num_relations() as u32).map(RelationId)
    }

    /// Triples whose head is `entity`.
    pub fn outgoing_triples(&self, entity: EntityId) -> impl Iterator<Item = Triple> + '_ {
        self.csr()
            .outgoing(entity)
            .iter()
            .map(move |&i| self.triples[i as usize])
    }

    /// Triples whose tail is `entity`.
    pub fn incoming_triples(&self, entity: EntityId) -> impl Iterator<Item = Triple> + '_ {
        self.csr()
            .incoming(entity)
            .iter()
            .map(move |&i| self.triples[i as usize])
    }

    /// All triples touching `entity` (outgoing then incoming; a reflexive
    /// triple appears only once, in the outgoing part).
    pub fn triples_of(&self, entity: EntityId) -> Vec<Triple> {
        self.neighbors_iter(entity).map(|n| n.triple).collect()
    }

    /// Triples carrying `relation`.
    pub fn triples_with_relation(&self, relation: RelationId) -> impl Iterator<Item = Triple> + '_ {
        self.csr()
            .with_relation(relation)
            .iter()
            .map(move |&i| self.triples[i as usize])
    }

    /// Degree (number of incident triples, reflexive triples counted once).
    pub fn degree(&self, entity: EntityId) -> usize {
        let csr = self.csr();
        let inc = csr
            .incoming(entity)
            .iter()
            .filter(|&&i| {
                let t = self.triples[i as usize];
                t.head != t.tail
            })
            .count();
        csr.out_degree(entity) + inc
    }

    /// Direct neighbours of `entity` as a zero-allocation borrowing iterator.
    ///
    /// Yields `(neighbour, triple, direction)` as [`crate::NeighborRef`] values in
    /// the same order as [`KnowledgeGraph::neighbors`]: outgoing triples
    /// first (forward), then non-reflexive incoming triples (backward). The
    /// iterator reads straight out of the CSR index — no per-call heap
    /// allocation.
    #[inline]
    pub fn neighbors_iter(&self, entity: EntityId) -> Neighbors<'_> {
        let csr = self.csr();
        Neighbors::new(&self.triples, csr.outgoing(entity), csr.incoming(entity))
    }

    /// Direct neighbours of `entity`: `(neighbour, triple, direction)`.
    ///
    /// The direction is the direction in which the connecting triple is
    /// traversed when walking from `entity` to the neighbour.
    ///
    /// Allocating compatibility wrapper around
    /// [`KnowledgeGraph::neighbors_iter`]; prefer the iterator in hot loops.
    pub fn neighbors(&self, entity: EntityId) -> Vec<(EntityId, Triple, Direction)> {
        self.neighbors_iter(entity)
            .map(|n| (n.entity, n.triple, n.direction))
            .collect()
    }

    /// Distinct neighbour entities (order unspecified but deterministic).
    pub fn neighbor_entities(&self, entity: EntityId) -> Vec<EntityId> {
        let mut seen = HashSet::new();
        let mut result = Vec::new();
        for n in self.neighbors_iter(entity) {
            if n.entity != entity && seen.insert(n.entity) {
                result.push(n.entity);
            }
        }
        result
    }

    /// All triples within `hops` hops of `entity` (BFS over the undirected
    /// skeleton). `hops = 1` returns exactly the triples incident to `entity`.
    ///
    /// Allocating wrapper around
    /// [`KnowledgeGraph::triples_within_hops_into`] using a thread-local
    /// scratch, so repeated calls reuse their visited bitmaps.
    pub fn triples_within_hops(&self, entity: EntityId, hops: usize) -> Vec<Triple> {
        let mut result = Vec::new();
        LOCAL_SCRATCH.with(|scratch| {
            self.triples_within_hops_into(entity, hops, &mut scratch.borrow_mut(), &mut result);
        });
        result
    }

    /// BFS core of [`KnowledgeGraph::triples_within_hops`]: appends the k-hop
    /// triples to `out` (cleared first), reusing `scratch` buffers so the
    /// traversal itself performs no heap allocation in steady state.
    pub fn triples_within_hops_into(
        &self,
        entity: EntityId,
        hops: usize,
        scratch: &mut BfsScratch,
        out: &mut Vec<Triple>,
    ) {
        out.clear();
        if hops == 0 {
            return;
        }
        scratch.reset(self.num_entities(), self.num_triples());
        let csr = self.csr();
        scratch.visited.insert(entity.index());
        scratch.queue.push_back((entity, 0));
        while let Some((current, depth)) = scratch.queue.pop_front() {
            if depth as usize >= hops {
                continue;
            }
            for &idx in csr.outgoing(current) {
                let triple = self.triples[idx as usize];
                if scratch.seen_triples.insert(idx as usize) {
                    out.push(triple);
                }
                if scratch.visited.insert(triple.tail.index()) {
                    scratch.queue.push_back((triple.tail, depth + 1));
                }
            }
            for &idx in csr.incoming(current) {
                let triple = self.triples[idx as usize];
                if triple.head == triple.tail {
                    continue;
                }
                if scratch.seen_triples.insert(idx as usize) {
                    out.push(triple);
                }
                if scratch.visited.insert(triple.head.index()) {
                    scratch.queue.push_back((triple.head, depth + 1));
                }
            }
        }
    }

    /// All entities within `hops` hops of `entity`, excluding `entity` itself.
    ///
    /// Allocating wrapper around
    /// [`KnowledgeGraph::entities_within_hops_into`] using a thread-local
    /// scratch.
    pub fn entities_within_hops(&self, entity: EntityId, hops: usize) -> Vec<EntityId> {
        let mut result = Vec::new();
        LOCAL_SCRATCH.with(|scratch| {
            self.entities_within_hops_into(entity, hops, &mut scratch.borrow_mut(), &mut result);
        });
        result
    }

    /// BFS core of [`KnowledgeGraph::entities_within_hops`]: appends entities
    /// in discovery order to `out` (cleared first), reusing `scratch`.
    pub fn entities_within_hops_into(
        &self,
        entity: EntityId,
        hops: usize,
        scratch: &mut BfsScratch,
        out: &mut Vec<EntityId>,
    ) {
        out.clear();
        if hops == 0 {
            return;
        }
        scratch.reset(self.num_entities(), 0);
        scratch.visited.insert(entity.index());
        scratch.queue.push_back((entity, 0));
        while let Some((current, depth)) = scratch.queue.pop_front() {
            if depth as usize >= hops {
                continue;
            }
            for n in self.neighbors_iter(current) {
                if scratch.visited.insert(n.entity.index()) {
                    out.push(n.entity);
                    scratch.queue.push_back((n.entity, depth + 1));
                }
            }
        }
    }

    /// Returns a copy of the graph with the given triples removed.
    ///
    /// Entities and relations (and their ids) are preserved so embeddings and
    /// alignment references remain valid. This is the operation used by the
    /// fidelity protocol: delete all candidate triples that are not part of an
    /// explanation and retrain the model on the remainder.
    ///
    /// The surviving triples are collected in one filtering pass; no
    /// per-triple hash-set insertion or adjacency bookkeeping is repeated
    /// (the CSR index of the copy is rebuilt lazily on its first query).
    pub fn without_triples(&self, remove: &HashSet<Triple>) -> KnowledgeGraph {
        self.filter_triples(|t| !remove.contains(t))
    }

    /// Returns a copy of the graph keeping only triples accepted by `keep`.
    pub fn filter_triples<F: Fn(&Triple) -> bool>(&self, keep: F) -> KnowledgeGraph {
        let triples: Vec<Triple> = self.triples.iter().copied().filter(|t| keep(t)).collect();
        let triple_set: HashSet<Triple> = triples.iter().copied().collect();
        KnowledgeGraph {
            entities: self.entities.clone(),
            relations: self.relations.clone(),
            triples,
            triple_set,
            csr: OnceLock::new(),
        }
    }

    /// Average number of incident triples per entity.
    pub fn average_degree(&self) -> f64 {
        if self.num_entities() == 0 {
            return 0.0;
        }
        2.0 * self.num_triples() as f64 / self.num_entities() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the small California-governors example from Fig. 2 of the paper.
    fn example_kg() -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        kg.add_triple_by_names("Gavin_Newsom", "governor", "California");
        kg.add_triple_by_names("Gavin_Newsom", "predecessor", "Jerry_Brown");
        kg.add_triple_by_names("Jerry_Brown", "governor", "California");
        kg.add_triple_by_names("Gavin_Newsom", "party", "Democratic_Party");
        kg.add_triple_by_names("Gavin_Newsom", "spouse", "Jennifer_Siebel_Newsom");
        kg
    }

    #[test]
    fn building_by_names_interns_everything() {
        let kg = example_kg();
        assert_eq!(kg.num_entities(), 5);
        assert_eq!(kg.num_relations(), 4);
        assert_eq!(kg.num_triples(), 5);
        assert!(kg.entity_by_name("California").is_some());
        assert!(kg.relation_by_name("governor").is_some());
        assert_eq!(kg.entity_by_name("Texas"), None);
    }

    #[test]
    fn duplicate_triples_are_ignored() {
        let mut kg = example_kg();
        let gavin = kg.entity_by_name("Gavin_Newsom").unwrap();
        let governor = kg.relation_by_name("governor").unwrap();
        let ca = kg.entity_by_name("California").unwrap();
        let added = kg.add_triple(Triple::new(gavin, governor, ca)).unwrap();
        assert!(!added);
        assert_eq!(kg.num_triples(), 5);
    }

    #[test]
    fn invalid_ids_are_rejected() {
        let mut kg = example_kg();
        let bad = kg.add_triple(Triple::new(EntityId(99), RelationId(0), EntityId(0)));
        assert_eq!(bad, Err(GraphError::UnknownEntity(EntityId(99))));
        let bad = kg.add_triple(Triple::new(EntityId(0), RelationId(99), EntityId(0)));
        assert_eq!(bad, Err(GraphError::UnknownRelation(RelationId(99))));
        let bad = kg.add_triple(Triple::new(EntityId(0), RelationId(0), EntityId(99)));
        assert_eq!(bad, Err(GraphError::UnknownEntity(EntityId(99))));
    }

    #[test]
    fn neighbors_cover_both_directions() {
        let kg = example_kg();
        let gavin = kg.entity_by_name("Gavin_Newsom").unwrap();
        let jerry = kg.entity_by_name("Jerry_Brown").unwrap();
        let ca = kg.entity_by_name("California").unwrap();
        let gavin_neighbors = kg.neighbor_entities(gavin);
        assert_eq!(gavin_neighbors.len(), 4);
        let ca_neighbors = kg.neighbor_entities(ca);
        assert!(ca_neighbors.contains(&gavin));
        assert!(ca_neighbors.contains(&jerry));
        // Direction bookkeeping: California only has incoming edges.
        assert!(kg
            .neighbors(ca)
            .iter()
            .all(|(_, _, d)| *d == Direction::Backward));
    }

    #[test]
    fn neighbors_iter_matches_allocating_neighbors() {
        let kg = example_kg();
        for e in kg.entity_ids() {
            let via_iter: Vec<(EntityId, Triple, Direction)> = kg
                .neighbors_iter(e)
                .map(|n| (n.entity, n.triple, n.direction))
                .collect();
            assert_eq!(via_iter, kg.neighbors(e));
        }
    }

    #[test]
    fn csr_rebuilds_after_mutation() {
        let mut kg = example_kg();
        let gavin = kg.entity_by_name("Gavin_Newsom").unwrap();
        assert_eq!(kg.degree(gavin), 4); // builds the index
        kg.add_triple_by_names("Gavin_Newsom", "office", "Governor_of_California");
        assert_eq!(kg.degree(gavin), 5); // index was invalidated and rebuilt
        let office = kg.relation_by_name("office").unwrap();
        assert_eq!(kg.triples_with_relation(office).count(), 1);
    }

    #[test]
    fn late_interned_entity_has_no_neighbors() {
        let mut kg = example_kg();
        let _ = kg.degree(EntityId(0)); // build the index
        let texas = kg.add_entity("Texas");
        assert_eq!(kg.degree(texas), 0);
        assert_eq!(kg.neighbors_iter(texas).count(), 0);
        assert!(kg.triples_within_hops(texas, 2).is_empty());
    }

    #[test]
    fn degree_counts_incident_triples() {
        let kg = example_kg();
        let gavin = kg.entity_by_name("Gavin_Newsom").unwrap();
        let ca = kg.entity_by_name("California").unwrap();
        assert_eq!(kg.degree(gavin), 4);
        assert_eq!(kg.degree(ca), 2);
        assert!((kg.average_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reflexive_triples_counted_once() {
        let mut kg = KnowledgeGraph::new();
        kg.add_triple_by_names("a", "self", "a");
        let a = kg.entity_by_name("a").unwrap();
        assert_eq!(kg.degree(a), 1);
        assert_eq!(kg.triples_of(a).len(), 1);
        assert_eq!(kg.neighbors(a).len(), 1);
    }

    #[test]
    fn one_hop_triples_equal_incident_triples() {
        let kg = example_kg();
        let gavin = kg.entity_by_name("Gavin_Newsom").unwrap();
        let mut one_hop = kg.triples_within_hops(gavin, 1);
        let mut incident = kg.triples_of(gavin);
        one_hop.sort();
        incident.sort();
        assert_eq!(one_hop, incident);
    }

    #[test]
    fn two_hop_triples_reach_further() {
        let kg = example_kg();
        let gavin = kg.entity_by_name("Gavin_Newsom").unwrap();
        let two_hop = kg.triples_within_hops(gavin, 2);
        // Two hops from Gavin reach (Jerry_Brown, governor, California).
        assert_eq!(two_hop.len(), 5);
        let entities = kg.entities_within_hops(gavin, 2);
        assert_eq!(entities.len(), 4);
    }

    #[test]
    fn zero_hops_yields_nothing() {
        let kg = example_kg();
        let gavin = kg.entity_by_name("Gavin_Newsom").unwrap();
        assert!(kg.triples_within_hops(gavin, 0).is_empty());
        assert!(kg.entities_within_hops(gavin, 0).is_empty());
    }

    #[test]
    fn scratch_reuse_matches_fresh_traversals() {
        let kg = example_kg();
        let mut scratch = BfsScratch::new();
        let mut buffer = Vec::new();
        for e in kg.entity_ids() {
            for hops in 0..3 {
                kg.triples_within_hops_into(e, hops, &mut scratch, &mut buffer);
                assert_eq!(buffer, kg.triples_within_hops(e, hops));
            }
        }
        let mut entities = Vec::new();
        for e in kg.entity_ids() {
            kg.entities_within_hops_into(e, 2, &mut scratch, &mut entities);
            assert_eq!(entities, kg.entities_within_hops(e, 2));
        }
    }

    #[test]
    fn without_triples_preserves_vocabulary() {
        let kg = example_kg();
        let gavin = kg.entity_by_name("Gavin_Newsom").unwrap();
        let spouse = kg.relation_by_name("spouse").unwrap();
        let jen = kg.entity_by_name("Jennifer_Siebel_Newsom").unwrap();
        let mut remove = HashSet::new();
        remove.insert(Triple::new(gavin, spouse, jen));
        let reduced = kg.without_triples(&remove);
        assert_eq!(reduced.num_triples(), 4);
        assert_eq!(reduced.num_entities(), kg.num_entities());
        assert_eq!(reduced.num_relations(), kg.num_relations());
        assert_eq!(reduced.entity_by_name("Jennifer_Siebel_Newsom"), Some(jen));
        assert!(!reduced.contains_triple(&Triple::new(gavin, spouse, jen)));
        // The copy answers adjacency queries consistently.
        assert_eq!(reduced.degree(gavin), 3);
    }

    #[test]
    fn filter_triples_keeps_matching() {
        let kg = example_kg();
        let governor = kg.relation_by_name("governor").unwrap();
        let only_governor = kg.filter_triples(|t| t.relation == governor);
        assert_eq!(only_governor.num_triples(), 2);
    }

    #[test]
    fn triples_with_relation_index_is_consistent() {
        let kg = example_kg();
        let governor = kg.relation_by_name("governor").unwrap();
        let by_index: Vec<_> = kg.triples_with_relation(governor).collect();
        let by_scan: Vec<_> = kg
            .triples()
            .iter()
            .copied()
            .filter(|t| t.relation == governor)
            .collect();
        assert_eq!(by_index, by_scan);
    }

    #[test]
    fn has_outgoing_relation_checks_heads_only() {
        let kg = example_kg();
        let ca = kg.entity_by_name("California").unwrap();
        let gavin = kg.entity_by_name("Gavin_Newsom").unwrap();
        let governor = kg.relation_by_name("governor").unwrap();
        assert!(kg.has_outgoing_relation(gavin, governor));
        assert!(!kg.has_outgoing_relation(ca, governor));
    }
}
