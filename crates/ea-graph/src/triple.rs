//! Relation triples and traversal direction.

use crate::ids::{EntityId, RelationId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A relation triple `(head, relation, tail)`.
///
/// Heads and tails are entities of the *same* knowledge graph; cross-KG
/// triples used during repair are ordinary `Triple`s whose ids are interpreted
/// against a merged id space by the caller (see `exea-core::cross_kg`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Triple {
    /// Subject entity.
    pub head: EntityId,
    /// Relation connecting head and tail.
    pub relation: RelationId,
    /// Object entity.
    pub tail: EntityId,
}

impl Triple {
    /// Creates a new triple.
    #[inline]
    pub fn new(head: EntityId, relation: RelationId, tail: EntityId) -> Self {
        Self {
            head,
            relation,
            tail,
        }
    }

    /// Returns the entity on the other end of the triple relative to `entity`,
    /// together with the direction in which the triple is traversed.
    ///
    /// Returns `None` if `entity` is neither head nor tail. For reflexive
    /// triples (`head == tail`) the forward direction is reported.
    #[inline]
    pub fn other_end(&self, entity: EntityId) -> Option<(EntityId, Direction)> {
        if self.head == entity {
            Some((self.tail, Direction::Forward))
        } else if self.tail == entity {
            Some((self.head, Direction::Backward))
        } else {
            None
        }
    }

    /// Returns `true` if `entity` participates in the triple.
    #[inline]
    pub fn contains(&self, entity: EntityId) -> bool {
        self.head == entity || self.tail == entity
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.head, self.relation, self.tail)
    }
}

/// Direction in which a triple is traversed when walking a relation path.
///
/// Walking `(h, r, t)` from `h` to `t` is [`Direction::Forward`]; walking it
/// from `t` to `h` is [`Direction::Backward`]. The distinction matters because
/// relation *functionality* and *inverse functionality* (PARIS) apply to
/// forward and backward traversals respectively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Head-to-tail traversal.
    Forward,
    /// Tail-to-head traversal.
    Backward,
}

impl Direction {
    /// Returns the opposite direction.
    #[inline]
    pub fn reverse(self) -> Self {
        match self {
            Direction::Forward => Direction::Backward,
            Direction::Backward => Direction::Forward,
        }
    }

    /// Returns `true` for [`Direction::Forward`].
    #[inline]
    pub fn is_forward(self) -> bool {
        matches!(self, Direction::Forward)
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::Forward => write!(f, "->"),
            Direction::Backward => write!(f, "<-"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(h: u32, r: u32, ta: u32) -> Triple {
        Triple::new(EntityId(h), RelationId(r), EntityId(ta))
    }

    #[test]
    fn other_end_from_head_is_forward() {
        let tr = t(1, 0, 2);
        assert_eq!(
            tr.other_end(EntityId(1)),
            Some((EntityId(2), Direction::Forward))
        );
    }

    #[test]
    fn other_end_from_tail_is_backward() {
        let tr = t(1, 0, 2);
        assert_eq!(
            tr.other_end(EntityId(2)),
            Some((EntityId(1), Direction::Backward))
        );
    }

    #[test]
    fn other_end_for_unrelated_entity_is_none() {
        let tr = t(1, 0, 2);
        assert_eq!(tr.other_end(EntityId(3)), None);
        assert!(!tr.contains(EntityId(3)));
        assert!(tr.contains(EntityId(1)));
        assert!(tr.contains(EntityId(2)));
    }

    #[test]
    fn reflexive_triple_reports_forward() {
        let tr = t(5, 1, 5);
        assert_eq!(
            tr.other_end(EntityId(5)),
            Some((EntityId(5), Direction::Forward))
        );
    }

    #[test]
    fn direction_reverse_is_involutive() {
        assert_eq!(Direction::Forward.reverse(), Direction::Backward);
        assert_eq!(Direction::Backward.reverse(), Direction::Forward);
        assert_eq!(Direction::Forward.reverse().reverse(), Direction::Forward);
        assert!(Direction::Forward.is_forward());
        assert!(!Direction::Backward.is_forward());
    }

    #[test]
    fn triples_order_lexicographically() {
        let mut v = vec![t(2, 0, 0), t(1, 5, 0), t(1, 0, 3)];
        v.sort();
        assert_eq!(v, vec![t(1, 0, 3), t(1, 5, 0), t(2, 0, 0)]);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(t(1, 2, 3).to_string(), "(e1, r2, e3)");
        assert_eq!(Direction::Forward.to_string(), "->");
        assert_eq!(Direction::Backward.to_string(), "<-");
    }
}
