//! Knowledge-graph summary statistics.

use crate::kg::KnowledgeGraph;
use std::fmt;

/// Summary statistics of a single knowledge graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KgStats {
    /// Number of entities.
    pub entities: usize,
    /// Number of relations.
    pub relations: usize,
    /// Number of triples.
    pub triples: usize,
    /// Average entity degree (incident triples per entity).
    pub average_degree: f64,
    /// Maximum entity degree.
    pub max_degree: usize,
    /// Number of entities with no incident triples.
    pub isolated_entities: usize,
}

impl KgStats {
    /// Computes statistics for `kg`.
    pub fn compute(kg: &KnowledgeGraph) -> Self {
        let mut max_degree = 0usize;
        let mut isolated = 0usize;
        for e in kg.entity_ids() {
            let d = kg.degree(e);
            max_degree = max_degree.max(d);
            if d == 0 {
                isolated += 1;
            }
        }
        Self {
            entities: kg.num_entities(),
            relations: kg.num_relations(),
            triples: kg.num_triples(),
            average_degree: kg.average_degree(),
            max_degree,
            isolated_entities: isolated,
        }
    }

    /// Triple density: triples per entity (half the average degree).
    pub fn density(&self) -> f64 {
        if self.entities == 0 {
            0.0
        } else {
            self.triples as f64 / self.entities as f64
        }
    }
}

impl fmt::Display for KgStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} entities, {} relations, {} triples (avg degree {:.2}, max degree {}, {} isolated)",
            self.entities,
            self.relations,
            self.triples,
            self.average_degree,
            self.max_degree,
            self.isolated_entities
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_small_graph() {
        let mut kg = KnowledgeGraph::new();
        kg.add_triple_by_names("a", "r", "b");
        kg.add_triple_by_names("a", "r", "c");
        kg.add_entity("lonely");
        let stats = KgStats::compute(&kg);
        assert_eq!(stats.entities, 4);
        assert_eq!(stats.relations, 1);
        assert_eq!(stats.triples, 2);
        assert_eq!(stats.max_degree, 2);
        assert_eq!(stats.isolated_entities, 1);
        assert!((stats.average_degree - 1.0).abs() < 1e-12);
        assert!((stats.density() - 0.5).abs() < 1e-12);
        assert!(stats.to_string().contains("4 entities"));
    }

    #[test]
    fn stats_on_empty_graph() {
        let stats = KgStats::compute(&KnowledgeGraph::new());
        assert_eq!(stats.entities, 0);
        assert_eq!(stats.density(), 0.0);
        assert_eq!(stats.max_degree, 0);
    }
}
