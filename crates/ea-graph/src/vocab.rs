//! String interning for entity and relation names.
//!
//! Knowledge graphs in entity-alignment benchmarks identify entities and
//! relations by URIs. Interning them once keeps the rest of the pipeline
//! working on dense integer ids while still being able to render
//! human-readable explanations.

use std::collections::HashMap;

/// A simple append-only string interner producing dense `u32` ids.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an interner with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            names: Vec::with_capacity(cap),
            index: HashMap::with_capacity(cap),
        }
    }

    /// Interns `name`, returning its id. Re-interning an existing name
    /// returns the previously assigned id.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = u32::try_from(self.names.len()).expect("interner overflow");
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Looks up the id of an already-interned name.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// Returns the name for an id, if the id is in range.
    pub fn resolve(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as u32, n.as_str()))
    }

    /// Returns all names in id order.
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("Gavin_Newsom");
        let b = i.intern("Jerry_Brown");
        let a2 = i.intern("Gavin_Newsom");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_returns_original_name() {
        let mut i = Interner::with_capacity(4);
        let id = i.intern("加文·纽森");
        assert_eq!(i.resolve(id), Some("加文·纽森"));
        assert_eq!(i.resolve(id + 1), None);
    }

    #[test]
    fn get_finds_only_interned_names() {
        let mut i = Interner::new();
        i.intern("a");
        assert_eq!(i.get("a"), Some(0));
        assert_eq!(i.get("b"), None);
    }

    #[test]
    fn iter_preserves_insertion_order() {
        let mut i = Interner::new();
        for name in ["x", "y", "z"] {
            i.intern(name);
        }
        let collected: Vec<_> = i.iter().map(|(_, n)| n.to_owned()).collect();
        assert_eq!(collected, vec!["x", "y", "z"]);
        assert_eq!(i.names().len(), 3);
        assert!(!i.is_empty());
    }

    #[test]
    fn empty_interner_reports_empty() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}
