//! Strongly-typed identifiers for entities, relations and graph sides.
//!
//! Using newtypes instead of bare `usize` prevents the classic bug of mixing
//! up entity indexes from the source and target graphs, or passing a relation
//! index where an entity index is expected.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an entity inside a single [`crate::KnowledgeGraph`].
///
/// Entity ids are dense: a graph with `n` entities uses ids `0..n`, so they
/// can be used directly as row indexes into embedding tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EntityId(pub u32);

/// Identifier of a relation inside a single [`crate::KnowledgeGraph`].
///
/// Relation ids are dense in the same way as [`EntityId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RelationId(pub u32);

impl EntityId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a `usize` index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in a `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        Self(u32::try_from(index).expect("entity index overflows u32"))
    }
}

impl RelationId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a `usize` index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in a `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        Self(u32::try_from(index).expect("relation index overflows u32"))
    }
}

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for RelationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Which side of a [`crate::KgPair`] a graph element belongs to.
///
/// Entity alignment always involves exactly two graphs: the *source* graph
/// `K1` whose entities we try to align, and the *target* graph `K2` in which
/// counterparts are searched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KgSide {
    /// The source knowledge graph (`K1` in the paper).
    Source,
    /// The target knowledge graph (`K2` in the paper).
    Target,
}

impl KgSide {
    /// Returns the opposite side.
    #[inline]
    pub fn other(self) -> Self {
        match self {
            KgSide::Source => KgSide::Target,
            KgSide::Target => KgSide::Source,
        }
    }

    /// Returns `true` for [`KgSide::Source`].
    #[inline]
    pub fn is_source(self) -> bool {
        matches!(self, KgSide::Source)
    }
}

impl fmt::Display for KgSide {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KgSide::Source => write!(f, "source"),
            KgSide::Target => write!(f, "target"),
        }
    }
}

/// An entity qualified by the side of the KG pair it lives in.
///
/// Alignment-dependency graphs and repair bookkeeping frequently need to talk
/// about entities from both graphs in one collection; this type keeps the
/// provenance explicit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SidedEntity {
    /// Which graph the entity belongs to. `Source` orders before `Target`.
    pub side_is_target: bool,
    /// The entity id inside that graph.
    pub entity: EntityId,
}

impl SidedEntity {
    /// Creates a sided entity.
    pub fn new(side: KgSide, entity: EntityId) -> Self {
        Self {
            side_is_target: side == KgSide::Target,
            entity,
        }
    }

    /// Returns the side of this entity.
    pub fn side(&self) -> KgSide {
        if self.side_is_target {
            KgSide::Target
        } else {
            KgSide::Source
        }
    }
}

impl fmt::Display for SidedEntity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.side(), self.entity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn entity_id_roundtrip() {
        let id = EntityId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id, EntityId(42));
        assert_eq!(id.to_string(), "e42");
    }

    #[test]
    fn relation_id_roundtrip() {
        let id = RelationId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "r7");
    }

    #[test]
    #[should_panic(expected = "entity index overflows u32")]
    fn entity_id_overflow_panics() {
        let _ = EntityId::from_index(usize::MAX);
    }

    #[test]
    fn kg_side_other_is_involutive() {
        assert_eq!(KgSide::Source.other(), KgSide::Target);
        assert_eq!(KgSide::Target.other(), KgSide::Source);
        assert_eq!(KgSide::Source.other().other(), KgSide::Source);
        assert!(KgSide::Source.is_source());
        assert!(!KgSide::Target.is_source());
    }

    #[test]
    fn sided_entity_preserves_side() {
        let s = SidedEntity::new(KgSide::Source, EntityId(3));
        let t = SidedEntity::new(KgSide::Target, EntityId(3));
        assert_eq!(s.side(), KgSide::Source);
        assert_eq!(t.side(), KgSide::Target);
        assert_ne!(s, t);
        assert_eq!(s.to_string(), "source:e3");
    }

    #[test]
    fn ids_are_hashable_and_distinct() {
        let mut set = HashSet::new();
        for i in 0..100u32 {
            set.insert(EntityId(i));
        }
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn sided_entity_ordering_groups_sources_first() {
        let mut v = [
            SidedEntity::new(KgSide::Target, EntityId(0)),
            SidedEntity::new(KgSide::Source, EntityId(5)),
            SidedEntity::new(KgSide::Source, EntityId(1)),
        ];
        v.sort();
        assert_eq!(v[0].side(), KgSide::Source);
        assert_eq!(v[1].side(), KgSide::Source);
        assert_eq!(v[2].side(), KgSide::Target);
    }
}
