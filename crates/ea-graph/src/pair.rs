//! A pair of knowledge graphs with seed and reference alignment.

use crate::alignment::{AlignmentPair, AlignmentSet};
use crate::error::GraphError;
use crate::ids::{EntityId, KgSide};
use crate::kg::KnowledgeGraph;
use crate::stats::KgStats;
use std::collections::HashSet;
use std::fmt;

/// The unit of work for entity alignment: two knowledge graphs, a seed
/// (training) alignment set and a reference (test) alignment set.
///
/// The seed alignment is what embedding models learn from; the reference
/// alignment is what accuracy is measured against. Their source-entity sets
/// are disjoint.
#[derive(Debug, Clone)]
pub struct KgPair {
    /// The source knowledge graph (`K1`).
    pub source: KnowledgeGraph,
    /// The target knowledge graph (`K2`).
    pub target: KnowledgeGraph,
    /// Seed alignment used for training.
    pub seed: AlignmentSet,
    /// Reference alignment used for evaluation.
    pub reference: AlignmentSet,
    /// Human-readable dataset name (e.g. "ZH-EN").
    pub name: String,
}

impl KgPair {
    /// Creates a KG pair, validating that all alignment pairs reference
    /// existing entities and that seed and reference source entities are
    /// disjoint.
    pub fn new(
        name: impl Into<String>,
        source: KnowledgeGraph,
        target: KnowledgeGraph,
        seed: AlignmentSet,
        reference: AlignmentSet,
    ) -> Result<Self, GraphError> {
        let pair = Self {
            source,
            target,
            seed,
            reference,
            name: name.into(),
        };
        pair.validate()?;
        Ok(pair)
    }

    fn validate(&self) -> Result<(), GraphError> {
        for (set, label) in [(&self.seed, "seed"), (&self.reference, "reference")] {
            for p in set.iter() {
                if p.source.index() >= self.source.num_entities() {
                    return Err(GraphError::InvalidAlignment {
                        detail: format!("{label} pair {p} references unknown source entity"),
                    });
                }
                if p.target.index() >= self.target.num_entities() {
                    return Err(GraphError::InvalidAlignment {
                        detail: format!("{label} pair {p} references unknown target entity"),
                    });
                }
            }
        }
        let seed_sources: HashSet<EntityId> = self.seed.sources().into_iter().collect();
        for s in self.reference.sources() {
            if seed_sources.contains(&s) {
                return Err(GraphError::InvalidAlignment {
                    detail: format!("entity {s} appears in both seed and reference alignment"),
                });
            }
        }
        Ok(())
    }

    /// Returns the knowledge graph on the given side.
    pub fn kg(&self, side: KgSide) -> &KnowledgeGraph {
        match side {
            KgSide::Source => &self.source,
            KgSide::Target => &self.target,
        }
    }

    /// Source entities that models must align at test time.
    pub fn test_source_entities(&self) -> Vec<EntityId> {
        self.reference.sources()
    }

    /// All known alignment (seed plus reference), used when a task needs the
    /// full gold standard, e.g. to label verification examples.
    pub fn full_gold(&self) -> AlignmentSet {
        let mut all = AlignmentSet::new();
        all.extend_from(&self.seed);
        all.extend_from(&self.reference);
        all
    }

    /// Whether the pair of entities is correct according to seed or reference
    /// alignment.
    pub fn is_correct(&self, pair: &AlignmentPair) -> bool {
        self.seed.contains(pair) || self.reference.contains(pair)
    }

    /// Statistics for both graphs plus alignment sizes.
    pub fn stats(&self) -> KgPairStats {
        KgPairStats {
            name: self.name.clone(),
            source: KgStats::compute(&self.source),
            target: KgStats::compute(&self.target),
            seed_pairs: self.seed.len(),
            reference_pairs: self.reference.len(),
        }
    }

    /// Returns a copy of the pair with a different seed alignment (used for
    /// seed-noise experiments).
    pub fn with_seed(&self, seed: AlignmentSet) -> Result<Self, GraphError> {
        Self::new(
            self.name.clone(),
            self.source.clone(),
            self.target.clone(),
            seed,
            self.reference.clone(),
        )
    }

    /// Returns a copy of the pair with some triples removed from each graph
    /// (used by the fidelity protocol).
    pub fn with_removed_triples(
        &self,
        remove_source: &HashSet<crate::Triple>,
        remove_target: &HashSet<crate::Triple>,
    ) -> Self {
        Self {
            source: self.source.without_triples(remove_source),
            target: self.target.without_triples(remove_target),
            seed: self.seed.clone(),
            reference: self.reference.clone(),
            name: self.name.clone(),
        }
    }
}

/// Summary statistics of a KG pair.
#[derive(Debug, Clone)]
pub struct KgPairStats {
    /// Dataset name.
    pub name: String,
    /// Source-graph statistics.
    pub source: KgStats,
    /// Target-graph statistics.
    pub target: KgStats,
    /// Number of seed alignment pairs.
    pub seed_pairs: usize,
    /// Number of reference alignment pairs.
    pub reference_pairs: usize,
}

impl fmt::Display for KgPairStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "dataset {}", self.name)?;
        writeln!(f, "  source: {}", self.source)?;
        writeln!(f, "  target: {}", self.target)?;
        writeln!(
            f,
            "  alignment: {} seed / {} reference",
            self.seed_pairs, self.reference_pairs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_pair() -> KgPair {
        let mut k1 = KnowledgeGraph::new();
        k1.add_triple_by_names("a1", "r1", "b1");
        k1.add_triple_by_names("b1", "r2", "c1");
        let mut k2 = KnowledgeGraph::new();
        k2.add_triple_by_names("a2", "s1", "b2");
        k2.add_triple_by_names("b2", "s2", "c2");
        let a1 = k1.entity_by_name("a1").unwrap();
        let b1 = k1.entity_by_name("b1").unwrap();
        let c1 = k1.entity_by_name("c1").unwrap();
        let a2 = k2.entity_by_name("a2").unwrap();
        let b2 = k2.entity_by_name("b2").unwrap();
        let c2 = k2.entity_by_name("c2").unwrap();
        let seed = AlignmentSet::from_pairs([AlignmentPair::new(a1, a2)]);
        let reference =
            AlignmentSet::from_pairs([AlignmentPair::new(b1, b2), AlignmentPair::new(c1, c2)]);
        KgPair::new("tiny", k1, k2, seed, reference).unwrap()
    }

    #[test]
    fn construction_validates_and_reports_stats() {
        let pair = tiny_pair();
        assert_eq!(pair.name, "tiny");
        let stats = pair.stats();
        assert_eq!(stats.seed_pairs, 1);
        assert_eq!(stats.reference_pairs, 2);
        assert_eq!(stats.source.entities, 3);
        assert!(stats.to_string().contains("tiny"));
        assert_eq!(pair.test_source_entities().len(), 2);
        assert_eq!(pair.kg(KgSide::Source).num_triples(), 2);
        assert_eq!(pair.kg(KgSide::Target).num_triples(), 2);
    }

    #[test]
    fn invalid_entity_reference_is_rejected() {
        let pair = tiny_pair();
        let bad_seed = AlignmentSet::from_pairs([AlignmentPair::new(EntityId(99), EntityId(0))]);
        let result = KgPair::new(
            "bad",
            pair.source.clone(),
            pair.target.clone(),
            bad_seed,
            AlignmentSet::new(),
        );
        assert!(matches!(result, Err(GraphError::InvalidAlignment { .. })));
    }

    #[test]
    fn overlapping_seed_and_reference_rejected() {
        let pair = tiny_pair();
        let overlapping = pair.full_gold();
        let result = KgPair::new(
            "bad",
            pair.source.clone(),
            pair.target.clone(),
            pair.seed.clone(),
            overlapping,
        );
        assert!(matches!(result, Err(GraphError::InvalidAlignment { .. })));
    }

    #[test]
    fn full_gold_and_correctness_check() {
        let pair = tiny_pair();
        let gold = pair.full_gold();
        assert_eq!(gold.len(), 3);
        let b1 = pair.source.entity_by_name("b1").unwrap();
        let b2 = pair.target.entity_by_name("b2").unwrap();
        let c2 = pair.target.entity_by_name("c2").unwrap();
        assert!(pair.is_correct(&AlignmentPair::new(b1, b2)));
        assert!(!pair.is_correct(&AlignmentPair::new(b1, c2)));
    }

    #[test]
    fn with_seed_replaces_training_data() {
        let pair = tiny_pair();
        let new_seed = AlignmentSet::new();
        let modified = pair.with_seed(new_seed).unwrap();
        assert!(modified.seed.is_empty());
        assert_eq!(modified.reference.len(), 2);
    }

    #[test]
    fn with_removed_triples_shrinks_graphs() {
        let pair = tiny_pair();
        let mut remove_source = HashSet::new();
        remove_source.insert(pair.source.triples()[0]);
        let reduced = pair.with_removed_triples(&remove_source, &HashSet::new());
        assert_eq!(reduced.source.num_triples(), 1);
        assert_eq!(reduced.target.num_triples(), 2);
        assert_eq!(reduced.seed.len(), pair.seed.len());
    }
}
