//! Alignment pairs and alignment sets.
//!
//! An alignment set records which source-KG entities are believed to be the
//! same real-world entity as which target-KG entities. Model predictions,
//! seed (training) alignment, reference (test) alignment and repaired outputs
//! are all [`AlignmentSet`]s.
//!
//! Each source entity has at most one target counterpart (EA inference is a
//! per-source decision), but several source entities may point at the same
//! target entity — that is exactly the *one-to-many conflict* ExEA repairs.

use crate::ids::EntityId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A single alignment decision: `source ≡ target`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AlignmentPair {
    /// Entity in the source KG.
    pub source: EntityId,
    /// Entity in the target KG.
    pub target: EntityId,
}

impl AlignmentPair {
    /// Creates an alignment pair.
    #[inline]
    pub fn new(source: EntityId, target: EntityId) -> Self {
        Self { source, target }
    }
}

impl fmt::Display for AlignmentPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} ≡ {})", self.source, self.target)
    }
}

/// A set of alignment pairs with bidirectional indexes.
///
/// Invariant: each source entity maps to at most one target entity. The
/// reverse direction may be one-to-many (that is a detectable conflict, not a
/// violation).
#[derive(Debug, Clone, Default)]
pub struct AlignmentSet {
    forward: HashMap<EntityId, EntityId>,
    reverse: HashMap<EntityId, Vec<EntityId>>,
}

impl AlignmentSet {
    /// Creates an empty alignment set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a set from an iterator of pairs. Later pairs override earlier
    /// pairs with the same source entity.
    pub fn from_pairs<I: IntoIterator<Item = AlignmentPair>>(pairs: I) -> Self {
        let mut set = Self::new();
        for p in pairs {
            set.insert(p);
        }
        set
    }

    /// Inserts a pair. If the source entity already had a counterpart, the old
    /// pair is removed first and returned.
    pub fn insert(&mut self, pair: AlignmentPair) -> Option<AlignmentPair> {
        let previous = self.remove_source(pair.source);
        self.forward.insert(pair.source, pair.target);
        self.reverse
            .entry(pair.target)
            .or_default()
            .push(pair.source);
        previous
    }

    /// Removes a specific pair. Returns `true` if it was present.
    pub fn remove(&mut self, pair: &AlignmentPair) -> bool {
        match self.forward.get(&pair.source) {
            Some(&t) if t == pair.target => {
                self.remove_source(pair.source);
                true
            }
            _ => false,
        }
    }

    /// Removes whatever pair the given source entity participates in.
    pub fn remove_source(&mut self, source: EntityId) -> Option<AlignmentPair> {
        let target = self.forward.remove(&source)?;
        if let Some(sources) = self.reverse.get_mut(&target) {
            sources.retain(|&s| s != source);
            if sources.is_empty() {
                self.reverse.remove(&target);
            }
        }
        Some(AlignmentPair::new(source, target))
    }

    /// The target counterpart of a source entity, if any.
    #[inline]
    pub fn target_of(&self, source: EntityId) -> Option<EntityId> {
        self.forward.get(&source).copied()
    }

    /// All source entities currently aligned to `target`.
    pub fn sources_of(&self, target: EntityId) -> &[EntityId] {
        self.reverse.get(&target).map_or(&[], Vec::as_slice)
    }

    /// Whether the exact pair is present.
    pub fn contains(&self, pair: &AlignmentPair) -> bool {
        self.forward.get(&pair.source) == Some(&pair.target)
    }

    /// Whether the source entity participates in any pair.
    pub fn contains_source(&self, source: EntityId) -> bool {
        self.forward.contains_key(&source)
    }

    /// Whether the target entity participates in any pair.
    pub fn contains_target(&self, target: EntityId) -> bool {
        self.reverse.contains_key(&target)
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Iterates over pairs in deterministic (source-id) order.
    pub fn iter(&self) -> impl Iterator<Item = AlignmentPair> + '_ {
        let ordered: BTreeMap<EntityId, EntityId> =
            self.forward.iter().map(|(&s, &t)| (s, t)).collect();
        ordered.into_iter().map(|(s, t)| AlignmentPair::new(s, t))
    }

    /// Collects the pairs into a sorted vector.
    pub fn to_vec(&self) -> Vec<AlignmentPair> {
        self.iter().collect()
    }

    /// Source entities in deterministic order.
    pub fn sources(&self) -> Vec<EntityId> {
        let mut v: Vec<_> = self.forward.keys().copied().collect();
        v.sort();
        v
    }

    /// Target entities (deduplicated) in deterministic order.
    pub fn targets(&self) -> Vec<EntityId> {
        let mut v: Vec<_> = self.reverse.keys().copied().collect();
        v.sort();
        v
    }

    /// Returns `true` if no target entity has more than one source entity.
    pub fn is_one_to_one(&self) -> bool {
        self.reverse.values().all(|sources| sources.len() <= 1)
    }

    /// Targets involved in one-to-many conflicts, with their competing source
    /// entities, in deterministic order.
    pub fn one_to_many_conflicts(&self) -> Vec<(EntityId, Vec<EntityId>)> {
        let mut conflicts: Vec<(EntityId, Vec<EntityId>)> = self
            .reverse
            .iter()
            .filter(|(_, sources)| sources.len() > 1)
            .map(|(&t, sources)| {
                let mut s = sources.clone();
                s.sort();
                (t, s)
            })
            .collect();
        conflicts.sort_by_key(|(t, _)| *t);
        conflicts
    }

    /// Fraction of pairs in `self` whose pair also appears in `gold`,
    /// measured over the *sources of `gold`* (the paper's alignment accuracy:
    /// correctly aligned test entities / all test entities).
    pub fn accuracy_against(&self, gold: &AlignmentSet) -> f64 {
        if gold.is_empty() {
            return 0.0;
        }
        let correct = gold.iter().filter(|p| self.contains(p)).count();
        correct as f64 / gold.len() as f64
    }

    /// Merges another alignment set into this one (other's pairs win on
    /// source conflicts).
    pub fn extend_from(&mut self, other: &AlignmentSet) {
        for p in other.iter() {
            self.insert(p);
        }
    }
}

impl FromIterator<AlignmentPair> for AlignmentSet {
    fn from_iter<I: IntoIterator<Item = AlignmentPair>>(iter: I) -> Self {
        Self::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(s: u32, t: u32) -> AlignmentPair {
        AlignmentPair::new(EntityId(s), EntityId(t))
    }

    #[test]
    fn insert_and_lookup() {
        let mut a = AlignmentSet::new();
        assert!(a.is_empty());
        a.insert(pair(1, 10));
        a.insert(pair(2, 20));
        assert_eq!(a.len(), 2);
        assert_eq!(a.target_of(EntityId(1)), Some(EntityId(10)));
        assert_eq!(a.target_of(EntityId(3)), None);
        assert!(a.contains(&pair(1, 10)));
        assert!(!a.contains(&pair(1, 20)));
        assert!(a.contains_source(EntityId(2)));
        assert!(a.contains_target(EntityId(20)));
        assert!(!a.contains_target(EntityId(99)));
    }

    #[test]
    fn insert_replaces_existing_source() {
        let mut a = AlignmentSet::new();
        a.insert(pair(1, 10));
        let prev = a.insert(pair(1, 11));
        assert_eq!(prev, Some(pair(1, 10)));
        assert_eq!(a.len(), 1);
        assert_eq!(a.target_of(EntityId(1)), Some(EntityId(11)));
        assert!(a.sources_of(EntityId(10)).is_empty());
        assert_eq!(a.sources_of(EntityId(11)), &[EntityId(1)]);
    }

    #[test]
    fn remove_specific_pair() {
        let mut a = AlignmentSet::from_pairs([pair(1, 10), pair(2, 20)]);
        assert!(!a.remove(&pair(1, 20))); // wrong target
        assert!(a.remove(&pair(1, 10)));
        assert!(!a.remove(&pair(1, 10)));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn one_to_many_detection() {
        let mut a = AlignmentSet::new();
        a.insert(pair(1, 10));
        a.insert(pair(2, 10));
        a.insert(pair(3, 30));
        assert!(!a.is_one_to_one());
        let conflicts = a.one_to_many_conflicts();
        assert_eq!(conflicts.len(), 1);
        assert_eq!(conflicts[0].0, EntityId(10));
        assert_eq!(conflicts[0].1, vec![EntityId(1), EntityId(2)]);
        a.remove(&pair(2, 10));
        assert!(a.is_one_to_one());
        assert!(a.one_to_many_conflicts().is_empty());
    }

    #[test]
    fn accuracy_is_measured_over_gold() {
        let gold = AlignmentSet::from_pairs([pair(1, 10), pair(2, 20), pair(3, 30), pair(4, 40)]);
        let pred = AlignmentSet::from_pairs([pair(1, 10), pair(2, 21), pair(3, 30), pair(5, 50)]);
        let acc = pred.accuracy_against(&gold);
        assert!((acc - 0.5).abs() < 1e-12);
        assert_eq!(
            AlignmentSet::new().accuracy_against(&AlignmentSet::new()),
            0.0
        );
    }

    #[test]
    fn iter_is_sorted_by_source() {
        let a = AlignmentSet::from_pairs([pair(5, 50), pair(1, 10), pair(3, 30)]);
        let v = a.to_vec();
        assert_eq!(v, vec![pair(1, 10), pair(3, 30), pair(5, 50)]);
        assert_eq!(a.sources(), vec![EntityId(1), EntityId(3), EntityId(5)]);
        assert_eq!(a.targets(), vec![EntityId(10), EntityId(30), EntityId(50)]);
    }

    #[test]
    fn extend_from_overrides_sources() {
        let mut a = AlignmentSet::from_pairs([pair(1, 10), pair(2, 20)]);
        let b = AlignmentSet::from_pairs([pair(2, 21), pair(3, 30)]);
        a.extend_from(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.target_of(EntityId(2)), Some(EntityId(21)));
    }

    #[test]
    fn from_iterator_collect_works() {
        let a: AlignmentSet = [pair(1, 1), pair(2, 2)].into_iter().collect();
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn remove_source_cleans_reverse_index() {
        let mut a = AlignmentSet::from_pairs([pair(1, 10), pair(2, 10)]);
        a.remove_source(EntityId(1));
        assert_eq!(a.sources_of(EntityId(10)), &[EntityId(2)]);
        a.remove_source(EntityId(2));
        assert!(!a.contains_target(EntityId(10)));
        assert_eq!(a.remove_source(EntityId(7)), None);
    }
}
