//! Plain-text table rendering for the benchmark harness.

use std::fmt;

/// A simple column-aligned text table, used to print the same rows the
/// paper's tables report.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with blanks.
    pub fn add_row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        while cells.len() < self.header.len() {
            cells.push(String::new());
        }
        self.rows.push(cells);
    }

    /// Convenience: formats a float with three decimals.
    pub fn num(value: f64) -> String {
        format!("{value:.3}")
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let render_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, c)| {
                    format!(
                        "{:<width$}",
                        c,
                        width = widths.get(i).copied().unwrap_or(c.len())
                    )
                })
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", render_row(&self.header))?;
        writeln!(
            f,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        )?;
        for row in &self.rows {
            writeln!(f, "{}", render_row(row))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_title_header_and_rows() {
        let mut t = Table::new("Table I", &["Model", "Fidelity", "Sparsity"]);
        assert!(t.is_empty());
        t.add_row(vec!["MTransE".into(), Table::num(0.874), Table::num(0.559)]);
        t.add_row(vec!["Dual-AMN".into(), Table::num(0.959)]);
        assert_eq!(t.len(), 2);
        let s = t.to_string();
        assert!(s.contains("== Table I =="));
        assert!(s.contains("MTransE"));
        assert!(s.contains("0.874"));
        assert!(s.contains("Fidelity"));
        // Padded missing cell does not break rendering.
        assert!(s.contains("Dual-AMN"));
    }

    #[test]
    fn num_formats_three_decimals() {
        assert_eq!(Table::num(0.5), "0.500");
        assert_eq!(Table::num(1.0 / 3.0), "0.333");
    }
}
