//! Wall-clock timing helper for the efficiency comparison (Fig. 4).

use std::time::{Duration, Instant};

/// Runs `f` and returns its result together with the elapsed wall-clock time.
pub fn time_it<T, F: FnOnce() -> T>(f: F) -> (T, Duration) {
    let start = Instant::now();
    let result = f();
    (result, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_result_and_nonzero_duration() {
        let (value, elapsed) = time_it(|| {
            let mut acc = 0u64;
            for i in 0..100_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(value > 0);
        assert!(elapsed.as_nanos() > 0);
    }

    #[test]
    fn measures_increasing_workloads_monotonically_enough() {
        // black_box every iteration: a bare `(0..n).sum()` is folded to the
        // closed form in release builds, making both "workloads" take ~0ns
        // and the comparison a coin flip on timer jitter.
        fn spin(iters: u64) -> u64 {
            let mut acc = 0u64;
            for i in 0..iters {
                acc = std::hint::black_box(acc.wrapping_add(i));
            }
            acc
        }
        let (_, short) = time_it(|| spin(1_000));
        let (_, long) = time_it(|| spin(10_000_000));
        assert!(long >= short);
    }
}
