//! Wall-clock timing helper for the efficiency comparison (Fig. 4).

use std::time::{Duration, Instant};

/// Runs `f` and returns its result together with the elapsed wall-clock time.
pub fn time_it<T, F: FnOnce() -> T>(f: F) -> (T, Duration) {
    let start = Instant::now();
    let result = f();
    (result, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_result_and_nonzero_duration() {
        let (value, elapsed) = time_it(|| {
            let mut acc = 0u64;
            for i in 0..100_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(value > 0);
        assert!(elapsed.as_nanos() > 0);
    }

    #[test]
    fn measures_increasing_workloads_monotonically_enough() {
        let (_, short) = time_it(|| std::hint::black_box((0..1_000u64).sum::<u64>()));
        let (_, long) = time_it(|| std::hint::black_box((0..10_000_000u64).sum::<u64>()));
        assert!(long >= short);
    }
}
