//! Evaluation metrics and reporting for EA explanation and repair.
//!
//! * [`fidelity`] — the paper's fidelity/sparsity protocol (§V-B2): sample
//!   correctly-predicted pairs, keep only explanation triples, retrain the
//!   model and measure how many sampled pairs are still predicted correctly.
//! * [`report`] — plain-text table rendering used by the benchmark harness to
//!   print the same rows the paper's tables report.
//! * [`timer`] — tiny wall-clock helper for the Fig. 4 timing comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fidelity;
pub mod report;
pub mod timer;

pub use fidelity::{FidelityOutcome, FidelityProtocol};
pub use report::Table;
pub use timer::time_it;
