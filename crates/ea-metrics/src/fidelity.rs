//! The fidelity / sparsity evaluation protocol (paper §V-B2).
//!
//! 1. Sample `sample_size` pairs that the trained model predicts correctly.
//! 2. Ask the explanation method for an explanation of each sampled pair,
//!    with a per-pair budget (so baselines run at a sparsity comparable to
//!    ExEA's).
//! 3. Delete every candidate triple (within `hops` of the sampled entities)
//!    that no explanation kept, from both graphs.
//! 4. Retrain the model from scratch on the reduced dataset.
//! 5. **Fidelity** is the fraction of sampled pairs the retrained model still
//!    predicts correctly; **sparsity** is `1 - kept / candidates` averaged
//!    over the samples.

use ea_graph::{AlignmentPair, KgPair, Triple};
use ea_models::{EaModel, TrainedAlignment};
use exea_core::Explainer;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;

/// Configuration of the fidelity protocol.
#[derive(Debug, Clone)]
pub struct FidelityProtocol {
    /// How many correctly-predicted pairs to sample (the paper uses 1,000;
    /// smaller synthetic datasets use what is available).
    pub sample_size: usize,
    /// Neighbourhood radius defining the candidate triples.
    pub hops: usize,
    /// RNG seed for the sampling step.
    pub seed: u64,
}

impl Default for FidelityProtocol {
    fn default() -> Self {
        Self {
            sample_size: 200,
            hops: 1,
            seed: 7,
        }
    }
}

/// The result of one fidelity evaluation run.
#[derive(Debug, Clone)]
pub struct FidelityOutcome {
    /// Fraction of sampled pairs still predicted correctly after retraining.
    pub fidelity: f64,
    /// Mean sparsity of the produced explanations.
    pub sparsity: f64,
    /// Number of sampled pairs.
    pub samples: usize,
    /// Total candidate triples across samples (deduplicated).
    pub candidate_triples: usize,
    /// Total kept (explanation) triples across samples (deduplicated).
    pub kept_triples: usize,
}

impl FidelityProtocol {
    /// Samples correctly-predicted reference pairs.
    pub fn sample_correct_pairs(
        &self,
        pair: &KgPair,
        trained: &TrainedAlignment,
    ) -> Vec<AlignmentPair> {
        let predictions = trained.predict(pair);
        let mut correct: Vec<AlignmentPair> = pair
            .reference
            .iter()
            .filter(|p| predictions.contains(p))
            .collect();
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        correct.shuffle(&mut rng);
        correct.truncate(self.sample_size);
        correct
    }

    /// Runs the full protocol for one explanation method.
    ///
    /// `budget_for` supplies the per-pair triple budget handed to the
    /// explainer (pass ExEA's explanation sizes to evaluate baselines at
    /// matched sparsity, or `usize::MAX` for unconstrained methods).
    pub fn evaluate<E, B>(
        &self,
        pair: &KgPair,
        model: &dyn EaModel,
        trained: &TrainedAlignment,
        explainer: &E,
        budget_for: B,
    ) -> FidelityOutcome
    where
        E: Explainer + ?Sized,
        B: Fn(&AlignmentPair) -> usize,
    {
        let samples = self.sample_correct_pairs(pair, trained);
        let mut candidate_source: HashSet<Triple> = HashSet::new();
        let mut candidate_target: HashSet<Triple> = HashSet::new();
        let mut kept_source: HashSet<Triple> = HashSet::new();
        let mut kept_target: HashSet<Triple> = HashSet::new();
        let mut sparsity_sum = 0.0;

        for p in &samples {
            let cand_s = pair.source.triples_within_hops(p.source, self.hops);
            let cand_t = pair.target.triples_within_hops(p.target, self.hops);
            let candidates = cand_s.len() + cand_t.len();
            let explanation = explainer.explain_pair(p.source, p.target, budget_for(p));
            sparsity_sum += explanation.sparsity(candidates);
            candidate_source.extend(cand_s);
            candidate_target.extend(cand_t);
            kept_source.extend(explanation.source_triples.triples());
            kept_target.extend(explanation.target_triples.triples());
        }

        // Delete candidate triples that no explanation kept, then retrain.
        let remove_source: HashSet<Triple> =
            candidate_source.difference(&kept_source).copied().collect();
        let remove_target: HashSet<Triple> =
            candidate_target.difference(&kept_target).copied().collect();
        let reduced = pair.with_removed_triples(&remove_source, &remove_target);
        let retrained = model.train(&reduced);
        let new_predictions = retrained.predict(&reduced);

        let still_correct = samples
            .iter()
            .filter(|p| new_predictions.contains(p))
            .count();
        let fidelity = if samples.is_empty() {
            0.0
        } else {
            still_correct as f64 / samples.len() as f64
        };
        let sparsity = if samples.is_empty() {
            0.0
        } else {
            sparsity_sum / samples.len() as f64
        };

        FidelityOutcome {
            fidelity,
            sparsity,
            samples: samples.len(),
            candidate_triples: candidate_source.len() + candidate_target.len(),
            kept_triples: kept_source.len() + kept_target.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ea_data::datasets::{load, DatasetName, DatasetScale};
    use ea_graph::EntityId;
    use ea_models::{build_model, ModelKind, TrainConfig};
    use exea_core::{ExEa, ExeaConfig, Explanation};

    /// An explainer that keeps every candidate triple: fidelity must be
    /// maximal (nothing is removed).
    struct KeepAll<'a> {
        pair: &'a KgPair,
        hops: usize,
    }

    impl Explainer for KeepAll<'_> {
        fn method_name(&self) -> &str {
            "keep-all"
        }

        fn explain_pair(&self, source: EntityId, target: EntityId, _budget: usize) -> Explanation {
            let mut e = Explanation::empty(source, target);
            for t in self.pair.source.triples_within_hops(source, self.hops) {
                e.source_triples.insert(t);
            }
            for t in self.pair.target.triples_within_hops(target, self.hops) {
                e.target_triples.insert(t);
            }
            e
        }
    }

    /// An explainer that keeps nothing: sparsity is 1 and fidelity should be
    /// clearly lower than keep-all.
    struct KeepNone;

    impl Explainer for KeepNone {
        fn method_name(&self) -> &str {
            "keep-none"
        }

        fn explain_pair(&self, source: EntityId, target: EntityId, _budget: usize) -> Explanation {
            Explanation::empty(source, target)
        }
    }

    fn setup() -> (KgPair, Box<dyn EaModel>, TrainedAlignment) {
        let pair = load(DatasetName::ZhEn, DatasetScale::Small);
        let model = build_model(ModelKind::GcnAlign, TrainConfig::fast());
        let trained = model.train(&pair);
        (pair, model, trained)
    }

    #[test]
    fn sampling_returns_only_correct_pairs() {
        let (pair, _model, trained) = setup();
        let protocol = FidelityProtocol {
            sample_size: 30,
            ..FidelityProtocol::default()
        };
        let samples = protocol.sample_correct_pairs(&pair, &trained);
        assert!(!samples.is_empty());
        assert!(samples.len() <= 30);
        let predictions = trained.predict(&pair);
        for p in &samples {
            assert!(predictions.contains(p));
            assert!(pair.reference.contains(p));
        }
    }

    #[test]
    fn keeping_everything_preserves_fidelity_keeping_nothing_hurts() {
        let (pair, model, trained) = setup();
        let protocol = FidelityProtocol {
            sample_size: 40,
            ..FidelityProtocol::default()
        };
        let keep_all = KeepAll {
            pair: &pair,
            hops: 1,
        };
        let all = protocol.evaluate(&pair, model.as_ref(), &trained, &keep_all, |_| usize::MAX);
        let none = protocol.evaluate(&pair, model.as_ref(), &trained, &KeepNone, |_| 0);
        assert!(all.fidelity >= 0.9, "keep-all fidelity {:.3}", all.fidelity);
        assert!(
            none.fidelity < all.fidelity,
            "keep-none ({:.3}) should be below keep-all ({:.3})",
            none.fidelity,
            all.fidelity
        );
        assert!(all.sparsity.abs() < 1e-9);
        assert!((none.sparsity - 1.0).abs() < 1e-9);
        assert!(none.kept_triples == 0);
        assert!(all.candidate_triples > 0);
        assert_eq!(all.samples, none.samples);
    }

    #[test]
    fn exea_explanations_fidelity_beats_empty_explanations() {
        let (pair, model, trained) = setup();
        let exea = ExEa::new(&pair, &trained, ExeaConfig::default());
        let protocol = FidelityProtocol {
            sample_size: 40,
            ..FidelityProtocol::default()
        };
        let exea_outcome =
            protocol.evaluate(&pair, model.as_ref(), &trained, &exea, |_| usize::MAX);
        let none = protocol.evaluate(&pair, model.as_ref(), &trained, &KeepNone, |_| 0);
        assert!(
            exea_outcome.fidelity > none.fidelity,
            "ExEA fidelity {:.3} should beat empty-explanation fidelity {:.3}",
            exea_outcome.fidelity,
            none.fidelity
        );
        assert!(exea_outcome.sparsity > 0.0 && exea_outcome.sparsity < 1.0);
    }
}
