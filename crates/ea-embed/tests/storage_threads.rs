//! Thread-count determinism of the mapped (out-of-core) candidate store.
//!
//! With `RAYON_NUM_THREADS=8` (the forced-parallel regime the other
//! determinism suites run under) a mapped search must stay bit-identical to
//! the in-memory backend and bit-identical across repeated runs: the shared
//! `MappedStore` is scanned concurrently by every worker, and neither the
//! staging of gathered rows nor the order-preserving block merges may
//! depend on how queries land on workers. Lives in its own integration-test
//! binary so the env var is set before the rayon shim samples it.

use ea_embed::{
    CandidateSearch, CandidateSource, EmbeddingTable, IvfIndex, IvfListStorage, IvfParams,
    MappedIndex, MappedOptions, Sq8Params, StoreBacking,
};
use ea_graph::EntityId;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tables(seed: u64, n_s: usize, n_t: usize, dim: usize) -> (EmbeddingTable, EmbeddingTable) {
    let mut rng = StdRng::seed_from_u64(seed);
    let s = EmbeddingTable::xavier(n_s, dim, &mut rng);
    let t = EmbeddingTable::xavier(n_t, dim, &mut rng);
    (s, t)
}

fn ids(n: usize) -> Vec<EntityId> {
    (0..n as u32).map(EntityId).collect()
}

#[test]
fn mapped_search_matches_in_memory_under_forced_parallelism() {
    std::env::set_var("RAYON_NUM_THREADS", "8");
    // Several row blocks (> the 128-query tile) so the pool genuinely
    // splits the work over the shared mapped store.
    let (q_table, corpus) = tables(51, 300, 400, 16);
    let all_q: Vec<usize> = (0..300).collect();
    let all_c: Vec<usize> = (0..400).collect();
    let queries = q_table.gather_normalized(&all_q);
    let corpus = corpus.gather_normalized(&all_c);

    let params = IvfParams {
        storage: IvfListStorage::Sq8(Sq8Params::default()),
        ..IvfParams::default()
    };
    let index = IvfIndex::build(&corpus, &params);
    let in_memory = index.search(&queries, &corpus, 7, 5);

    let path =
        std::env::temp_dir().join(format!("exea-storage-threads-{}.eacg", std::process::id()));
    index.save(&corpus, &path).expect("save");
    let mapped = MappedIndex::open(&path).expect("open");
    let sq8 = Sq8Params::default();
    let a = mapped.search_ivf(&queries, 7, 5, Some(&sq8));
    let b = mapped.search_ivf(&queries, 7, 5, Some(&sq8));
    drop(mapped);
    let _ = std::fs::remove_file(&path);

    for (q, (want, got)) in in_memory.iter().zip(&a).enumerate() {
        let want: Vec<(u32, u32)> = want.iter().map(|&(i, s)| (i, s.to_bits())).collect();
        let got: Vec<(u32, u32)> = got.iter().map(|&(i, s)| (i, s.to_bits())).collect();
        assert_eq!(want, got, "query {q} diverged from the in-memory backend");
    }
    assert_eq!(a, b, "mapped re-run diverged");
}

#[test]
fn mapped_backing_strategies_are_run_to_run_deterministic_under_forced_parallelism() {
    std::env::set_var("RAYON_NUM_THREADS", "8");
    let (s, t) = tables(53, 260, 340, 12);
    let (sids, tids) = (ids(260), ids(340));
    let mapped = StoreBacking::Mapped(MappedOptions::default());
    for search in [
        CandidateSearch::Sq8(Sq8Params {
            backing: mapped.clone(),
            ..Sq8Params::default()
        }),
        CandidateSearch::Ivf(IvfParams {
            storage: IvfListStorage::Sq8(Sq8Params::default()),
            backing: mapped.clone(),
            ..IvfParams::default()
        }),
    ] {
        let a = search.bidirectional_index(&s, &sids, &t, &tids, 5);
        let b = search.bidirectional_index(&s, &sids, &t, &tids, 5);
        for i in 0..sids.len() {
            let ra: Vec<(EntityId, u32)> = a.candidates(i).map(|(e, v)| (e, v.to_bits())).collect();
            let rb: Vec<(EntityId, u32)> = b.candidates(i).map(|(e, v)| (e, v.to_bits())).collect();
            assert_eq!(ra, rb, "{} re-run diverged on row {i}", search.name());
        }
        for &tid in &tids {
            assert_eq!(
                a.best_source_for_target(tid).map(|(e, v)| (e, v.to_bits())),
                b.best_source_for_target(tid).map(|(e, v)| (e, v.to_bits())),
                "{} reverse head diverged",
                search.name()
            );
        }
    }
}
