//! Property suite pinning the blocked top-k [`CandidateIndex`] engine to the
//! dense [`SimilarityMatrix`] reference: same top-k candidate sets (ids AND
//! bit-identical scores), same greedy alignment, same tie-breaks, for any
//! tile sizes. CSLS re-scoring is pinned cell-by-cell against the dense
//! adjusted values.

use ea_embed::{CandidateIndex, EmbeddingTable, SimilarityMatrix};
use ea_graph::EntityId;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tables(seed: u64, n_s: usize, n_t: usize, dim: usize) -> (EmbeddingTable, EmbeddingTable) {
    let mut rng = StdRng::seed_from_u64(seed);
    let s = EmbeddingTable::xavier(n_s, dim, &mut rng);
    let t = EmbeddingTable::xavier(n_t, dim, &mut rng);
    (s, t)
}

fn ids(n: usize) -> Vec<EntityId> {
    (0..n as u32).map(EntityId).collect()
}

/// Asserts the blocked index reproduces the dense matrix's top-k lists
/// (identical ids, bit-identical scores) and greedy alignment.
fn assert_matches_dense(m: &SimilarityMatrix, index: &CandidateIndex, k: usize) {
    let mut dense_pairs = m.greedy_alignment().to_vec();
    let mut blocked_pairs = index.greedy_alignment().to_vec();
    dense_pairs.sort();
    blocked_pairs.sort();
    assert_eq!(dense_pairs, blocked_pairs, "greedy alignment diverged");
    for (i, &sid) in m.source_ids().iter().enumerate() {
        let dense_top = m.top_k(sid, k);
        let blocked_top: Vec<(EntityId, f32)> = index.candidates(i).collect();
        assert_eq!(dense_top.len(), blocked_top.len(), "row {i} length");
        for (rank, ((dt, ds), (bt, bs))) in dense_top.iter().zip(&blocked_top).enumerate() {
            assert_eq!(dt, bt, "row {i} rank {rank} candidate id diverged");
            assert_eq!(
                ds.to_bits(),
                bs.to_bits(),
                "row {i} rank {rank} score diverged"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Core determinism contract: for random embeddings and any k, the
    /// blocked engine's candidate lists and greedy alignment are identical to
    /// the dense reference, including tie-breaks.
    #[test]
    fn blocked_topk_matches_dense_reference(
        seed in 0u64..10_000,
        n_s in 1usize..28,
        n_t in 1usize..28,
        k in 1usize..9,
        dim in 2usize..9,
    ) {
        let (s, t) = tables(seed, n_s, n_t, dim);
        let (sids, tids) = (ids(n_s), ids(n_t));
        let m = SimilarityMatrix::compute(&s, &sids, &t, &tids);
        let index = CandidateIndex::compute(&s, &sids, &t, &tids, k);
        assert_matches_dense(&m, &index, k);
    }

    /// Tiling is a pure performance knob: any block/tile sizes give
    /// bit-identical results.
    #[test]
    fn tile_sizes_do_not_change_results(
        seed in 0u64..10_000,
        n_s in 1usize..24,
        n_t in 1usize..24,
        k in 1usize..6,
        row_tile in 1usize..9,
        col_tile in 1usize..9,
    ) {
        let (s, t) = tables(seed, n_s, n_t, 6);
        let (sids, tids) = (ids(n_s), ids(n_t));
        let default = CandidateIndex::compute(&s, &sids, &t, &tids, k);
        let tiled =
            CandidateIndex::compute_with_tiles(&s, &sids, &t, &tids, k, true, row_tile, col_tile);
        for i in 0..n_s {
            let a: Vec<(EntityId, u32)> =
                default.candidates(i).map(|(t, s)| (t, s.to_bits())).collect();
            let b: Vec<(EntityId, u32)> =
                tiled.candidates(i).map(|(t, s)| (t, s.to_bits())).collect();
            prop_assert_eq!(a, b, "row {} diverged across tilings", i);
        }
    }

    /// CSLS on the blocked lists is bit-identical to the dense CSLS at every
    /// stored cell, and the surviving order matches the dense ranking
    /// restricted to the stored candidate set (csls_k <= k, the exact
    /// regime).
    #[test]
    fn blocked_csls_matches_dense_cells(
        seed in 0u64..10_000,
        n_s in 1usize..20,
        n_t in 1usize..20,
        k in 1usize..7,
        csls_k in 1usize..7,
    ) {
        prop_assume!(csls_k <= k);
        let (s, t) = tables(seed, n_s, n_t, 6);
        let (sids, tids) = (ids(n_s), ids(n_t));
        let mut m = SimilarityMatrix::compute(&s, &sids, &t, &tids);
        let mut index = CandidateIndex::compute_bidirectional(&s, &sids, &t, &tids, k);
        let raw_candidates: Vec<Vec<EntityId>> = (0..n_s)
            .map(|i| index.candidates(i).map(|(t, _)| t).collect())
            .collect();
        m.apply_csls(csls_k);
        index.apply_csls(csls_k);
        for (i, &sid) in sids.iter().enumerate() {
            // Every adjusted score matches the dense adjusted value.
            for (tid, score) in index.candidates(i) {
                let dense = m.similarity(sid, tid).unwrap();
                prop_assert_eq!(
                    score.to_bits(),
                    dense.to_bits(),
                    "CSLS cell ({}, {}) diverged",
                    sid,
                    tid
                );
            }
            // Row order equals the dense CSLS ranking filtered to the raw
            // top-k candidate set.
            let dense_order: Vec<EntityId> = m
                .top_k(sid, n_t)
                .into_iter()
                .map(|(t, _)| t)
                .filter(|t| raw_candidates[i].contains(t))
                .collect();
            let blocked_order: Vec<EntityId> =
                index.candidates(i).map(|(t, _)| t).collect();
            prop_assert_eq!(blocked_order, dense_order, "row {} CSLS order", i);
        }
    }

    /// k larger than the target list stores the full dense ranking.
    #[test]
    fn oversized_k_equals_full_ranking(
        seed in 0u64..10_000,
        n_s in 1usize..12,
        n_t in 1usize..12,
    ) {
        let (s, t) = tables(seed, n_s, n_t, 5);
        let (sids, tids) = (ids(n_s), ids(n_t));
        let m = SimilarityMatrix::compute(&s, &sids, &t, &tids);
        let index = CandidateIndex::compute(&s, &sids, &t, &tids, n_t + 10);
        for (i, &sid) in sids.iter().enumerate() {
            let full: Vec<EntityId> = (0..n_t).map(|r| m.ranked_target(i, r).unwrap()).collect();
            let blocked: Vec<EntityId> = index.candidates(i).map(|(t, _)| t).collect();
            prop_assert_eq!(blocked, full, "row {} ({}) full ranking", i, sid);
        }
    }

    /// Zero-norm rows (all-zero embeddings) score 0 against everything in
    /// both paths and never produce NaN.
    #[test]
    fn zero_norm_rows_are_safe(seed in 0u64..10_000, n in 1usize..10, k in 1usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = EmbeddingTable::xavier(n, 4, &mut rng);
        let t = EmbeddingTable::xavier(n, 4, &mut rng);
        // Zero out every other source row.
        for i in (0..n).step_by(2) {
            s.row_mut(i).fill(0.0);
        }
        let (sids, tids) = (ids(n), ids(n));
        let m = SimilarityMatrix::compute(&s, &sids, &t, &tids);
        let index = CandidateIndex::compute(&s, &sids, &t, &tids, k);
        assert_matches_dense(&m, &index, k);
        for i in (0..n).step_by(2) {
            for (_, score) in index.candidates(i) {
                prop_assert_eq!(score, 0.0, "zero row {} must score 0", i);
            }
        }
    }
}

#[test]
fn empty_inputs_match_dense() {
    let s = EmbeddingTable::zeros(1, 3);
    let t = EmbeddingTable::zeros(1, 3);
    let m = SimilarityMatrix::compute(&s, &[], &t, &[]);
    let index = CandidateIndex::compute(&s, &[], &t, &[], 4);
    assert!(m.greedy_alignment().is_empty());
    assert!(index.greedy_alignment().is_empty());
    let no_targets = CandidateIndex::compute(&s, &[EntityId(0)], &t, &[], 4);
    assert!(no_targets.greedy_alignment().is_empty());
    assert!(no_targets.top_k(EntityId(0), 4).is_empty());
}
