//! Property suite pinning the streaming container builder to the one-shot
//! save, and the coalesced pread gathers to the mmap backend.
//!
//! Three contracts:
//!
//! 1. **Byte identity** — [`save_ivf_streaming`] / [`save_sq8_streaming`]
//!    produce a container file *byte-identical* (section checksums included)
//!    to the one-shot `IvfIndex::build` + `save` /
//!    `QuantizedTable::build` + `save` on the same input, for every chunk
//!    size, both IVF list storages and both seeding strategies. Every
//!    existing bit-identity pin of the one-shot container therefore carries
//!    over to streamed containers verbatim.
//! 2. **Bounded staging** — the builder's chunk-scaled staging buffers never
//!    exceed an O(chunk · dim) bound, and the peak is *independent of the
//!    corpus row count* at a fixed chunk size (the point of streaming).
//! 3. **Backend bit-identity on streamed containers** — searches through the
//!    mmap'd view and through the coalesced-pread fallback return identical
//!    `(id, score bits)` lists, for IVF-flat, IVF-SQ and whole-corpus SQ8.

use ea_embed::{
    save_ivf_streaming, save_sq8_streaming, EmbeddingTable, IvfIndex, IvfListStorage, IvfParams,
    IvfSeeding, MappedIndex, NormalizedRows, OpenOptions, QuantizedTable, Sq8Params, TableRows,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static UNIQUE: AtomicU64 = AtomicU64::new(0);

/// A collision-free container path under the system temp dir; removed by
/// [`TempFile::drop`] even when an assertion fails.
struct TempFile(PathBuf);

impl TempFile {
    fn new(tag: &str) -> Self {
        TempFile(std::env::temp_dir().join(format!(
            "exea-prop-streaming-{}-{}-{tag}.eacg",
            std::process::id(),
            UNIQUE.fetch_add(1, Ordering::Relaxed)
        )))
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn normalized(seed: u64, rows: usize, dim: usize) -> EmbeddingTable {
    let mut rng = StdRng::seed_from_u64(seed);
    let t = EmbeddingTable::xavier(rows, dim, &mut rng);
    let all: Vec<usize> = (0..rows).collect();
    t.gather_normalized(&all)
}

/// Both read backends: the mmap'd view and forced buffered positional reads
/// (which now sort, coalesce and readahead their gathers).
fn backends() -> [OpenOptions; 2] {
    [
        OpenOptions::default(),
        OpenOptions {
            prefer_mmap: false,
            verify: true,
        },
    ]
}

fn assert_rows_bit_identical(want: &[Vec<(u32, f32)>], got: &[Vec<(u32, f32)>], label: &str) {
    assert_eq!(want.len(), got.len(), "{label}: query count diverged");
    for (q, (w, g)) in want.iter().zip(got).enumerate() {
        let w: Vec<(u32, u32)> = w.iter().map(|&(i, s)| (i, s.to_bits())).collect();
        let g: Vec<(u32, u32)> = g.iter().map(|&(i, s)| (i, s.to_bits())).collect();
        assert_eq!(w, g, "{label}: query {q} diverged");
    }
}

/// The chunk sizes every byte-identity case sweeps: degenerate (1), prime,
/// power-of-two, exactly the corpus, larger than the corpus, and the
/// "choose for me" default (0).
fn chunk_sweep(n: usize) -> [usize; 6] {
    [1, 3, 64, n.max(1), n + 7, 0]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn streaming_ivf_save_is_byte_identical_to_one_shot(
        seed in 0u64..10_000,
        n in 1usize..60,
        nlist in 1usize..10,
        dim in 2usize..8,
        use_sq8 in proptest::bool::ANY,
        kmeanspp in proptest::bool::ANY,
    ) {
        let corpus = normalized(seed, n, dim);
        let params = IvfParams {
            nlist,
            storage: if use_sq8 {
                IvfListStorage::Sq8(Sq8Params::default())
            } else {
                IvfListStorage::Flat
            },
            seeding: if kmeanspp {
                IvfSeeding::KmeansPlusPlus
            } else {
                IvfSeeding::Shuffle
            },
            ..IvfParams::default()
        };
        let one_shot = TempFile::new("ivf-oneshot");
        IvfIndex::build(&corpus, &params)
            .save(&corpus, &one_shot.0)
            .expect("one-shot save");
        let want = std::fs::read(&one_shot.0).expect("read one-shot");

        for chunk in chunk_sweep(n) {
            let streamed = TempFile::new("ivf-streamed");
            let stats = save_ivf_streaming(&TableRows::new(&corpus), &params, &streamed.0, chunk)
                .expect("streaming save");
            prop_assert_eq!(stats.rows, n);
            prop_assert!(stats.passes >= 2, "at least one assign + one section sweep");
            let got = std::fs::read(&streamed.0).expect("read streamed");
            prop_assert!(
                want == got,
                "chunk {} containers diverged ({} vs {} bytes)", chunk, want.len(), got.len()
            );
        }
    }

    #[test]
    fn streaming_sq8_save_is_byte_identical_to_one_shot(
        seed in 0u64..10_000,
        n in 1usize..60,
        dim in 2usize..8,
    ) {
        let corpus = normalized(seed, n, dim);
        let one_shot = TempFile::new("sq8-oneshot");
        QuantizedTable::build(&corpus)
            .save(&corpus, &one_shot.0)
            .expect("one-shot save");
        let want = std::fs::read(&one_shot.0).expect("read one-shot");

        for chunk in chunk_sweep(n) {
            let streamed = TempFile::new("sq8-streamed");
            let stats = save_sq8_streaming(&TableRows::new(&corpus), &streamed.0, chunk)
                .expect("streaming save");
            prop_assert_eq!(stats.rows, n);
            prop_assert_eq!(stats.passes, 3, "grid fit + codes + panel");
            let got = std::fs::read(&streamed.0).expect("read streamed");
            prop_assert!(want == got, "chunk {} containers diverged", chunk);
        }
    }

    #[test]
    fn searches_on_streamed_containers_are_backend_bit_identical(
        seed in 0u64..10_000,
        n_q in 1usize..10,
        n in 1usize..50,
        k in 1usize..8,
        nlist in 1usize..10,
        nprobe in 1usize..10,
        dim in 2usize..8,
        use_sq8 in proptest::bool::ANY,
    ) {
        let corpus = normalized(seed, n, dim);
        let queries = normalized(seed.wrapping_add(1), n_q, dim);
        let params = IvfParams {
            nlist,
            storage: if use_sq8 {
                IvfListStorage::Sq8(Sq8Params::default())
            } else {
                IvfListStorage::Flat
            },
            ..IvfParams::default()
        };
        let in_memory = IvfIndex::build(&corpus, &params).search(&queries, &corpus, k, nprobe);

        let file = TempFile::new("backend");
        save_ivf_streaming(&TableRows::new(&corpus), &params, &file.0, 16)
            .expect("streaming save");
        let sq8 = use_sq8.then(Sq8Params::default);
        for options in backends() {
            let mapped = MappedIndex::open_with(&file.0, &options).expect("open");
            let got = mapped.search_ivf(&queries, k, nprobe, sq8.as_ref());
            assert_rows_bit_identical(&in_memory, &got, mapped.backend());
        }
    }

    #[test]
    fn whole_corpus_sq8_on_streamed_containers_is_backend_bit_identical(
        seed in 0u64..10_000,
        n_q in 1usize..10,
        n in 1usize..50,
        k in 1usize..8,
        rerank_factor in 1usize..6,
        dim in 2usize..8,
    ) {
        let corpus = normalized(seed, n, dim);
        let queries = normalized(seed.wrapping_add(1), n_q, dim);
        let params = Sq8Params { rerank_factor, ..Sq8Params::default() };
        let in_memory = QuantizedTable::build(&corpus).search(&queries, &corpus, k, &params);

        let file = TempFile::new("sq8-backend");
        save_sq8_streaming(&TableRows::new(&corpus), &file.0, 16).expect("streaming save");
        for options in backends() {
            let mapped = MappedIndex::open_with(&file.0, &options).expect("open");
            let got = mapped.search_sq8(&queries, k, &params);
            assert_rows_bit_identical(&in_memory, &got, mapped.backend());
        }
    }

    #[test]
    fn build_streaming_matches_one_shot_build(
        seed in 0u64..10_000,
        n_q in 1usize..10,
        n in 1usize..50,
        k in 1usize..6,
        nlist in 1usize..8,
        nprobe in 1usize..8,
        chunk in 1usize..70,
        kmeanspp in proptest::bool::ANY,
    ) {
        let corpus = normalized(seed, n, 5);
        let queries = normalized(seed.wrapping_add(1), n_q, 5);
        let params = IvfParams {
            nlist,
            seeding: if kmeanspp {
                IvfSeeding::KmeansPlusPlus
            } else {
                IvfSeeding::Shuffle
            },
            ..IvfParams::default()
        };
        let one_shot = IvfIndex::build(&corpus, &params);
        let (streamed, stats) = IvfIndex::build_streaming(&TableRows::new(&corpus), &params, chunk);
        prop_assert_eq!(stats.rows, n);
        prop_assert_eq!(one_shot.nlist(), streamed.nlist());
        for list in 0..one_shot.nlist() {
            prop_assert_eq!(one_shot.list(list), streamed.list(list), "list {} diverged", list);
        }
        assert_rows_bit_identical(
            &one_shot.search(&queries, &corpus, k, nprobe),
            &streamed.search(&queries, &corpus, k, nprobe),
            "build_streaming",
        );
    }

    #[test]
    fn kmeanspp_streaming_saves_are_reproducible(
        seed in 0u64..10_000,
        n in 1usize..50,
        nlist in 1usize..10,
    ) {
        let corpus = normalized(seed, n, 4);
        let params = IvfParams {
            nlist,
            seeding: IvfSeeding::KmeansPlusPlus,
            ..IvfParams::default()
        };
        let a = TempFile::new("kpp-a");
        let b = TempFile::new("kpp-b");
        save_ivf_streaming(&TableRows::new(&corpus), &params, &a.0, 8).expect("save a");
        save_ivf_streaming(&TableRows::new(&corpus), &params, &b.0, 8).expect("save b");
        prop_assert!(
            std::fs::read(&a.0).unwrap() == std::fs::read(&b.0).unwrap(),
            "same seed must reproduce the same container byte for byte"
        );
    }
}

/// The staging-memory contract: at a fixed chunk size the builder's peak
/// chunk-scaled staging is identical for a small and a 4×-larger corpus, and
/// bounded by O(chunk · dim) — row count only grows the O(rows) bookkeeping
/// (assignments, CSR), never the staging buffers.
#[test]
fn peak_staging_is_bounded_by_chunk_not_corpus() {
    let dim = 6;
    let chunk = 8;
    let params = IvfParams {
        nlist: 4,
        storage: IvfListStorage::Sq8(Sq8Params::default()),
        ..IvfParams::default()
    };
    let mut peaks = Vec::new();
    for n in [40usize, 160] {
        let table = normalized(9, n, dim);
        let rows: Vec<usize> = (0..n).collect();
        // NormalizedRows cannot hand out borrows, so every chunk goes
        // through the staging buffers — the honest streaming shape.
        let source = NormalizedRows::new(&table, &rows);
        let file = TempFile::new("staging");
        let stats = save_ivf_streaming(&source, &params, &file.0, chunk).expect("save");
        assert_eq!(stats.rows, n);
        // f32 staging panel + SQ8 code staging + per-chunk k-means scores,
        // all chunk-scaled.
        let bound = chunk * dim * 4 + chunk * dim + chunk * 4;
        assert!(
            stats.peak_staging_bytes > 0 && stats.peak_staging_bytes <= bound,
            "rows {n}: peak {} outside (0, {bound}]",
            stats.peak_staging_bytes
        );
        peaks.push(stats.peak_staging_bytes);
    }
    assert_eq!(
        peaks[0], peaks[1],
        "peak staging must not grow with corpus rows at a fixed chunk"
    );
}

/// Empty corpora stream to the same container the one-shot path writes
/// (no IVF lists beyond the empty CSR, no SQ8 sections).
#[test]
fn empty_corpus_streams_byte_identical() {
    let corpus = EmbeddingTable::zeros(0, 4);
    let params = IvfParams {
        storage: IvfListStorage::Sq8(Sq8Params::default()),
        ..IvfParams::default()
    };
    let one_shot = TempFile::new("empty-oneshot");
    IvfIndex::build(&corpus, &params)
        .save(&corpus, &one_shot.0)
        .expect("one-shot save");
    let streamed = TempFile::new("empty-streamed");
    let stats = save_ivf_streaming(&TableRows::new(&corpus), &params, &streamed.0, 0)
        .expect("streaming save");
    assert_eq!(stats.rows, 0);
    assert_eq!(
        std::fs::read(&one_shot.0).unwrap(),
        std::fs::read(&streamed.0).unwrap()
    );
    let mapped = MappedIndex::open(&streamed.0).expect("open empty");
    assert_eq!(mapped.rows(), 0);
}

/// `NormalizedRows` streams the same bytes `gather_normalized` + `TableRows`
/// would: the chunked per-row normalisation is bit-identical to the
/// materialised gather.
#[test]
fn normalized_rows_match_materialised_gather() {
    let raw = {
        let mut rng = StdRng::seed_from_u64(21);
        EmbeddingTable::xavier(33, 5, &mut rng)
    };
    let rows: Vec<usize> = (0..33).rev().collect();
    let gathered = raw.gather_normalized(&rows);
    let params = IvfParams::default();

    let via_gather = TempFile::new("gathered");
    save_ivf_streaming(&TableRows::new(&gathered), &params, &via_gather.0, 7).expect("save");
    let via_stream = TempFile::new("normstream");
    save_ivf_streaming(&NormalizedRows::new(&raw, &rows), &params, &via_stream.0, 7).expect("save");
    assert_eq!(
        std::fs::read(&via_gather.0).unwrap(),
        std::fs::read(&via_stream.0).unwrap()
    );
}
