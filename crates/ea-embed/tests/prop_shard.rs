//! Property suite pinning the sharded scatter-gather engine to the
//! single-container engines.
//!
//! Three contracts:
//!
//! 1. **Full routing is bit-identical** — with every shard routed and
//!    exhaustive per-shard engines, [`ShardedIndex`] returns bit-identical
//!    `(global row, score bits)` lists to the exact single-container engine,
//!    for any shard count (shard-count invariance), both partitions, flat
//!    and SQ8 list storage, in-memory and mapped backings.
//! 2. **Partial routing is subset-only** — routing fewer shards (or probing
//!    fewer lists per shard) may only *miss* candidates: rows always carry
//!    the full `min(k, n)` entries (shard-level minimum-fill), are
//!    duplicate-free, sorted under the canonical `(score desc, id asc)`
//!    order, and every returned score is the bit-exact dense score of that
//!    (query, row) pair.
//! 3. **Container parity** — [`ShardedIndex::open`] over independently
//!    saved per-shard containers answers bit-identically to
//!    [`ShardedIndex::build`] over the same rows, and open failures name
//!    the offending container file.

use ea_embed::{
    save_ivf_streaming, EmbeddingTable, IvfIndex, IvfListStorage, IvfParams, MappedOptions,
    OpenOptions, ShardParams, ShardPartition, ShardedIndex, Sq8Params, StorageError, StoreBacking,
    TableRows,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static UNIQUE: AtomicU64 = AtomicU64::new(0);

/// A collision-free container path under the system temp dir; removed on
/// drop even when an assertion fails.
struct TempFile(PathBuf);

impl TempFile {
    fn new(tag: &str) -> Self {
        TempFile(std::env::temp_dir().join(format!(
            "exea-prop-shard-{}-{}-{tag}.eacg",
            std::process::id(),
            UNIQUE.fetch_add(1, Ordering::Relaxed)
        )))
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Raw tables normalised exactly once — the same single normalisation every
/// engine input gets, so scores are comparable to the bit.
fn normalized_pair(
    seed: u64,
    n_q: usize,
    n: usize,
    dim: usize,
) -> (EmbeddingTable, EmbeddingTable) {
    let mut rng = StdRng::seed_from_u64(seed);
    let q = EmbeddingTable::xavier(n_q, dim, &mut rng);
    let c = EmbeddingTable::xavier(n, dim, &mut rng);
    let all_q: Vec<usize> = (0..n_q).collect();
    let all_c: Vec<usize> = (0..n).collect();
    (q.gather_normalized(&all_q), c.gather_normalized(&all_c))
}

/// The exact reference ranking: the single-container engine at exhaustive
/// probing (bit-identical to the dense reference, pinned by
/// `prop_ann.rs`), with `k = n` so every row's full ranking is available.
fn full_ranking(queries: &EmbeddingTable, corpus: &EmbeddingTable) -> Vec<Vec<(u32, f32)>> {
    let index = IvfIndex::build(corpus, &IvfParams::exhaustive());
    index.search(queries, corpus, corpus.rows(), usize::MAX)
}

fn assert_bit_identical(a: &[Vec<(u32, f32)>], b: &[Vec<(u32, f32)>], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: query count");
    for (i, (ra, rb)) in a.iter().zip(b).enumerate() {
        let pa: Vec<(u32, u32)> = ra.iter().map(|&(r, s)| (r, s.to_bits())).collect();
        let pb: Vec<(u32, u32)> = rb.iter().map(|&(r, s)| (r, s.to_bits())).collect();
        assert_eq!(pa, pb, "{what}: query {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn full_routing_with_exhaustive_shards_is_bit_identical_for_any_shard_count(
        seed in 0u64..10_000,
        n_q in 1usize..16,
        n in 1usize..48,
        k in 1usize..8,
        nshards in 1usize..6,
        dim in 2usize..8,
        clustered in 0usize..2,
    ) {
        let (queries, corpus) = normalized_pair(seed, n_q, n, dim);
        let exact = IvfIndex::build(&corpus, &IvfParams::exhaustive())
            .search(&queries, &corpus, k, usize::MAX);
        let params = ShardParams {
            nshards,
            partition: if clustered == 1 {
                ShardPartition::Clustered
            } else {
                ShardPartition::Contiguous
            },
            ..ShardParams::exhaustive()
        };
        let sharded = ShardedIndex::build(&corpus, &params);
        prop_assert_eq!(sharded.nshards(), params.resolved_nshards(n));
        let got = sharded.search(&queries, k);
        assert_bit_identical(&got, &exact, "exhaustive sharded vs exact");
        // Explicit full-width routing is the same thing.
        let routed = sharded.search_routed(&queries, k, sharded.nshards());
        assert_bit_identical(&routed, &exact, "search_routed at nshards");
    }

    #[test]
    fn partial_routing_is_subset_only_with_exact_scores(
        seed in 0u64..10_000,
        n_q in 1usize..12,
        n in 1usize..40,
        k in 1usize..8,
        nshards in 1usize..6,
        route in 1usize..6,
        nprobe in 1usize..6,
        dim in 2usize..8,
    ) {
        let (queries, corpus) = normalized_pair(seed, n_q, n, dim);
        let reference = full_ranking(&queries, &corpus);
        let params = ShardParams {
            nshards,
            route_shards: route,
            partition: ShardPartition::Clustered,
            ivf: IvfParams { nprobe, ..IvfParams::default() },
        };
        let sharded = ShardedIndex::build(&corpus, &params);
        let got = sharded.search_routed(&queries, k, route);
        let cap = k.min(n);
        for (i, row) in got.iter().enumerate() {
            // Shard-level minimum-fill: always the full list.
            prop_assert_eq!(row.len(), cap, "query {}", i);
            let mut seen = std::collections::HashSet::new();
            for (rank, &(r, s)) in row.iter().enumerate() {
                prop_assert!(seen.insert(r), "query {} duplicates row {}", i, r);
                // Bit-exact score of that (query, row) pair in the dense
                // full ranking: approximation is subset-only, never
                // re-scoring.
                let dense = reference[i]
                    .iter()
                    .find(|&&(rr, _)| rr == r)
                    .expect("row exists");
                prop_assert_eq!(s.to_bits(), dense.1.to_bits(), "query {} rank {}", i, rank);
                // Canonical order.
                if rank > 0 {
                    let prev = row[rank - 1];
                    prop_assert!(
                        prev.1 > s || (prev.1 == s && prev.0 < r),
                        "query {} not sorted at rank {}",
                        i,
                        rank
                    );
                }
            }
        }
    }

    #[test]
    fn mapped_and_sq8_shards_match_their_in_memory_build(
        seed in 0u64..10_000,
        n_q in 1usize..10,
        n in 1usize..32,
        k in 1usize..6,
        nshards in 1usize..4,
        route in 1usize..4,
        sq8 in 0usize..2,
        dim in 2usize..8,
    ) {
        let (queries, corpus) = normalized_pair(seed, n_q, n, dim);
        let storage = if sq8 == 1 {
            IvfListStorage::Sq8(Sq8Params::default())
        } else {
            IvfListStorage::Flat
        };
        let resident = ShardParams {
            nshards,
            route_shards: route,
            partition: ShardPartition::Clustered,
            ivf: IvfParams { storage: storage.clone(), ..IvfParams::default() },
        };
        let mapped = ShardParams {
            ivf: IvfParams {
                backing: StoreBacking::Mapped(MappedOptions::default()),
                ..resident.ivf.clone()
            },
            ..resident.clone()
        };
        let a = ShardedIndex::build(&corpus, &resident);
        let b = ShardedIndex::build(&corpus, &mapped);
        assert_bit_identical(
            &a.search(&queries, k),
            &b.search(&queries, k),
            "mapped shards vs resident shards",
        );
        // Memory reporting stays truthful across the backings.
        prop_assert_eq!(a.stored_bytes(), 0);
        prop_assert_eq!(a.backend(), "resident");
        prop_assert!(b.stored_bytes() > 0);
        prop_assert!(b.backend() == "mmap" || b.backend() == "pread");
        prop_assert!(a.resident_bytes() > b.resident_bytes());
    }
}

/// [`ShardedIndex::open`] over independently saved contiguous-shard
/// containers answers bit-identically to the equivalent
/// [`ShardedIndex::build`].
#[test]
fn opened_shard_containers_match_the_built_shard_set() {
    let (queries, corpus) = normalized_pair(99, 12, 50, 6);
    let n = corpus.rows();
    let nshards = 3;
    let params = ShardParams {
        nshards,
        partition: ShardPartition::Contiguous,
        ivf: IvfParams {
            backing: StoreBacking::Mapped(MappedOptions::default()),
            ..IvfParams::default()
        },
        ..ShardParams::default()
    };
    let built = ShardedIndex::build(&corpus, &params);

    // Save each contiguous shard independently, as a deployment would.
    let per = n.div_ceil(nshards);
    let files: Vec<TempFile> = (0..nshards)
        .map(|s| {
            let file = TempFile::new(&format!("open-{s}"));
            let rows: Vec<usize> = (s * per..((s + 1) * per).min(n)).collect();
            let raw: Vec<f32> = rows
                .iter()
                .flat_map(|&r| corpus.row(r).iter().copied())
                .collect();
            let mut shard_table = EmbeddingTable::zeros(rows.len(), corpus.dim());
            for (i, chunk) in raw.chunks(corpus.dim()).enumerate() {
                shard_table.row_mut(i).copy_from_slice(chunk);
            }
            save_ivf_streaming(
                &TableRows::new(&shard_table),
                &IvfParams::default(),
                &file.0,
                0,
            )
            .expect("save shard container");
            file
        })
        .collect();

    let paths: Vec<&std::path::Path> = files.iter().map(|f| f.0.as_path()).collect();
    let opened =
        ShardedIndex::open(&paths, &OpenOptions::default(), &params).expect("open shard set");
    assert_eq!(opened.nshards(), nshards);
    assert_eq!(opened.rows(), n);
    for k in [1, 4, 9] {
        assert_bit_identical(
            &opened.search(&queries, k),
            &built.search(&queries, k),
            "opened vs built shard set",
        );
    }
}

/// Shard-set open failures name the offending container file, not just the
/// section inside it.
#[test]
fn shard_open_errors_name_the_offending_container() {
    let (_, corpus) = normalized_pair(7, 1, 20, 4);
    let good = TempFile::new("good");
    save_ivf_streaming(&TableRows::new(&corpus), &IvfParams::default(), &good.0, 0).expect("save");
    let bad = TempFile::new("bad");
    std::fs::write(&bad.0, vec![42u8; 128]).unwrap();

    let paths = [good.0.as_path(), bad.0.as_path()];
    let err = ShardedIndex::open(&paths, &OpenOptions::default(), &ShardParams::default())
        .expect_err("corrupt shard must fail");
    assert!(matches!(err.root(), StorageError::BadMagic));
    assert_eq!(err.path(), Some(bad.0.as_path()));
    assert!(
        err.to_string().contains(&bad.0.display().to_string()),
        "error must name the bad shard file: {err}"
    );
}
