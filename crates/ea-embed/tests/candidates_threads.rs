//! Determinism of the blocked candidate engine under a multi-thread rayon
//! pool: with `RAYON_NUM_THREADS=8` (the same forced-parallel regime the
//! core batch-determinism suite runs under) the engine must return exactly
//! the dense reference's candidate lists, greedy alignment and CSLS scores.
//!
//! This lives in its own integration-test binary so the env var is set
//! before the rayon shim samples it — on a single-core host the default pool
//! would otherwise never actually split work.

use ea_embed::{CandidateIndex, EmbeddingTable, SimilarityMatrix};
use ea_graph::EntityId;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn eight_thread_pool_is_bit_identical_to_dense_reference() {
    // Must run before any rayon use in this process: the shim reads the
    // variable once.
    std::env::set_var("RAYON_NUM_THREADS", "8");

    for seed in 0..6u64 {
        let n_s = 150 + 17 * seed as usize;
        let n_t = 90 + 23 * seed as usize;
        let k = 5;
        let mut rng = StdRng::seed_from_u64(seed);
        let s = EmbeddingTable::xavier(n_s, 16, &mut rng);
        let t = EmbeddingTable::xavier(n_t, 16, &mut rng);
        let sids: Vec<EntityId> = (0..n_s as u32).map(EntityId).collect();
        let tids: Vec<EntityId> = (0..n_t as u32).map(EntityId).collect();

        let m = SimilarityMatrix::compute(&s, &sids, &t, &tids);
        // Small row tiles force many parallel blocks across the 8 workers.
        let index = CandidateIndex::compute_with_tiles(&s, &sids, &t, &tids, k, true, 16, 32);

        let mut dense_pairs = m.greedy_alignment().to_vec();
        let mut blocked_pairs = index.greedy_alignment().to_vec();
        dense_pairs.sort();
        blocked_pairs.sort();
        assert_eq!(dense_pairs, blocked_pairs, "greedy diverged (seed {seed})");

        for (i, &sid) in sids.iter().enumerate() {
            let dense_top = m.top_k(sid, k);
            let blocked_top: Vec<(EntityId, f32)> = index.candidates(i).collect();
            assert_eq!(dense_top.len(), blocked_top.len());
            for ((dt, ds), (bt, bs)) in dense_top.iter().zip(&blocked_top) {
                assert_eq!(dt, bt, "candidate id diverged (seed {seed}, row {i})");
                assert_eq!(
                    ds.to_bits(),
                    bs.to_bits(),
                    "score diverged (seed {seed}, row {i})"
                );
            }
        }

        // Two runs of the parallel engine agree with each other (scheduling
        // independence) ...
        let again = CandidateIndex::compute_with_tiles(&s, &sids, &t, &tids, k, true, 16, 32);
        for i in 0..n_s {
            let a: Vec<(EntityId, u32)> =
                index.candidates(i).map(|(t, s)| (t, s.to_bits())).collect();
            let b: Vec<(EntityId, u32)> =
                again.candidates(i).map(|(t, s)| (t, s.to_bits())).collect();
            assert_eq!(a, b, "parallel reruns diverged (seed {seed}, row {i})");
        }

        // ... and CSLS stays pinned to the dense cells under the pool.
        let mut m_csls = m.clone();
        let mut index_csls = index.clone();
        m_csls.apply_csls(3);
        index_csls.apply_csls(3);
        for (i, &sid) in sids.iter().enumerate() {
            for (tid, score) in index_csls.candidates(i) {
                let dense = m_csls.similarity(sid, tid).unwrap();
                assert_eq!(
                    score.to_bits(),
                    dense.to_bits(),
                    "CSLS diverged under 8 threads (seed {seed})"
                );
            }
        }
    }
}
