//! Property suite pinning the on-disk candidate store to the in-memory
//! engines.
//!
//! Three contracts:
//!
//! 1. **Backend bit-identity** — build in memory → save → load (mmap *and*
//!    forced-pread backends) → search returns bit-identical `(id, score
//!    bits)` lists to the in-memory backend, for IVF-flat, IVF-SQ and the
//!    whole-corpus SQ8 scan, at every probe/re-rank setting tried. The
//!    config-level spill path ([`StoreBacking::Mapped`] inside
//!    [`CandidateSearch`]) is pinned the same way end to end, reverse lists
//!    included.
//! 2. **Corruption rejection** — truncating the container at any point, or
//!    flipping any byte of it, makes `MappedIndex::open` return a typed
//!    [`StorageError`] (never a panic, never a silently-wrong index).
//! 3. **Validated assembly** — `IvfIndex::from_parts` /
//!    `QuantizedTable::from_parts` reject shape and CSR-invariant
//!    violations with errors naming the offending section.

use ea_embed::{
    CandidateSearch, CandidateSource, EmbeddingTable, IvfIndex, IvfListStorage, IvfParams,
    MappedIndex, MappedOptions, OpenOptions, QuantizedTable, Sq8Params, StorageError, StoreBacking,
};
use ea_graph::EntityId;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static UNIQUE: AtomicU64 = AtomicU64::new(0);

/// A collision-free container path under the system temp dir; removed by
/// [`TempFile::drop`] even when an assertion fails.
struct TempFile(PathBuf);

impl TempFile {
    fn new(tag: &str) -> Self {
        TempFile(std::env::temp_dir().join(format!(
            "exea-prop-storage-{}-{}-{tag}.eacg",
            std::process::id(),
            UNIQUE.fetch_add(1, Ordering::Relaxed)
        )))
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn normalized(seed: u64, rows: usize, dim: usize) -> EmbeddingTable {
    let mut rng = StdRng::seed_from_u64(seed);
    let t = EmbeddingTable::xavier(rows, dim, &mut rng);
    let all: Vec<usize> = (0..rows).collect();
    t.gather_normalized(&all)
}

fn ids(n: usize) -> Vec<EntityId> {
    (0..n as u32).map(EntityId).collect()
}

/// Both read backends: the mmap'd view and forced buffered positional reads.
fn backends() -> [OpenOptions; 2] {
    [
        OpenOptions::default(),
        OpenOptions {
            prefer_mmap: false,
            verify: true,
        },
    ]
}

fn assert_rows_bit_identical(want: &[Vec<(u32, f32)>], got: &[Vec<(u32, f32)>], label: &str) {
    assert_eq!(want.len(), got.len(), "{label}: query count diverged");
    for (q, (w, g)) in want.iter().zip(got).enumerate() {
        let w: Vec<(u32, u32)> = w.iter().map(|&(i, s)| (i, s.to_bits())).collect();
        let g: Vec<(u32, u32)> = g.iter().map(|&(i, s)| (i, s.to_bits())).collect();
        assert_eq!(w, g, "{label}: query {q} diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn mapped_ivf_search_is_bit_identical_to_in_memory(
        seed in 0u64..10_000,
        n_q in 1usize..12,
        n in 1usize..50,
        k in 1usize..8,
        nlist in 1usize..10,
        nprobe in 1usize..10,
        dim in 2usize..8,
        use_sq8 in proptest::bool::ANY,
    ) {
        let corpus = normalized(seed, n, dim);
        let queries = normalized(seed.wrapping_add(1), n_q, dim);
        let params = IvfParams {
            nlist,
            storage: if use_sq8 {
                IvfListStorage::Sq8(Sq8Params::default())
            } else {
                IvfListStorage::Flat
            },
            ..IvfParams::default()
        };
        let index = IvfIndex::build(&corpus, &params);
        let in_memory = index.search(&queries, &corpus, k, nprobe);

        let file = TempFile::new("ivf");
        index.save(&corpus, &file.0).expect("save must succeed");
        let sq8 = use_sq8.then(Sq8Params::default);
        for options in backends() {
            let mapped = MappedIndex::open_with(&file.0, &options).expect("open must succeed");
            prop_assert_eq!(mapped.rows(), n);
            prop_assert_eq!(mapped.dim(), dim);
            prop_assert!(mapped.has_ivf());
            prop_assert_eq!(mapped.has_codes(), use_sq8);
            // The panels must not be resident: only centroids + CSR + grid.
            prop_assert!(mapped.resident_bytes() < n * dim * 4 + n * dim + 4096);
            let got = mapped.search_ivf(&queries, k, nprobe, sq8.as_ref());
            assert_rows_bit_identical(&in_memory, &got, mapped.backend());
        }
    }

    #[test]
    fn mapped_sq8_search_is_bit_identical_to_in_memory(
        seed in 0u64..10_000,
        n_q in 1usize..12,
        n in 1usize..50,
        k in 1usize..8,
        rerank_factor in 1usize..6,
        dim in 2usize..8,
    ) {
        let corpus = normalized(seed, n, dim);
        let queries = normalized(seed.wrapping_add(1), n_q, dim);
        let quantized = QuantizedTable::build(&corpus);
        let params = Sq8Params { rerank_factor, ..Sq8Params::default() };
        let in_memory = quantized.search(&queries, &corpus, k, &params);

        let file = TempFile::new("sq8");
        quantized.save(&corpus, &file.0).expect("save must succeed");
        for options in backends() {
            let mapped = MappedIndex::open_with(&file.0, &options).expect("open must succeed");
            prop_assert!(!mapped.has_ivf());
            prop_assert!(mapped.has_codes());
            let got = mapped.search_sq8(&queries, k, &params);
            assert_rows_bit_identical(&in_memory, &got, mapped.backend());
        }
    }

    #[test]
    fn mapped_backing_strategies_match_in_memory_end_to_end(
        seed in 0u64..10_000,
        n_s in 1usize..14,
        n_t in 1usize..20,
        k in 1usize..6,
        engine in 0usize..3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = EmbeddingTable::xavier(n_s, 6, &mut rng);
        let t = EmbeddingTable::xavier(n_t, 6, &mut rng);
        let (sids, tids) = (ids(n_s), ids(n_t));
        let mapped_backing = StoreBacking::Mapped(MappedOptions::default());
        let (resident, mapped) = match engine {
            0 => (
                CandidateSearch::Sq8(Sq8Params::default()),
                CandidateSearch::Sq8(Sq8Params {
                    backing: mapped_backing,
                    ..Sq8Params::default()
                }),
            ),
            1 => (
                CandidateSearch::Ivf(IvfParams::default()),
                CandidateSearch::Ivf(IvfParams {
                    backing: mapped_backing,
                    ..IvfParams::default()
                }),
            ),
            _ => (
                CandidateSearch::Ivf(IvfParams {
                    storage: IvfListStorage::Sq8(Sq8Params::default()),
                    ..IvfParams::default()
                }),
                CandidateSearch::Ivf(IvfParams {
                    storage: IvfListStorage::Sq8(Sq8Params::default()),
                    backing: mapped_backing,
                    ..IvfParams::default()
                }),
            ),
        };
        let a = resident.bidirectional_index(&s, &sids, &t, &tids, k);
        let b = mapped.bidirectional_index(&s, &sids, &t, &tids, k);
        for i in 0..n_s {
            let ra: Vec<(EntityId, u32)> = a.candidates(i).map(|(e, v)| (e, v.to_bits())).collect();
            let rb: Vec<(EntityId, u32)> = b.candidates(i).map(|(e, v)| (e, v.to_bits())).collect();
            prop_assert_eq!(ra, rb, "{}: forward row {} diverged", mapped.name(), i);
        }
        for &tid in &tids {
            prop_assert_eq!(
                a.best_source_for_target(tid).map(|(e, v)| (e, v.to_bits())),
                b.best_source_for_target(tid).map(|(e, v)| (e, v.to_bits())),
                "{}: reverse head for {:?} diverged", mapped.name(), tid
            );
        }
        prop_assert_eq!(
            a.greedy_alignment().to_vec(),
            b.greedy_alignment().to_vec(),
            "{}: greedy alignment diverged", mapped.name()
        );
    }

    #[test]
    fn truncated_containers_are_rejected(
        seed in 0u64..10_000,
        n in 1usize..30,
        cut in 0usize..64,
    ) {
        let corpus = normalized(seed, n, 5);
        let index = IvfIndex::build(
            &corpus,
            &IvfParams {
                storage: IvfListStorage::Sq8(Sq8Params::default()),
                ..IvfParams::default()
            },
        );
        let file = TempFile::new("trunc");
        index.save(&corpus, &file.0).expect("save must succeed");
        let full = std::fs::read(&file.0).expect("read back");
        // Sweep truncation points across the whole file, denser near the
        // ends where header/footer live.
        let len = (full.len() * cut) / 64;
        std::fs::write(&file.0, &full[..len]).expect("write truncated");
        for options in backends() {
            match MappedIndex::open_with(&file.0, &options) {
                Err(_) => {}
                Ok(_) => prop_assert!(
                    false,
                    "truncation to {} of {} bytes must be rejected", len, full.len()
                ),
            }
        }
        // The untouched file still opens.
        std::fs::write(&file.0, &full).expect("restore");
        prop_assert!(MappedIndex::open(&file.0).is_ok());
    }

    #[test]
    fn corrupted_bytes_are_rejected(
        seed in 0u64..10_000,
        n in 1usize..30,
        position in 0usize..97,
    ) {
        let corpus = normalized(seed, n, 5);
        let quantized = QuantizedTable::build(&corpus);
        let file = TempFile::new("flip");
        quantized.save(&corpus, &file.0).expect("save must succeed");
        let mut bytes = std::fs::read(&file.0).expect("read back");
        let at = (bytes.len() - 1) * position / 96;
        bytes[at] ^= 0x40;
        std::fs::write(&file.0, &bytes).expect("write corrupted");
        for options in backends() {
            match MappedIndex::open_with(&file.0, &options) {
                Err(_) => {}
                Ok(_) => prop_assert!(false, "flipped byte {} must be rejected", at),
            }
        }
    }
}

#[test]
fn from_parts_validation_names_the_offending_section() {
    // IVF: offsets that do not ascend from 0 to the row count.
    let centroids = EmbeddingTable::zeros(2, 3);
    let bad = IvfIndex::from_parts(centroids.clone(), vec![0, 3, 2], vec![0, 1, 2], 3);
    match bad {
        Err(StorageError::Corrupt { section, .. }) => assert_eq!(section, "list offsets"),
        other => panic!("expected corrupt list offsets, got {other:?}"),
    }
    // IVF: wrong offset count for the centroid count.
    let bad = IvfIndex::from_parts(centroids.clone(), vec![0, 3], vec![0, 1, 2], 3);
    match bad {
        Err(StorageError::ShapeMismatch { section, .. }) => assert_eq!(section, "list offsets"),
        other => panic!("expected list-offsets shape mismatch, got {other:?}"),
    }
    // IVF: a corpus row filed twice (and another missing).
    let bad = IvfIndex::from_parts(centroids.clone(), vec![0, 2, 3], vec![0, 0, 2], 3);
    match bad {
        Err(StorageError::Corrupt { section, detail }) => {
            assert_eq!(section, "list rows");
            assert!(detail.contains("twice"), "{detail}");
        }
        other => panic!("expected corrupt list rows, got {other:?}"),
    }
    // IVF: row index out of bounds.
    let bad = IvfIndex::from_parts(centroids.clone(), vec![0, 2, 3], vec![0, 1, 9], 3);
    assert!(matches!(
        bad,
        Err(StorageError::Corrupt {
            section: "list rows",
            ..
        })
    ));
    // IVF: row count disagreeing with the corpus.
    let bad = IvfIndex::from_parts(centroids, vec![0, 1, 2], vec![0, 1], 5);
    assert!(matches!(
        bad,
        Err(StorageError::ShapeMismatch {
            section: "list rows",
            ..
        })
    ));
    // A valid assembly round-trips.
    let ok = IvfIndex::from_parts(EmbeddingTable::zeros(2, 3), vec![0, 2, 3], vec![0, 2, 1], 3)
        .expect("valid parts must assemble");
    assert_eq!(ok.nlist(), 2);
    assert_eq!(ok.list(0), &[0, 2]);

    // SQ8: code panel shorter than rows × dim.
    let bad = QuantizedTable::from_parts(4, 3, vec![0; 11], vec![0.0; 3], vec![0.0; 3]);
    assert!(matches!(
        bad,
        Err(StorageError::ShapeMismatch {
            section: "sq8 codes",
            ..
        })
    ));
    // SQ8: grid arms disagreeing with the dimension.
    let bad = QuantizedTable::from_parts(4, 3, vec![0; 12], vec![0.0; 2], vec![0.0; 3]);
    assert!(matches!(
        bad,
        Err(StorageError::ShapeMismatch {
            section: "sq8 grid",
            ..
        })
    ));
    let ok = QuantizedTable::from_parts(4, 3, vec![0; 12], vec![0.0; 3], vec![0.0; 3])
        .expect("valid parts must assemble");
    assert_eq!((ok.rows(), ok.dim()), (4, 3));
}

#[test]
fn missing_sections_are_reported_by_name() {
    // A container with only an f32 panel (legal) has neither IVF nor SQ8
    // search state; sq8 search must be refused by the accessors.
    let corpus = normalized(77, 8, 4);
    let index = IvfIndex::build(&corpus, &IvfParams::default());
    let file = TempFile::new("flat-only");
    index.save(&corpus, &file.0).expect("save");
    let mapped = MappedIndex::open(&file.0).expect("open");
    assert!(mapped.has_ivf());
    assert!(!mapped.has_codes());
    assert!(mapped.stored_bytes() > 0);
}

#[test]
fn open_reports_version_and_magic_errors_with_the_container_path() {
    let file = TempFile::new("magic");
    // Random bytes long enough to parse: bad magic, wrapped with the path
    // of the offending container (the only way to tell shard files apart).
    std::fs::write(&file.0, vec![7u8; 256]).unwrap();
    let err = MappedIndex::open(&file.0).unwrap_err();
    assert!(matches!(err.root(), StorageError::BadMagic));
    assert_eq!(err.path(), Some(file.0.as_path()));
    assert!(
        err.to_string().contains(&file.0.display().to_string()),
        "error must name the container file: {err}"
    );
    // A future version: rejected with the version found.
    let corpus = normalized(3, 4, 3);
    let quantized = QuantizedTable::build(&corpus);
    quantized.save(&corpus, &file.0).unwrap();
    let mut bytes = std::fs::read(&file.0).unwrap();
    bytes[8] = 99; // version field, little-endian low byte
    std::fs::write(&file.0, &bytes).unwrap();
    let err = MappedIndex::open(&file.0).unwrap_err();
    assert!(matches!(err.root(), StorageError::BadVersion { found: 99 }));
    assert_eq!(err.path(), Some(file.0.as_path()));
}
