//! Thread-count determinism of the SQ8 quantized search pipeline.
//!
//! With `RAYON_NUM_THREADS=8` (the forced-parallel regime the other
//! determinism suites run under) the blocked ADC scan + exact re-rank must
//! stay bit-identical to the dense single-threaded reference at exhaustive
//! re-ranking, and bit-identical across repeated runs at partial re-ranking
//! — the quantized selection and the order-preserving block merges may not
//! depend on how queries land on workers. Lives in its own integration-test
//! binary so the env var is set before the rayon shim samples it.

use ea_embed::{
    CandidateSearch, CandidateSource, EmbeddingTable, IvfListStorage, IvfParams, SimilarityMatrix,
    Sq8Params,
};
use ea_graph::EntityId;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tables(seed: u64, n_s: usize, n_t: usize, dim: usize) -> (EmbeddingTable, EmbeddingTable) {
    let mut rng = StdRng::seed_from_u64(seed);
    let s = EmbeddingTable::xavier(n_s, dim, &mut rng);
    let t = EmbeddingTable::xavier(n_t, dim, &mut rng);
    (s, t)
}

fn ids(n: usize) -> Vec<EntityId> {
    (0..n as u32).map(EntityId).collect()
}

#[test]
fn exhaustive_sq8_matches_the_dense_reference_under_forced_parallelism() {
    std::env::set_var("RAYON_NUM_THREADS", "8");
    // Several row blocks (> SQ8_ROW_TILE queries) so the pool genuinely
    // splits the work.
    let (s, t) = tables(41, 300, 180, 24);
    let (sids, tids) = (ids(300), ids(180));
    let m = SimilarityMatrix::compute(&s, &sids, &t, &tids);
    let index =
        CandidateSearch::Sq8(Sq8Params::exhaustive()).bidirectional_index(&s, &sids, &t, &tids, 7);
    for (i, &sid) in sids.iter().enumerate() {
        let dense: Vec<(EntityId, u32)> = m
            .top_k(sid, 7)
            .into_iter()
            .map(|(e, v)| (e, v.to_bits()))
            .collect();
        let got: Vec<(EntityId, u32)> =
            index.candidates(i).map(|(e, v)| (e, v.to_bits())).collect();
        assert_eq!(dense, got, "row {i} diverged from the dense reference");
    }
}

#[test]
fn partial_sq8_is_run_to_run_deterministic_under_forced_parallelism() {
    std::env::set_var("RAYON_NUM_THREADS", "8");
    let (s, t) = tables(43, 260, 400, 16);
    let (sids, tids) = (ids(260), ids(400));
    for search in [
        CandidateSearch::Sq8(Sq8Params::default()),
        CandidateSearch::Ivf(IvfParams {
            storage: IvfListStorage::Sq8(Sq8Params::default()),
            ..IvfParams::default()
        }),
    ] {
        let a = search.bidirectional_index(&s, &sids, &t, &tids, 5);
        let b = search.bidirectional_index(&s, &sids, &t, &tids, 5);
        for i in 0..sids.len() {
            let ra: Vec<(EntityId, u32)> = a.candidates(i).map(|(e, v)| (e, v.to_bits())).collect();
            let rb: Vec<(EntityId, u32)> = b.candidates(i).map(|(e, v)| (e, v.to_bits())).collect();
            assert_eq!(ra, rb, "{} re-run diverged on row {i}", search.name());
        }
        for &tid in &tids {
            assert_eq!(
                a.best_source_for_target(tid).map(|(e, v)| (e, v.to_bits())),
                b.best_source_for_target(tid).map(|(e, v)| (e, v.to_bits())),
                "{} reverse head diverged",
                search.name()
            );
        }
    }
}
