//! Property suite pinning the register-blocked micro-kernel.
//!
//! The kernel's whole value rests on one invariant: for a given
//! `(query, row)` pair, **every** entry point — the per-pair [`kernel::dot`],
//! the explicit register block [`kernel::dot_1xr`], the contiguous-panel
//! [`kernel::scan_block`] and the gathered [`kernel::scan_gather`] — produces
//! the same bits, for every remainder `rows % BLOCK` and every dimension
//! (odd, below one lane, below one block, zero). That is what lets the dense
//! reference, the blocked engine, the IVF pre-filter and the SQ8 re-rank all
//! change summation order *together* and stay bit-identical to each other.
//!
//! A tolerance check against an f64 reference keeps the unrolled kernel
//! honest about being a dot product at all, not just self-consistent.

use ea_embed::kernel;
use proptest::prelude::*;

/// Finite, moderately sized values: enough dynamic range to catch ordering
/// bugs, no infinities that would mask them with NaN propagation.
fn value() -> impl Strategy<Value = f32> {
    (-100i32..=100).prop_map(|v| v as f32 * 0.0173)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `scan_block` == the reference scalar loop (one `dot` per row), bit for
    /// bit, across every block remainder and odd dimension.
    #[test]
    fn scan_block_is_bit_identical_to_the_per_pair_kernel(
        rows in 0usize..13,            // covers every remainder mod BLOCK
        dim in 0usize..23,             // odd dims, sub-lane dims, dim 0
        q_seed in proptest::collection::vec(value(), 0..23),
        data in proptest::collection::vec(value(), 0..300),
    ) {
        let q: Vec<f32> = (0..dim).map(|i| *q_seed.get(i).unwrap_or(&0.37)).collect();
        let panel: Vec<f32> = (0..rows * dim)
            .map(|i| *data.get(i % data.len().max(1)).unwrap_or(&-0.21))
            .collect();
        let mut out = vec![f32::NAN; rows];
        kernel::scan_block(&q, &panel, dim, &mut out);
        for j in 0..rows {
            let row = &panel[j * dim..(j + 1) * dim];
            prop_assert_eq!(
                out[j].to_bits(),
                kernel::dot(&q, row).to_bits(),
                "rows {} dim {} row {}", rows, dim, j
            );
        }
    }

    /// `dot_1xr` == `dot` per lane for every row-count remainder.
    #[test]
    fn dot_1xr_is_bit_identical_to_the_per_pair_kernel(
        rows in 0usize..11,
        dim in 0usize..19,
        flat in proptest::collection::vec(value(), 0..250),
    ) {
        let take = |r: usize, d: usize| *flat.get((r * 31 + d) % flat.len().max(1)).unwrap_or(&0.5);
        let q: Vec<f32> = (0..dim).map(|d| take(997, d)).collect();
        let rows_data: Vec<Vec<f32>> =
            (0..rows).map(|r| (0..dim).map(|d| take(r, d)).collect()).collect();
        let row_refs: Vec<&[f32]> = rows_data.iter().map(|r| r.as_slice()).collect();
        let mut out = vec![f32::NAN; rows];
        kernel::dot_1xr(&q, &row_refs, &mut out);
        for (j, row) in row_refs.iter().enumerate() {
            prop_assert_eq!(out[j].to_bits(), kernel::dot(&q, row).to_bits());
        }
    }

    /// `scan_gather` == `dot` on arbitrary (unsorted, duplicated) row lists.
    #[test]
    fn scan_gather_is_bit_identical_on_arbitrary_index_lists(
        n in 1usize..12,
        dim in 0usize..17,
        picks in proptest::collection::vec(0usize..12, 0..15),
        data in proptest::collection::vec(value(), 0..220),
    ) {
        let take = |i: usize| *data.get(i % data.len().max(1)).unwrap_or(&1.25);
        let table: Vec<f32> = (0..n * dim).map(take).collect();
        let q: Vec<f32> = (0..dim).map(|d| take(d + 7919)).collect();
        let rows: Vec<u32> = picks.iter().map(|&p| (p % n) as u32).collect();
        let mut out = vec![f32::NAN; rows.len()];
        kernel::scan_gather(&q, &table, dim, &rows, &mut out);
        for (i, &row) in rows.iter().enumerate() {
            let r = &table[row as usize * dim..(row as usize + 1) * dim];
            prop_assert_eq!(out[i].to_bits(), kernel::dot(&q, r).to_bits());
        }
    }

    /// The unrolled kernel is still a dot product: within f64-accumulation
    /// tolerance of the mathematically ordered sum.
    #[test]
    fn dot_tracks_the_f64_reference(
        pairs in proptest::collection::vec((value(), value()), 0..64),
    ) {
        let a: Vec<f32> = pairs.iter().map(|&(x, _)| x).collect();
        let b: Vec<f32> = pairs.iter().map(|&(_, y)| y).collect();
        let reference: f64 = a.iter().zip(&b).map(|(&x, &y)| x as f64 * y as f64).sum();
        let got = kernel::dot(&a, &b) as f64;
        let tol = 1e-4 * (1.0 + reference.abs());
        prop_assert!((got - reference).abs() <= tol, "{got} vs {reference}");
    }
}
