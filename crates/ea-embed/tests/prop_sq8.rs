//! Property suite pinning the SQ8 quantized path to the exact references.
//!
//! Mirrors the IVF suite's contracts for the quantized engine:
//!
//! 1. **Round trip** — per-dimension affine quantization reconstructs every
//!    finite entry within half a quantization step.
//! 2. **Exact subset** — every `(id, score)` entry an SQ8 search returns
//!    exists in the dense reference with a bit-identical score; rows always
//!    carry the full `min(k, n)` entries, duplicate-free, in the canonical
//!    `(score desc, column asc)` order. The quantized scan may *miss*
//!    candidates, never re-score them.
//! 3. **Exhaustive re-ranking is exact** — `Sq8Params::exhaustive()` is
//!    bit-identical to the exact blocked engine, forward and reverse lists
//!    included; the same holds for IVF-SQ at exhaustive probing + re-rank.
//! 4. **Determinism** — quantization and search are pure functions of their
//!    inputs: rebuilds and re-runs are identical to the bit.

use ea_embed::{
    order, CandidateIndex, CandidateSearch, CandidateSource, EmbeddingTable, IvfListStorage,
    IvfParams, QuantizedTable, SimilarityMatrix, Sq8Params,
};
use ea_graph::EntityId;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tables(seed: u64, n_s: usize, n_t: usize, dim: usize) -> (EmbeddingTable, EmbeddingTable) {
    let mut rng = StdRng::seed_from_u64(seed);
    let s = EmbeddingTable::xavier(n_s, dim, &mut rng);
    let t = EmbeddingTable::xavier(n_t, dim, &mut rng);
    (s, t)
}

fn ids(n: usize) -> Vec<EntityId> {
    (0..n as u32).map(EntityId).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn quantization_round_trip_is_within_half_a_step(
        seed in 0u64..10_000,
        n in 1usize..40,
        dim in 1usize..16,
    ) {
        let (t, _) = tables(seed, n, 1, dim);
        let all: Vec<usize> = (0..n).collect();
        let norm = t.gather_normalized(&all);
        let qt = QuantizedTable::build(&norm);
        prop_assert_eq!(qt.rows(), n);
        prop_assert_eq!(qt.code_bytes(), n * dim, "codes must be 1 byte per entry");
        let mut decoded = vec![0.0f32; dim];
        for r in 0..n {
            qt.dequantize_row(r, &mut decoded);
            for (d, &dec) in decoded.iter().enumerate() {
                let original = norm.row(r)[d];
                let err = (dec - original).abs();
                // Unit rows have range <= 2, so a step is <= 2/255; half a
                // step plus float slop bounds the reconstruction error.
                prop_assert!(
                    err <= 1.0 / 255.0 + 1e-5,
                    "row {} dim {}: err {}", r, d, err
                );
            }
        }
        // Rebuild determinism.
        let again = QuantizedTable::build(&norm);
        for r in 0..n {
            prop_assert_eq!(qt.code_row(r), again.code_row(r), "rebuild changed row {}", r);
        }
    }

    #[test]
    fn sq8_entries_are_an_exact_subset_of_the_dense_reference(
        seed in 0u64..10_000,
        n_s in 1usize..20,
        n_t in 1usize..40,
        k in 1usize..8,
        rerank_factor in 1usize..6,
        dim in 2usize..8,
    ) {
        let (s, t) = tables(seed, n_s, n_t, dim);
        let (sids, tids) = (ids(n_s), ids(n_t));
        let m = SimilarityMatrix::compute(&s, &sids, &t, &tids);
        let search = CandidateSearch::Sq8(Sq8Params { rerank_factor, ..Sq8Params::default() });
        let index = search.forward_index(&s, &sids, &t, &tids, k);

        for (i, &sid) in sids.iter().enumerate() {
            let entries: Vec<(EntityId, f32)> = index.candidates(i).collect();
            prop_assert_eq!(entries.len(), k.min(n_t), "row {} not filled", i);
            let mut seen = std::collections::HashSet::new();
            for &(e, _) in &entries {
                prop_assert!(seen.insert(e), "row {} has duplicate candidate", i);
            }
            for w in entries.windows(2) {
                prop_assert!(
                    order::desc_f32(w[0].1, w[1].1).then(w[0].0.cmp(&w[1].0)).is_lt(),
                    "row {} not in canonical order", i
                );
            }
            for &(e, score) in &entries {
                let dense = m.similarity(sid, e).expect("candidate must be a real target");
                prop_assert_eq!(
                    score.to_bits(), dense.to_bits(),
                    "row {} candidate {:?} re-scored", i, e
                );
            }
        }
        // Re-running the search is deterministic to the bit.
        let again = search.forward_index(&s, &sids, &t, &tids, k);
        for i in 0..n_s {
            let a: Vec<(EntityId, u32)> =
                index.candidates(i).map(|(e, v)| (e, v.to_bits())).collect();
            let b: Vec<(EntityId, u32)> =
                again.candidates(i).map(|(e, v)| (e, v.to_bits())).collect();
            prop_assert_eq!(a, b, "re-run diverged on row {}", i);
        }
    }

    #[test]
    fn exhaustive_sq8_is_bit_identical_to_the_exact_engine(
        seed in 0u64..10_000,
        n_s in 1usize..18,
        n_t in 1usize..18,
        k in 1usize..6,
        dim in 2usize..6,
    ) {
        let (s, t) = tables(seed, n_s, n_t, dim);
        let (sids, tids) = (ids(n_s), ids(n_t));
        let exact = CandidateIndex::compute_bidirectional(&s, &sids, &t, &tids, k);
        let sq8 = CandidateSearch::Sq8(Sq8Params::exhaustive())
            .bidirectional_index(&s, &sids, &t, &tids, k);

        prop_assert_eq!(exact.greedy_alignment().to_vec(), sq8.greedy_alignment().to_vec());
        for i in 0..n_s {
            let a: Vec<(EntityId, u32)> =
                exact.candidates(i).map(|(e, v)| (e, v.to_bits())).collect();
            let b: Vec<(EntityId, u32)> =
                sq8.candidates(i).map(|(e, v)| (e, v.to_bits())).collect();
            prop_assert_eq!(a, b, "forward row {} diverged", i);
        }
        for &tid in &tids {
            let a = exact.best_source_for_target(tid);
            let b = sq8.best_source_for_target(tid);
            prop_assert_eq!(
                a.map(|(e, v)| (e, v.to_bits())),
                b.map(|(e, v)| (e, v.to_bits())),
                "reverse head for {:?} diverged", tid
            );
        }
    }

    #[test]
    fn exhaustive_ivf_sq8_reproduces_the_exact_engine(
        seed in 0u64..10_000,
        quantizer_seed in 0u64..1_000,
        n_s in 1usize..16,
        n_t in 1usize..16,
        k in 1usize..6,
        nlist in 1usize..10,
        dim in 2usize..6,
    ) {
        let (s, t) = tables(seed, n_s, n_t, dim);
        let (sids, tids) = (ids(n_s), ids(n_t));
        let exact = CandidateIndex::compute(&s, &sids, &t, &tids, k);
        // Exhaustive probing *and* exhaustive re-ranking: every row is
        // gathered and exactly re-scored, so IVF-SQ must equal exact.
        let ivf_sq8 = CandidateSearch::Ivf(IvfParams {
            nlist,
            nprobe: usize::MAX,
            seed: quantizer_seed,
            storage: IvfListStorage::Sq8(Sq8Params::exhaustive()),
            ..IvfParams::default()
        })
        .forward_index(&s, &sids, &t, &tids, k);
        for i in 0..n_s {
            let a: Vec<(EntityId, u32)> =
                exact.candidates(i).map(|(e, v)| (e, v.to_bits())).collect();
            let b: Vec<(EntityId, u32)> =
                ivf_sq8.candidates(i).map(|(e, v)| (e, v.to_bits())).collect();
            prop_assert_eq!(a, b, "forward row {} diverged", i);
        }
    }

    #[test]
    fn partial_ivf_sq8_entries_are_an_exact_subset(
        seed in 0u64..10_000,
        n_s in 1usize..14,
        n_t in 1usize..30,
        k in 1usize..6,
        nlist in 1usize..8,
        nprobe in 1usize..8,
        rerank_factor in 1usize..5,
        dim in 2usize..6,
    ) {
        let (s, t) = tables(seed, n_s, n_t, dim);
        let (sids, tids) = (ids(n_s), ids(n_t));
        let m = SimilarityMatrix::compute(&s, &sids, &t, &tids);
        let index = CandidateSearch::Ivf(IvfParams {
            nlist,
            nprobe,
            storage: IvfListStorage::Sq8(Sq8Params { rerank_factor, ..Sq8Params::default() }),
            ..IvfParams::default()
        })
        .forward_index(&s, &sids, &t, &tids, k);
        for (i, &sid) in sids.iter().enumerate() {
            let entries: Vec<(EntityId, f32)> = index.candidates(i).collect();
            prop_assert_eq!(entries.len(), k.min(n_t), "row {} not filled", i);
            for &(e, score) in &entries {
                let dense = m.similarity(sid, e).expect("candidate must be a real target");
                prop_assert_eq!(score.to_bits(), dense.to_bits(), "row {} re-scored", i);
            }
        }
    }
}

/// Degenerate embeddings: a NaN row (infinite pre-normalisation embedding)
/// must rank last in SQ8 results exactly as it does in the exact engine.
#[test]
fn nan_rows_rank_last_under_sq8() {
    let mut s = EmbeddingTable::zeros(1, 2);
    s.row_mut(0).copy_from_slice(&[1.0, 0.0]);
    let mut t = EmbeddingTable::zeros(3, 2);
    t.row_mut(0).copy_from_slice(&[f32::INFINITY, 1.0]); // NaN after normalisation
    t.row_mut(1).copy_from_slice(&[1.0, 0.1]);
    t.row_mut(2).copy_from_slice(&[0.1, 1.0]);
    let sids = ids(1);
    let tids = ids(3);
    let index =
        CandidateSearch::Sq8(Sq8Params::exhaustive()).forward_index(&s, &sids, &t, &tids, 3);
    let entries: Vec<(EntityId, f32)> = index.candidates(0).collect();
    assert_eq!(entries.len(), 3);
    assert_eq!(entries[2].0, EntityId(0), "NaN target must rank last");
    assert!(entries[2].1.is_nan());
    assert!(!entries[0].1.is_nan() && !entries[1].1.is_nan());
}
