//! Thread, crash and file-lifetime behaviour of the LSM mutable engine.
//!
//! Four pins, all under `RAYON_NUM_THREADS=8` (the forced-parallel regime
//! of the other determinism suites; each test sets the variable before the
//! rayon shim samples it, which is why this suite is its own binary):
//!
//! 1. **Concurrent queries during seal/compact are deterministic** —
//!    readers searching through an `RwLock` (the `exea-serve` access
//!    pattern) while a writer inserts, deletes, seals and compacts observe
//!    bit-identical results per mutation phase, across threads and across
//!    two full runs of the schedule.
//! 2. **A killed seal/compact leaves no partial container behind** — a
//!    failed spill (missing directory) is a typed error, the
//!    pre-compaction segment set keeps answering bit-identically, and the
//!    retry succeeds; a segment file truncated in place panics the
//!    compaction with the documented message instead of returning garbage
//!    (pread backend; under mmap truncation is SIGBUS, see the
//!    `MappedIndex` file-lifetime docs) and creates no output container.
//! 3. **Compaction bytes are thread-count invariant** — the compacted
//!    container built under 8 threads equals byte-for-byte the one built
//!    by a re-executed child process under `RAYON_NUM_THREADS=1`.
//! 4. **Sealed segments outlive their directory entry** — deleting a
//!    mapped segment's file after open changes nothing on the pread
//!    backend (the fd pins the inode), while a fresh open of the deleted
//!    path fails with a typed `StorageError::Io` naming the path — the
//!    regression pin for the container-open file-lifetime contract.

use ea_embed::lsm::{LsmParams, MutableIndex};
use ea_embed::{
    EmbeddingTable, IvfParams, MappedIndex, MappedOptions, OpenOptions, StorageError, StoreBacking,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, RwLock};

static UNIQUE: AtomicU64 = AtomicU64::new(0);

/// A collision-free spill directory under the system temp dir; removed on
/// drop even when an assertion fails.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "exea-lsm-threads-{}-{}-{tag}",
            std::process::id(),
            UNIQUE.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create spill dir");
        TempDir(dir)
    }

    fn files(&self) -> Vec<PathBuf> {
        let mut out: Vec<PathBuf> = std::fs::read_dir(&self.0)
            .map(|it| it.filter_map(|e| e.ok().map(|e| e.path())).collect())
            .unwrap_or_default();
        out.sort();
        out
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn force_eight_threads() {
    // Must run before any rayon use in this process: the shim reads the
    // variable once.
    std::env::set_var("RAYON_NUM_THREADS", "8");
}

/// Mapped, pread-backed params: the backend whose file-lifetime semantics
/// (fd pins the inode) these tests pin. `EXEA_MAPPED_BACKEND=mmap` in the
/// environment overrides this — callers that must not run on mmap check
/// [`mmap_forced`].
fn pread_params(seal_rows: usize, dir: &Path) -> LsmParams {
    LsmParams {
        seal_rows,
        ivf: IvfParams {
            backing: StoreBacking::Mapped(MappedOptions {
                dir: Some(dir.to_path_buf()),
                prefer_mmap: false,
            }),
            ..IvfParams::exhaustive()
        },
    }
}

fn mmap_forced() -> bool {
    ea_embed::mapped_backend_from_env() == Ok(Some(true))
}

fn raw_row(seed: u64, step: usize, dim: usize) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed ^ (step as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (0..dim).map(|_| rng.gen_range(-1.0f32..=1.0)).collect()
}

fn normalized_queries(seed: u64, n_q: usize, dim: usize) -> EmbeddingTable {
    let mut rng = StdRng::seed_from_u64(seed);
    let q = EmbeddingTable::xavier(n_q, dim, &mut rng);
    let all: Vec<usize> = (0..n_q).collect();
    q.gather_normalized(&all)
}

fn bits(list: &[ea_embed::topk::Ranked]) -> Vec<(u32, u32)> {
    list.iter().map(|r| (r.index, r.score.to_bits())).collect()
}

/// One deterministic mutation schedule: what the writer does in phase `p`.
fn mutate(index: &mut MutableIndex, p: usize, seed: u64, dim: usize) {
    match p % 5 {
        0 | 1 => {
            for i in 0..12 {
                index
                    .insert((p * 100 + i) as u32, &raw_row(seed, p * 1000 + i, dim))
                    .expect("insert");
            }
        }
        2 => {
            for i in 0..6 {
                index.remove(((p - 1) * 100 + i) as u32);
            }
        }
        3 => index.seal().expect("seal"),
        _ => index.compact().expect("compact"),
    }
}

/// Pin 1: readers through an `RwLock` during a seal/compact schedule see
/// bit-identical per-phase results, across reader threads and across two
/// full runs.
#[test]
fn eight_thread_queries_during_seal_and_compact_are_bit_identical_run_to_run() {
    force_eight_threads();
    const READERS: usize = 4;
    const PHASES: usize = 15;
    let seed = 71u64;
    let dim = 10usize;
    let queries = normalized_queries(seed ^ 0xBEEF, 6, dim);

    let run = || -> Vec<Vec<Vec<(u32, u32)>>> {
        let dir = TempDir::new("rwlock");
        let shared = RwLock::new(MutableIndex::new(dim, pread_params(8, &dir.0)));
        // Two barriers per phase: writer mutates, everyone searches the
        // settled state concurrently, repeat. Reads overlap each other (and
        // the 8-thread rayon pool inside each search); the lock orders
        // reads against the mutation, exactly like the serve engine.
        let start = Barrier::new(READERS + 1);
        let done = Barrier::new(READERS + 1);
        let mut per_reader: Vec<Vec<Vec<(u32, u32)>>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..READERS {
                handles.push(scope.spawn(|| {
                    let mut observed = Vec::with_capacity(PHASES);
                    for _ in 0..PHASES {
                        start.wait();
                        let guard = shared.read().expect("read lock");
                        observed.push(bits(&guard.search(&queries, 5)));
                        drop(guard);
                        done.wait();
                    }
                    observed
                }));
            }
            for p in 0..PHASES {
                {
                    let mut guard = shared.write().expect("write lock");
                    mutate(&mut guard, p, seed, dim);
                }
                start.wait();
                done.wait();
            }
            for h in handles {
                per_reader.push(h.join().expect("reader thread"));
            }
        });
        per_reader
    };

    let first = run();
    for (r, observed) in first.iter().enumerate().skip(1) {
        assert_eq!(observed, &first[0], "reader {r} diverged within the run");
    }
    let second = run();
    assert_eq!(second[0], first[0], "schedule diverged across runs");
}

/// Pin 2a: a seal/compact whose spill fails is a typed error that leaves
/// the pre-failure segment set answering bit-identically, with no partial
/// container anywhere; the retry succeeds. Also the live half of the
/// file-lifetime regression: the sealed segments' files are *deleted* under
/// the index (pread fd pins the inode) and every byte still answers.
#[test]
fn failed_compaction_is_typed_and_leaves_the_segment_set_intact() {
    force_eight_threads();
    if mmap_forced() {
        // Unlinked-file reads are also safe under mmap, but this test's
        // point is the pread fd contract; the mmap run covers nothing new.
        return;
    }
    let seed = 91u64;
    let dim = 8usize;
    let dir = TempDir::new("failed-compact");
    let queries = normalized_queries(seed ^ 0xF00D, 5, dim);
    let mut index = MutableIndex::new(dim, pread_params(10, &dir.0));
    for i in 0..47 {
        index
            .insert(i, &raw_row(seed, i as usize, dim))
            .expect("insert");
    }
    for i in 0..9 {
        index.remove(i * 5);
    }
    index.seal().expect("seal tail");
    assert!(index.segments() >= 2);
    let before = bits(&index.search(&queries, 6));

    // Kill the spill target: every segment file disappears with the
    // directory, yet the open fds keep each sealed segment fully readable.
    std::fs::remove_dir_all(&dir.0).expect("remove spill dir");
    let err = index
        .compact()
        .expect_err("compact must fail without a spill dir");
    assert!(
        matches!(err.root(), StorageError::Io(_)),
        "want a typed I/O error, got {err}"
    );
    // Unchanged: same segments, same answers, bit for bit — served from
    // unlinked inodes.
    assert!(index.segments() >= 2);
    assert_eq!(
        bits(&index.search(&queries, 6)),
        before,
        "post-failure answers"
    );

    // The retry succeeds once the directory is back, and the directory
    // afterwards holds exactly the compacted container — no partials.
    std::fs::create_dir_all(&dir.0).expect("recreate spill dir");
    index.compact().expect("retry compact");
    assert_eq!(index.segments(), 1);
    assert_eq!(
        bits(&index.search(&queries, 6)),
        before,
        "post-compaction answers"
    );
    assert_eq!(dir.files().len(), 1, "exactly the compacted container");
    assert_eq!(dir.files()[0], index.segment_paths()[0]);
}

/// Pin 2b: a compaction killed mid-read (segment file truncated in place —
/// the pread half of the documented file-lifetime caveat) panics with the
/// documented message instead of returning garbage, and leaves no output
/// container behind.
#[test]
fn killed_compaction_read_panics_cleanly_and_writes_nothing() {
    force_eight_threads();
    if mmap_forced() {
        // In-place truncation under mmap is SIGBUS (uncatchable): the
        // documented caveat, not something a test can survive.
        return;
    }
    let seed = 17u64;
    let dim = 6usize;
    let dir = TempDir::new("killed-compact");
    let mut index = MutableIndex::new(dim, pread_params(usize::MAX, &dir.0));
    for i in 0..30 {
        index
            .insert(i, &raw_row(seed, i as usize, dim))
            .expect("insert");
    }
    index.seal().expect("seal");
    let segment_file = index.segment_paths()[0].to_path_buf();
    let files_before = dir.files();

    // Truncate the sealed container under the live index: the next
    // compaction read runs off the end of the inode.
    let full = std::fs::metadata(&segment_file).expect("stat").len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&segment_file)
        .expect("reopen for truncation")
        .set_len(full / 3)
        .expect("truncate");

    let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| index.compact()))
        .expect_err("truncated segment must kill the compaction");
    let message = panic.downcast_ref::<String>().cloned().unwrap_or_else(|| {
        panic
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .unwrap_or_default()
    });
    assert!(
        message.contains("container read failed mid-compaction"),
        "want the documented panic, got: {message}"
    );
    // No partial compaction output: the directory holds exactly the files
    // it held before the kill.
    assert_eq!(
        dir.files(),
        files_before,
        "no partial container left behind"
    );
    // The poisoned index is torn down without further reads.
    drop(index);
}

/// Pin 4 (other half): a *fresh* open of a deleted container path is a
/// typed `StorageError::Io` naming the path — never UB or garbage.
#[test]
fn reopening_a_deleted_segment_path_is_a_typed_error() {
    force_eight_threads();
    let seed = 3u64;
    let dim = 6usize;
    let dir = TempDir::new("reopen");
    let mut index = MutableIndex::new(dim, pread_params(usize::MAX, &dir.0));
    for i in 0..20 {
        index
            .insert(i, &raw_row(seed, i as usize, dim))
            .expect("insert");
    }
    index.seal().expect("seal");
    let path = index.segment_paths()[0].to_path_buf();
    std::fs::remove_file(&path).expect("unlink segment");

    let err = MappedIndex::open_with(&path, &OpenOptions::default())
        .expect_err("open of a deleted path must fail");
    assert!(matches!(err.root(), StorageError::Io(_)), "got {err}");
    assert_eq!(err.path(), Some(path.as_path()), "error must name the path");

    // The index that held the fd never noticed.
    let queries = normalized_queries(seed, 3, dim);
    assert_eq!(index.search(&queries, 4).len(), 3 * 4);
}

/// Name of the env var the subprocess helper communicates through.
const DUMP_ENV: &str = "EXEA_LSM_DUMP_PATH";

/// Deterministic fixture shared by the thread-count invariance pair.
fn build_and_compact(dir: &Path) -> Vec<u8> {
    let seed = 2024u64;
    let dim = 12usize;
    let mut index = MutableIndex::new(dim, pread_params(16, dir));
    for i in 0..120 {
        index
            .insert(i, &raw_row(seed, i as usize, dim))
            .expect("insert");
    }
    for i in 0..25 {
        index.remove(i * 4);
    }
    index.seal().expect("seal");
    index.compact().expect("compact");
    std::fs::read(index.segment_paths()[0]).expect("read compacted container")
}

/// Subprocess helper for pin 3: inert unless [`DUMP_ENV`] is set (the
/// parent re-executes this test binary with it pointing at a scratch file
/// and `RAYON_NUM_THREADS=1`).
#[test]
fn helper_dump_compacted_container() {
    let Ok(out) = std::env::var(DUMP_ENV) else {
        return;
    };
    let dir = TempDir::new("dump-child");
    std::fs::write(&out, build_and_compact(&dir.0)).expect("write dump");
}

/// Pin 3: the compacted container built under 8 rayon threads is
/// byte-identical (checksums included) to one built by a child process
/// running the identical schedule under `RAYON_NUM_THREADS=1`.
#[test]
fn compaction_bytes_are_thread_count_invariant() {
    force_eight_threads();
    let dir = TempDir::new("dump-parent");
    let eight = build_and_compact(&dir.0);

    let dump = dir.0.join("single-thread.bin");
    let status = std::process::Command::new(std::env::current_exe().expect("current exe"))
        .args(["--exact", "helper_dump_compacted_container", "--nocapture"])
        .env("RAYON_NUM_THREADS", "1")
        .env(DUMP_ENV, &dump)
        .status()
        .expect("spawn single-thread child");
    assert!(status.success(), "child failed: {status}");
    let one = std::fs::read(&dump).expect("read child dump");
    assert_eq!(eight.len(), one.len(), "container length");
    assert!(
        eight == one,
        "compacted container must not depend on the thread count"
    );
}
