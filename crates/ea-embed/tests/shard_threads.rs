//! Thread-count determinism of the sharded scatter-gather engine.
//!
//! With `RAYON_NUM_THREADS=8` (the forced-parallel regime the other
//! determinism suites run under) the full shard pipeline — clustered
//! partitioning, per-shard engine builds, routing, scatter and gather-merge
//! — must stay bit-identical to the dense single-threaded reference at
//! exhaustive settings, and run-to-run deterministic at partial routing.
//! The dense reference never touches the rayon pool, so this is the
//! strongest cross-thread-count pin we can express in-process.
//!
//! Lives in its own integration-test binary so the env var is set before
//! the rayon shim samples it.

use ea_embed::{
    CandidateSearch, CandidateSource, EmbeddingTable, MappedOptions, ShardParams, ShardPartition,
    ShardedIndex, SimilarityMatrix, StoreBacking,
};
use ea_graph::EntityId;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn eight_thread_exhaustive_sharded_matches_dense_reference() {
    // Must run before any rayon use in this process: the shim reads the
    // variable once.
    std::env::set_var("RAYON_NUM_THREADS", "8");

    for seed in 0..3u64 {
        let n_s = 110 + 17 * seed as usize;
        let n_t = 160 + 23 * seed as usize;
        let k = 5;
        let mut rng = StdRng::seed_from_u64(300 + seed);
        let s = EmbeddingTable::xavier(n_s, 14, &mut rng);
        let t = EmbeddingTable::xavier(n_t, 14, &mut rng);
        let sids: Vec<EntityId> = (0..n_s as u32).map(EntityId).collect();
        let tids: Vec<EntityId> = (0..n_t as u32).map(EntityId).collect();

        let m = SimilarityMatrix::compute(&s, &sids, &t, &tids);
        let search = CandidateSearch::Sharded(ShardParams {
            nshards: 4,
            ..ShardParams::exhaustive()
        });
        let index = search.bidirectional_index(&s, &sids, &t, &tids, k);

        for (i, &sid) in sids.iter().enumerate() {
            let dense_top = m.top_k(sid, k);
            let sharded_top: Vec<(EntityId, f32)> = index.candidates(i).collect();
            assert_eq!(dense_top.len(), sharded_top.len());
            for ((dt, ds), (bt, bs)) in dense_top.iter().zip(&sharded_top) {
                assert_eq!(dt, bt, "candidate diverged (seed {seed}, row {i})");
                assert_eq!(
                    ds.to_bits(),
                    bs.to_bits(),
                    "score diverged (seed {seed}, row {i})"
                );
            }
        }
        let mut dense_pairs = m.greedy_alignment().to_vec();
        let mut sharded_pairs = index.greedy_alignment().to_vec();
        dense_pairs.sort();
        sharded_pairs.sort();
        assert_eq!(dense_pairs, sharded_pairs, "greedy diverged (seed {seed})");
    }
}

#[test]
fn eight_thread_partial_routing_is_run_to_run_deterministic() {
    std::env::set_var("RAYON_NUM_THREADS", "8");

    let mut rng = StdRng::seed_from_u64(11);
    let raw_q = EmbeddingTable::xavier(180, 12, &mut rng);
    let raw_c = EmbeddingTable::xavier(320, 12, &mut rng);
    let all_q: Vec<usize> = (0..180).collect();
    let all_c: Vec<usize> = (0..320).collect();
    let queries = raw_q.gather_normalized(&all_q);
    let corpus = raw_c.gather_normalized(&all_c);

    let params = ShardParams {
        nshards: 5,
        route_shards: 2,
        partition: ShardPartition::Clustered,
        ..ShardParams::default()
    };
    // Same pool, same inputs: a second search *and* a full rebuild must
    // reproduce every id and score bit.
    let index = ShardedIndex::build(&corpus, &params);
    let a = index.search(&queries, 6);
    let b = index.search(&queries, 6);
    let rebuilt = ShardedIndex::build(&corpus, &params);
    let c = rebuilt.search(&queries, 6);
    for i in 0..queries.rows() {
        let pa: Vec<(u32, u32)> = a[i].iter().map(|&(r, s)| (r, s.to_bits())).collect();
        let pb: Vec<(u32, u32)> = b[i].iter().map(|&(r, s)| (r, s.to_bits())).collect();
        let pc: Vec<(u32, u32)> = c[i].iter().map(|&(r, s)| (r, s.to_bits())).collect();
        assert_eq!(pa, pb, "row {i} diverged between searches");
        assert_eq!(pa, pc, "row {i} diverged after rebuild");
    }
}

#[test]
fn eight_thread_mapped_shards_match_resident_shards() {
    std::env::set_var("RAYON_NUM_THREADS", "8");

    let mut rng = StdRng::seed_from_u64(23);
    let raw_q = EmbeddingTable::xavier(90, 10, &mut rng);
    let raw_c = EmbeddingTable::xavier(260, 10, &mut rng);
    let all_q: Vec<usize> = (0..90).collect();
    let all_c: Vec<usize> = (0..260).collect();
    let queries = raw_q.gather_normalized(&all_q);
    let corpus = raw_c.gather_normalized(&all_c);

    let resident = ShardParams {
        nshards: 3,
        route_shards: 2,
        ..ShardParams::default()
    };
    let mapped = ShardParams {
        ivf: ea_embed::IvfParams {
            backing: StoreBacking::Mapped(MappedOptions::default()),
            ..resident.ivf.clone()
        },
        ..resident.clone()
    };
    let a = ShardedIndex::build(&corpus, &resident).search(&queries, 7);
    let b = ShardedIndex::build(&corpus, &mapped).search(&queries, 7);
    for i in 0..queries.rows() {
        let pa: Vec<(u32, u32)> = a[i].iter().map(|&(r, s)| (r, s.to_bits())).collect();
        let pb: Vec<(u32, u32)> = b[i].iter().map(|&(r, s)| (r, s.to_bits())).collect();
        assert_eq!(pa, pb, "row {i} diverged between backings under 8 threads");
    }
}
