//! Thread-count determinism of the IVF quantizer and search pipeline.
//!
//! With `RAYON_NUM_THREADS=8` (the forced-parallel regime the other
//! determinism suites run under) the k-means quantizer must produce exactly
//! the centroids and inverted lists of a sequential reference implementation,
//! and the full IVF candidate pipeline must stay bit-identical to the dense
//! single-threaded reference. This is the strongest cross-thread-count pin we
//! can express in-process: the references never touch the rayon pool.
//!
//! Lives in its own integration-test binary so the env var is set before the
//! rayon shim samples it.

use ea_embed::{
    vector, CandidateSearch, CandidateSource, EmbeddingTable, IvfIndex, IvfParams, SimilarityMatrix,
};
use ea_graph::EntityId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Sequential mirror of `IvfIndex::build`'s spherical k-means: same seeded
/// shuffle initialisation, same assignment rule (ties to the lowest centroid,
/// strict-greater updates), same ascending-row accumulation order, same
/// convergence check — with no parallelism anywhere.
fn reference_kmeans(
    corpus: &EmbeddingTable,
    nlist: usize,
    seed: u64,
    iters: usize,
) -> (Vec<Vec<f32>>, Vec<u32>) {
    let n = corpus.rows();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.shuffle(&mut rng);
    let mut centroids: Vec<Vec<f32>> = perm[..nlist]
        .iter()
        .map(|&r| corpus.row(r as usize).to_vec())
        .collect();
    let assign = |centroids: &[Vec<f32>]| -> Vec<u32> {
        (0..n)
            .map(|row| {
                let v = corpus.row(row);
                let mut best = 0u32;
                let mut best_score = vector::cosine_prenormalized(v, &centroids[0]);
                for (c, centroid) in centroids.iter().enumerate().skip(1) {
                    let score = vector::cosine_prenormalized(v, centroid);
                    if score > best_score {
                        best = c as u32;
                        best_score = score;
                    }
                }
                best
            })
            .collect()
    };
    let mut assignments = assign(&centroids);
    for _ in 0..iters {
        let mut sums = vec![vec![0.0f32; corpus.dim()]; nlist];
        let mut counts = vec![0usize; nlist];
        for (row, &c) in assignments.iter().enumerate() {
            for (acc, &v) in sums[c as usize].iter_mut().zip(corpus.row(row)) {
                *acc += v;
            }
            counts[c as usize] += 1;
        }
        for c in 0..nlist {
            if counts[c] == 0 {
                continue;
            }
            vector::normalize(&mut sums[c]);
            centroids[c] = sums[c].clone();
        }
        let next = assign(&centroids);
        let converged = next == assignments;
        assignments = next;
        if converged {
            break;
        }
    }
    (centroids, assignments)
}

#[test]
fn eight_thread_quantizer_matches_sequential_reference() {
    // Must run before any rayon use in this process: the shim reads the
    // variable once.
    std::env::set_var("RAYON_NUM_THREADS", "8");

    for seed in 0..4u64 {
        let n = 300 + 41 * seed as usize;
        let nlist = 9 + seed as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let raw = EmbeddingTable::xavier(n, 12, &mut rng);
        let all: Vec<usize> = (0..n).collect();
        let corpus = raw.gather_normalized(&all);
        let params = IvfParams {
            nlist,
            ..IvfParams::default()
        };

        let index = IvfIndex::build(&corpus, &params);
        let (ref_centroids, ref_assignments) =
            reference_kmeans(&corpus, nlist, params.seed, params.kmeans_iters);

        assert_eq!(index.nlist(), nlist);
        for (c, ref_centroid) in ref_centroids.iter().enumerate() {
            let got: Vec<u32> = index.centroid(c).iter().map(|v| v.to_bits()).collect();
            let want: Vec<u32> = ref_centroid.iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                got, want,
                "centroid {c} diverged under 8 threads (seed {seed})"
            );
            let want_list: Vec<u32> = (0..n as u32)
                .filter(|&row| ref_assignments[row as usize] == c as u32)
                .collect();
            assert_eq!(
                index.list(c),
                &want_list[..],
                "inverted list {c} diverged under 8 threads (seed {seed})"
            );
        }

        // Scheduling independence: a rebuild in the same multi-thread pool is
        // identical too.
        let again = IvfIndex::build(&corpus, &params);
        for c in 0..nlist {
            assert_eq!(index.list(c), again.list(c));
            assert_eq!(index.centroid(c), again.centroid(c));
        }
    }
}

#[test]
fn eight_thread_exhaustive_ivf_matches_dense_reference() {
    std::env::set_var("RAYON_NUM_THREADS", "8");

    for seed in 0..3u64 {
        let n_s = 120 + 13 * seed as usize;
        let n_t = 170 + 29 * seed as usize;
        let k = 5;
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let s = EmbeddingTable::xavier(n_s, 16, &mut rng);
        let t = EmbeddingTable::xavier(n_t, 16, &mut rng);
        let sids: Vec<EntityId> = (0..n_s as u32).map(EntityId).collect();
        let tids: Vec<EntityId> = (0..n_t as u32).map(EntityId).collect();

        let m = SimilarityMatrix::compute(&s, &sids, &t, &tids);
        let search = CandidateSearch::Ivf(IvfParams {
            nlist: 11,
            nprobe: usize::MAX,
            ..IvfParams::default()
        });
        let index = search.bidirectional_index(&s, &sids, &t, &tids, k);

        for (i, &sid) in sids.iter().enumerate() {
            let dense_top = m.top_k(sid, k);
            let ivf_top: Vec<(EntityId, f32)> = index.candidates(i).collect();
            assert_eq!(dense_top.len(), ivf_top.len());
            for ((dt, ds), (bt, bs)) in dense_top.iter().zip(&ivf_top) {
                assert_eq!(dt, bt, "candidate diverged (seed {seed}, row {i})");
                assert_eq!(
                    ds.to_bits(),
                    bs.to_bits(),
                    "score diverged (seed {seed}, row {i})"
                );
            }
        }
        let mut dense_pairs = m.greedy_alignment().to_vec();
        let mut ivf_pairs = index.greedy_alignment().to_vec();
        dense_pairs.sort();
        ivf_pairs.sort();
        assert_eq!(dense_pairs, ivf_pairs, "greedy diverged (seed {seed})");
    }
}

#[test]
fn eight_thread_partial_probing_is_run_to_run_deterministic() {
    std::env::set_var("RAYON_NUM_THREADS", "8");

    let mut rng = StdRng::seed_from_u64(7);
    let s = EmbeddingTable::xavier(200, 12, &mut rng);
    let t = EmbeddingTable::xavier(350, 12, &mut rng);
    let sids: Vec<EntityId> = (0..200).map(EntityId).collect();
    let tids: Vec<EntityId> = (0..350).map(EntityId).collect();
    let search = CandidateSearch::Ivf(IvfParams {
        nlist: 18,
        nprobe: 4,
        ..IvfParams::default()
    });
    let a = search.forward_index(&s, &sids, &t, &tids, 6);
    let b = search.forward_index(&s, &sids, &t, &tids, 6);
    for i in 0..200 {
        let ra: Vec<(EntityId, u32)> = a.candidates(i).map(|(e, v)| (e, v.to_bits())).collect();
        let rb: Vec<(EntityId, u32)> = b.candidates(i).map(|(e, v)| (e, v.to_bits())).collect();
        assert_eq!(ra, rb, "partial-probe row {i} diverged between runs");
    }
}
