//! Property-based tests for the embedding substrate.

use ea_embed::{vector, EmbeddingTable, SimilarityMatrix};
use ea_graph::EntityId;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn vec_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-10.0f32..10.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Cosine similarity is symmetric and bounded.
    #[test]
    fn cosine_is_symmetric_and_bounded(a in vec_strategy(8), b in vec_strategy(8)) {
        let ab = vector::cosine(&a, &b);
        let ba = vector::cosine(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-5);
        prop_assert!((-1.0..=1.0).contains(&ab));
    }

    /// The Cauchy–Schwarz inequality holds for the dot product.
    #[test]
    fn cauchy_schwarz(a in vec_strategy(6), b in vec_strategy(6)) {
        let lhs = vector::dot(&a, &b).abs();
        let rhs = vector::norm(&a) * vector::norm(&b);
        prop_assert!(lhs <= rhs + 1e-3);
    }

    /// Normalising any non-zero vector yields a unit vector pointing the same way.
    #[test]
    fn normalize_preserves_direction(a in vec_strategy(5)) {
        prop_assume!(vector::norm(&a) > 1e-3);
        let mut n = a.clone();
        vector::normalize(&mut n);
        prop_assert!((vector::norm(&n) - 1.0).abs() < 1e-4);
        prop_assert!(vector::cosine(&a, &n) > 0.999);
    }

    /// sigmoid maps into (0,1) and is monotone.
    #[test]
    fn sigmoid_properties(x in -30.0f64..30.0, dx in 0.001f64..10.0) {
        let s = vector::sigmoid(x);
        prop_assert!(s > 0.0 && s < 1.0);
        prop_assert!(vector::sigmoid(x + dx) >= s);
    }

    /// Mean of k copies of the same vector is the vector itself.
    #[test]
    fn mean_of_identical_vectors(a in vec_strategy(4), k in 1usize..5) {
        let copies: Vec<&[f32]> = (0..k).map(|_| a.as_slice()).collect();
        let m = vector::mean(copies, 4);
        for (x, y) in m.iter().zip(&a) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Greedy alignment from a similarity matrix always aligns each source to
    /// a target with maximal similarity in its row.
    #[test]
    fn greedy_alignment_picks_row_maxima(seed in 0u64..1000, n_s in 1usize..8, n_t in 1usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = EmbeddingTable::xavier(n_s, 6, &mut rng);
        let t = EmbeddingTable::xavier(n_t, 6, &mut rng);
        let sids: Vec<EntityId> = (0..n_s as u32).map(EntityId).collect();
        let tids: Vec<EntityId> = (0..n_t as u32).map(EntityId).collect();
        let m = SimilarityMatrix::compute(&s, &sids, &t, &tids);
        let alignment = m.greedy_alignment();
        prop_assert_eq!(alignment.len(), n_s);
        for (i, &sid) in sids.iter().enumerate() {
            let chosen = alignment.target_of(sid).unwrap();
            let chosen_sim = m.similarity(sid, chosen).unwrap();
            for j in 0..n_t {
                prop_assert!(chosen_sim >= m.value(i, j) - 1e-6);
            }
        }
    }

    /// Rankings exposed through ranked_target are non-increasing in similarity.
    #[test]
    fn rankings_are_sorted(seed in 0u64..1000, n in 2usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = EmbeddingTable::xavier(n, 4, &mut rng);
        let t = EmbeddingTable::xavier(n, 4, &mut rng);
        let ids: Vec<EntityId> = (0..n as u32).map(EntityId).collect();
        let m = SimilarityMatrix::compute(&s, &ids, &t, &ids);
        for (i, &sid) in ids.iter().enumerate() {
            let mut prev = f32::INFINITY;
            for rank in 0..n {
                let target = m.ranked_target(i, rank).unwrap();
                let sim = m.similarity(sid, target).unwrap();
                prop_assert!(sim <= prev + 1e-6);
                prev = sim;
            }
        }
    }
}
