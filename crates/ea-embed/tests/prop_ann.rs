//! Property suite pinning the IVF ANN pre-filter to the exact references.
//!
//! Three contracts:
//!
//! 1. **Exact subset** — every `(id, score)` entry an IVF search returns
//!    exists in the dense reference with a bit-identical score, rows always
//!    carry the full `min(k, n_t)` entries (minimum-fill probing), are
//!    duplicate-free and sorted under the canonical `(score desc, column
//!    asc)` order. The pre-filter may *miss* candidates, never re-score them;
//!    recall is measured against the dense top-k.
//! 2. **Exhaustive probing is exact** — at `nprobe >= nlist` the IVF path is
//!    bit-identical to the exact blocked engine, forward and reverse lists
//!    included, for any `nlist` and quantizer seed.
//! 3. **Quantizer determinism** — `IvfIndex::build` is a pure function of
//!    (corpus, params): rebuilds are identical to the bit and the inverted
//!    lists partition the corpus.

use ea_embed::{
    order, CandidateIndex, CandidateSearch, CandidateSource, EmbeddingTable, IvfIndex, IvfParams,
    SimilarityMatrix,
};
use ea_graph::EntityId;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tables(seed: u64, n_s: usize, n_t: usize, dim: usize) -> (EmbeddingTable, EmbeddingTable) {
    let mut rng = StdRng::seed_from_u64(seed);
    let s = EmbeddingTable::xavier(n_s, dim, &mut rng);
    let t = EmbeddingTable::xavier(n_t, dim, &mut rng);
    (s, t)
}

fn ids(n: usize) -> Vec<EntityId> {
    (0..n as u32).map(EntityId).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ann_entries_are_an_exact_subset_of_the_dense_reference(
        seed in 0u64..10_000,
        n_s in 1usize..20,
        n_t in 1usize..40,
        k in 1usize..8,
        nlist in 1usize..12,
        nprobe in 1usize..12,
        dim in 2usize..8,
    ) {
        let (s, t) = tables(seed, n_s, n_t, dim);
        let (sids, tids) = (ids(n_s), ids(n_t));
        let m = SimilarityMatrix::compute(&s, &sids, &t, &tids);
        let params = IvfParams { nlist, nprobe, ..IvfParams::default() };
        let index = CandidateSearch::Ivf(params).forward_index(&s, &sids, &t, &tids, k);

        let mut kept = 0usize;
        let mut total = 0usize;
        for (i, &sid) in sids.iter().enumerate() {
            let entries: Vec<(EntityId, f32)> = index.candidates(i).collect();
            // Minimum-fill: always the full row, no duplicates.
            prop_assert_eq!(entries.len(), k.min(n_t), "row {} not filled", i);
            let mut seen = std::collections::HashSet::new();
            for &(e, _) in &entries {
                prop_assert!(seen.insert(e), "row {} has duplicate candidate", i);
            }
            // Canonical order and bit-identical scores vs the dense cell.
            for w in entries.windows(2) {
                let a = (w[0].1, w[0].0);
                let b = (w[1].1, w[1].0);
                prop_assert!(
                    order::desc_f32(a.0, b.0).then(a.1.cmp(&b.1)).is_lt(),
                    "row {} not in canonical order", i
                );
            }
            for &(e, score) in &entries {
                let dense = m.similarity(sid, e).expect("candidate must be a real target");
                prop_assert_eq!(
                    score.to_bits(), dense.to_bits(),
                    "row {} candidate {:?} re-scored", i, e
                );
            }
            // Measured recall vs the dense top-k.
            let dense_top: std::collections::HashSet<EntityId> =
                m.top_k(sid, k).into_iter().map(|(e, _)| e).collect();
            kept += entries.iter().filter(|(e, _)| dense_top.contains(e)).count();
            total += dense_top.len();
        }
        let recall = kept as f64 / total.max(1) as f64;
        prop_assert!((0.0..=1.0).contains(&recall));
        if nprobe >= nlist {
            prop_assert!((recall - 1.0).abs() < 1e-12, "full probing must reach recall 1.0");
        }
    }

    #[test]
    fn exhaustive_ivf_is_bit_identical_to_the_exact_engine(
        seed in 0u64..10_000,
        quantizer_seed in 0u64..1_000,
        n_s in 1usize..18,
        n_t in 1usize..18,
        k in 1usize..6,
        nlist in 1usize..14,
        dim in 2usize..6,
    ) {
        let (s, t) = tables(seed, n_s, n_t, dim);
        let (sids, tids) = (ids(n_s), ids(n_t));
        let exact = CandidateIndex::compute_bidirectional(&s, &sids, &t, &tids, k);
        let params = IvfParams {
            nlist,
            nprobe: usize::MAX,
            seed: quantizer_seed,
            ..IvfParams::default()
        };
        let ivf = CandidateSearch::Ivf(params).bidirectional_index(&s, &sids, &t, &tids, k);

        prop_assert_eq!(exact.greedy_alignment().to_vec(), ivf.greedy_alignment().to_vec());
        for i in 0..n_s {
            let a: Vec<(EntityId, u32)> =
                exact.candidates(i).map(|(e, v)| (e, v.to_bits())).collect();
            let b: Vec<(EntityId, u32)> =
                ivf.candidates(i).map(|(e, v)| (e, v.to_bits())).collect();
            prop_assert_eq!(a, b, "forward row {} diverged", i);
        }
        for &tid in &tids {
            let a = exact.best_source_for_target(tid);
            let b = ivf.best_source_for_target(tid);
            prop_assert_eq!(
                a.map(|(e, v)| (e, v.to_bits())),
                b.map(|(e, v)| (e, v.to_bits())),
                "reverse head for {:?} diverged", tid
            );
        }
    }

    #[test]
    fn quantizer_is_deterministic_and_partitions_the_corpus(
        seed in 0u64..10_000,
        n in 1usize..60,
        nlist in 1usize..10,
        dim in 2usize..6,
    ) {
        let (corpus, _) = tables(seed, n, 1, dim);
        let all: Vec<usize> = (0..n).collect();
        let corpus = corpus.gather_normalized(&all);
        let params = IvfParams { nlist, ..IvfParams::default() };
        let a = IvfIndex::build(&corpus, &params);
        let b = IvfIndex::build(&corpus, &params);
        prop_assert_eq!(a.nlist(), b.nlist());
        let mut seen = vec![false; n];
        for c in 0..a.nlist() {
            prop_assert_eq!(a.list(c), b.list(c), "list {} diverged on rebuild", c);
            prop_assert_eq!(a.centroid(c), b.centroid(c), "centroid {} diverged", c);
            prop_assert!(a.list(c).windows(2).all(|w| w[0] < w[1]), "list {} not ascending", c);
            for &row in a.list(c) {
                prop_assert!(!seen[row as usize], "row {} filed twice", row);
                seen[row as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&x| x), "quantizer dropped corpus rows");
    }
}
