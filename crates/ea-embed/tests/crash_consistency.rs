//! Crash-consistency suite for the on-disk candidate container.
//!
//! The contract under test: **a container is either complete and verified,
//! or opening it fails with a typed [`StorageError`]** — a reader can never
//! observe garbage. Three attack surfaces:
//!
//! - a *killed writer*: a streaming save that panics mid-write (simulating
//!   a crash at an arbitrary point) must leave no file behind at all — the
//!   [`ContainerWriter`] RAII guard removes the unfinished container, so
//!   there is no window where a partial file looks like a real one;
//! - a *torn file*: a complete container truncated at randomized byte
//!   offsets must always fail to open with a typed error (`Truncated`,
//!   `BadChecksum`, `BadMagic`, …) on both read backends;
//! - *bit rot*: a complete container with randomized single-byte flips
//!   must be caught by the verified open.
//!
//! Plus the spill-file RAII contract: search paths that spill panels to
//! disk leave the spill directory empty afterwards, even across many runs.
//!
//! [`ContainerWriter`]: crates/ea-embed/src/storage.rs

use ea_embed::{
    save_ivf_streaming, save_sq8_streaming, EmbeddingTable, IvfIndex, IvfParams, MappedIndex,
    MappedOptions, OpenOptions, QuantizedTable, RowSource, Sq8Params, StorageError, StoreBacking,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static UNIQUE: AtomicU64 = AtomicU64::new(0);

/// A collision-free path under the system temp dir; removed on drop even
/// when an assertion fails first.
struct TempFile(PathBuf);

impl TempFile {
    fn new(tag: &str) -> Self {
        TempFile(std::env::temp_dir().join(format!(
            "exea-crash-{}-{}-{tag}.eacg",
            std::process::id(),
            UNIQUE.fetch_add(1, Ordering::Relaxed)
        )))
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn normalized(seed: u64, rows: usize, dim: usize) -> EmbeddingTable {
    let mut rng = StdRng::seed_from_u64(seed);
    let t = EmbeddingTable::xavier(rows, dim, &mut rng);
    let all: Vec<usize> = (0..rows).collect();
    t.gather_normalized(&all)
}

/// A [`RowSource`] that dies when asked for any row at or past `kill_at` —
/// the deterministic stand-in for a writer crashing mid-save.
struct DyingRows<'a> {
    table: &'a EmbeddingTable,
    kill_at: usize,
}

impl RowSource for DyingRows<'_> {
    fn rows(&self) -> usize {
        self.table.rows()
    }

    fn dim(&self) -> usize {
        self.table.dim()
    }

    fn fill_rows(&self, start: usize, out: &mut [f32]) {
        let count = out.len() / self.table.dim();
        assert!(
            start + count <= self.kill_at,
            "injected writer crash at row {}",
            self.kill_at
        );
        for (i, row) in out.chunks_exact_mut(self.table.dim()).enumerate() {
            row.copy_from_slice(self.table.row(start + i));
        }
    }
}

/// Both read backends: the mmap'd view and forced buffered positional
/// reads — crash consistency must hold on each.
fn backends() -> [OpenOptions; 2] {
    [
        OpenOptions::default(),
        OpenOptions {
            prefer_mmap: false,
            verify: true,
        },
    ]
}

fn assert_typed_failure(result: Result<MappedIndex, StorageError>, what: &str) {
    match result {
        Ok(_) => panic!("{what}: a damaged container must not open"),
        Err(e) => {
            // Every failure is one of the typed variants and survives
            // formatting (no panic rendering the message, path attached).
            let message = e.to_string();
            assert!(!message.is_empty());
            match e.root() {
                StorageError::Truncated { .. }
                | StorageError::BadChecksum { .. }
                | StorageError::BadMagic
                | StorageError::BadVersion { .. }
                | StorageError::Corrupt { .. }
                | StorageError::SectionMissing { .. }
                | StorageError::ShapeMismatch { .. }
                | StorageError::Io(_) => {}
                StorageError::AtPath { .. } => {
                    panic!("{what}: root() must strip the AtPath wrapper")
                }
            }
        }
    }
}

#[test]
fn killed_ivf_save_leaves_no_file_behind() {
    let corpus = normalized(11, 96, 16);
    // Kill the writer at a spread of crash points: during the k-means
    // sweep, during the encode sweep, near the end.
    for kill_at in [1, 8, 32, 64, 95] {
        let file = TempFile::new("killed-ivf");
        let source = DyingRows {
            table: &corpus,
            kill_at,
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            save_ivf_streaming(&source, &IvfParams::default(), &file.0, 24)
        }));
        assert!(outcome.is_err(), "kill_at={kill_at} must abort the save");
        assert!(
            !file.0.exists(),
            "kill_at={kill_at}: the RAII guard must remove the unfinished container"
        );
    }
}

#[test]
fn killed_sq8_save_leaves_no_file_behind() {
    let corpus = normalized(12, 80, 12);
    for kill_at in [1, 16, 40, 79] {
        let file = TempFile::new("killed-sq8");
        let source = DyingRows {
            table: &corpus,
            kill_at,
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            save_sq8_streaming(&source, &file.0, 16)
        }));
        assert!(outcome.is_err(), "kill_at={kill_at} must abort the save");
        assert!(
            !file.0.exists(),
            "kill_at={kill_at}: the RAII guard must remove the unfinished container"
        );
    }
}

#[test]
fn truncation_at_randomized_offsets_always_fails_typed() {
    let corpus = normalized(13, 120, 16);
    let index = IvfIndex::build(&corpus, &IvfParams::default());
    let good = TempFile::new("trunc-good");
    index.save(&corpus, &good.0).expect("save full container");
    let bytes = std::fs::read(&good.0).expect("read container back");
    assert!(bytes.len() > 64, "container is non-trivial");

    // Deterministically randomized truncation points, plus the structural
    // boundaries (empty file, half a header, one byte short of complete).
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let mut cuts: Vec<usize> = vec![0, 1, 12, 23, 24, bytes.len() - 1];
    for _ in 0..40 {
        cuts.push(rng.gen_range(0..bytes.len()));
    }

    let torn = TempFile::new("trunc-torn");
    for cut in cuts {
        std::fs::write(&torn.0, &bytes[..cut]).expect("write truncated copy");
        for options in backends() {
            assert_typed_failure(
                MappedIndex::open_with(&torn.0, &options),
                &format!("truncated at {cut}/{} bytes", bytes.len()),
            );
        }
    }

    // Sanity: the untouched original still opens on both backends.
    for options in backends() {
        MappedIndex::open_with(&good.0, &options).expect("the complete container opens");
    }
}

#[test]
fn randomized_bit_rot_is_caught_by_the_verified_open() {
    let corpus = normalized(14, 100, 12);
    let index = IvfIndex::build(&corpus, &IvfParams::default());
    let good = TempFile::new("rot-good");
    index.save(&corpus, &good.0).expect("save full container");
    let bytes = std::fs::read(&good.0).expect("read container back");

    let mut rng = StdRng::seed_from_u64(0xB17F11);
    let rotten = TempFile::new("rot-bad");
    for _ in 0..25 {
        let at = rng.gen_range(0..bytes.len());
        let bit = rng.gen_range(0..8u32);
        let mut copy = bytes.clone();
        copy[at] ^= 1 << bit;
        std::fs::write(&rotten.0, &copy).expect("write corrupted copy");
        for options in backends() {
            // A flip can land anywhere — magic, header, checksum, payload —
            // so any typed variant is acceptable; silently opening with
            // altered bytes is not.
            assert_typed_failure(
                MappedIndex::open_with(&rotten.0, &options),
                &format!("bit {bit} flipped at byte {at}"),
            );
        }
    }
}

#[test]
fn spilled_searches_leave_the_spill_directory_empty() {
    let dir = std::env::temp_dir().join(format!(
        "exea-crash-spills-{}-{}",
        std::process::id(),
        UNIQUE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("spill dir");

    let corpus = normalized(15, 64, 12);
    let queries = normalized(16, 4, 12);
    let quant = QuantizedTable::build(&corpus);
    let resident = quant.search(&queries, &corpus, 5, &Sq8Params::default());
    for round in 0..3 {
        let params = Sq8Params {
            backing: StoreBacking::Mapped(MappedOptions {
                dir: Some(dir.clone()),
                ..MappedOptions::default()
            }),
            ..Sq8Params::default()
        };
        let spilled = quant.search(&queries, &corpus, 5, &params);
        assert_eq!(
            spilled, resident,
            "round {round}: spilled search stays bit-identical"
        );
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("spill dir readable")
            .collect();
        assert!(
            leftovers.is_empty(),
            "round {round}: spill files must be RAII-removed, found {leftovers:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
